//! `finecc` — command-line front end.
//!
//! ```text
//! finecc check  <schema.fcc>                 compile and report errors
//! finecc report <schema.fcc>                 per-class modes, TAVs, densities
//! finecc matrix <schema.fcc> <class>         generated commutativity matrix
//! finecc graph  <schema.fcc> <class>         late-binding resolution graph (DOT)
//! finecc run    <schema.fcc> <class> <method> [int args…]
//!                                            create an instance, send the
//!                                            message under the TAV scheme
//! ```
//!
//! Schema files use the method language (see README); try it on the
//! paper's example with `finecc matrix <(echo "$FIGURE1")" c2` or any
//! file containing Figure 1's source.

use finecc::core::compile;
use finecc::lang::build_schema;
use finecc::model::Value;
use finecc::runtime::{run_txn, Env, SchemeKind};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  finecc check  <schema>\n  finecc report <schema>\n  \
         finecc matrix <schema> <class>\n  finecc graph  <schema> <class>\n  \
         finecc run    <schema> <class> <method> [int args...]"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let Some(path) = rest.first() else {
        return usage();
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail(format_args!("cannot read `{path}`: {e}")),
    };
    let (schema, bodies) = match build_schema(&source) {
        Ok(x) => x,
        Err(e) => return fail(e),
    };
    let compiled = match compile(&schema, &bodies) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };

    match cmd {
        "check" => {
            println!(
                "ok: {} classes, {} method definitions, {} access modes",
                schema.class_count(),
                schema.method_count(),
                compiled.total_modes()
            );
            ExitCode::SUCCESS
        }
        "report" => {
            print!("{}", compiled.report(&schema));
            ExitCode::SUCCESS
        }
        "matrix" | "graph" => {
            let Some(class_name) = rest.get(1) else {
                return usage();
            };
            let Some(class) = schema.class_by_name(class_name) else {
                return fail(format_args!("no class `{class_name}`"));
            };
            if cmd == "matrix" {
                print!("{}", compiled.class(class).to_table_string());
            } else {
                print!("{}", compiled.graph(class).to_dot(&schema));
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let (Some(class_name), Some(method)) = (rest.get(1), rest.get(2)) else {
                return usage();
            };
            let Some(class) = schema.class_by_name(class_name) else {
                return fail(format_args!("no class `{class_name}`"));
            };
            let mut call_args = Vec::new();
            for a in &rest[3..] {
                match a.parse::<i64>() {
                    Ok(v) => call_args.push(Value::Int(v)),
                    Err(_) => return fail(format_args!("argument `{a}` is not an integer")),
                }
            }
            let env = Env::new(schema, bodies, compiled);
            let oid = env.db.create(class);
            let scheme = SchemeKind::Tav.build(env);
            let method = method.clone();
            match run_txn(scheme.as_ref(), 3, |txn| {
                scheme.send(txn, oid, &method, &call_args)
            }) {
                finecc::runtime::TxnOutcome::Committed { value, .. } => {
                    println!("result: {value}");
                    let env = scheme.env();
                    let ci = env.schema.class(class);
                    println!("instance state after the call:");
                    for &f in &ci.all_fields.clone() {
                        let name = env.schema.field(f).name.clone();
                        let v = env.db.read(oid, f).expect("instance exists");
                        println!("  {name} = {v}");
                    }
                    let st = scheme.stats();
                    println!("lock requests: {}", st.requests);
                    ExitCode::SUCCESS
                }
                finecc::runtime::TxnOutcome::Failed(e) => fail(e),
                finecc::runtime::TxnOutcome::Exhausted { .. } => fail("deadlock retries exhausted"),
            }
        }
        _ => usage(),
    }
}
