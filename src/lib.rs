//! # finecc — automating fine concurrency control in object-oriented databases
//!
//! A faithful, production-quality Rust implementation of
//! **Malta & Martinez, "Automating Fine Concurrency Control in
//! Object-Oriented Databases" (ICDE 1993)**: compile-time extraction of
//! method **access vectors**, linear-time computation of **transitive
//! access vectors** over the late-binding resolution graph, automatic
//! generation of per-class **commutativity matrices**, and a strict-2PL
//! locking protocol over inheritance graphs that uses those matrices as
//! plain access modes — plus the read/write, relational-decomposition and
//! run-time field-locking baselines the paper compares against.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! ```
//! use finecc::prelude::*;
//!
//! // Parse the paper's Figure 1 program and compile it.
//! let (schema, bodies) = finecc::lang::build_schema(finecc::lang::parser::FIGURE1_SOURCE)?;
//! let compiled = compile(&schema, &bodies)?;
//!
//! // Table 2 of the paper: the generated commutativity matrix of class c2.
//! let c2 = schema.class_by_name("c2").unwrap();
//! let table = compiled.class(c2);
//! assert!(!table.commute_names("m1", "m2").unwrap()); // conflict
//! assert!(table.commute_names("m2", "m4").unwrap());  // parallel!
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

/// The object-oriented data model (classes, fields, inheritance, instances).
pub mod model {
    pub use finecc_model::*;
}

/// The method language: parser, static analysis, interpreter.
pub mod lang {
    pub use finecc_lang::*;
}

/// The paper's contribution: access vectors, TAVs, commutativity matrices.
pub mod core {
    pub use finecc_core::*;
}

/// The in-memory object store with access-vector-projected undo logging.
pub mod store {
    pub use finecc_store::*;
}

/// Observability: latency histograms, contention heat maps, tracing.
pub mod obs {
    pub use finecc_obs::*;
}

/// The generic lock manager (mode tables, 2PL, deadlock detection).
pub mod lock {
    pub use finecc_lock::*;
}

/// The multi-version heap (version chains, snapshots, epoch GC).
pub mod mvcc {
    pub use finecc_mvcc::*;
}

/// The durability subsystem (field-granular redo log, group commit,
/// checkpoints, crash recovery).
pub mod wal {
    pub use finecc_wal::*;
}

/// Executable concurrency-control schemes (TAV, RW, relational, field
/// locks, MVCC).
pub mod runtime {
    pub use finecc_runtime::*;
}

/// Workload generation, concurrent execution, metrics, paper scenarios.
pub mod sim {
    pub use finecc_sim::*;
}

/// The deterministic fault-injection harness (virtual-time scheduler,
/// fault plane, schedule minimization). Scenario-level machinery —
/// explorer, invariants, repro files — lives in [`sim::chaos`].
pub mod chaos {
    pub use finecc_chaos::*;
}

/// The most commonly used items, in one import.
pub mod prelude {
    pub use finecc_core::{compile, AccessMode, AccessVector, ClassTable, CompiledSchema};
    pub use finecc_lang::{build_schema, Builtins, Interpreter};
    pub use finecc_model::{
        ClassId, FieldId, FieldType, MethodId, Oid, Schema, SchemaBuilder, TxnId, Value,
    };
}
