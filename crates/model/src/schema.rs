//! Schema construction, inheritance linearization, and name resolution.
//!
//! A [`Schema`] is the static part of an object base: the classes, their
//! fields (`FIELDS(C)` in the paper's Definition 1), their methods
//! (`METHODS(C)`), and the inheritance relation (`ANCESTORS(C)`).
//!
//! Multiple inheritance is resolved with **C3 linearization** (the
//! monotonic MRO used by Dylan/Python); simple inheritance degenerates to
//! the obvious parent chain. Method lookup — the class-level half of late
//! binding — walks the linearization and picks the nearest definition,
//! which is exactly the "more appropriate method … located in the nearest
//! ancestor class" of Section 2.2.

use crate::error::ModelError;
use crate::ids::{ClassId, FieldId, MethodId};
use crate::types::FieldType;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// A method signature: name and parameter names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodSig {
    /// Method name; overriding definitions share the name of the overridden.
    pub name: String,
    /// Formal parameter names, in order.
    pub params: Vec<String>,
}

/// A method definition site.
#[derive(Clone, Debug)]
pub struct MethodInfo {
    /// This definition's identifier.
    pub id: MethodId,
    /// The class the definition appears in.
    pub owner: ClassId,
    /// Name and parameters.
    pub sig: MethodSig,
    /// The nearest definition this one overrides, if any.
    pub overrides: Option<MethodId>,
}

/// A field definition.
#[derive(Clone, Debug)]
pub struct FieldInfo {
    /// This field's identifier (shared by all inheriting classes).
    pub id: FieldId,
    /// The class that declares the field.
    pub owner: ClassId,
    /// Field name, unique among all fields visible in any class that sees it.
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
}

/// Everything the schema knows about one class.
#[derive(Clone, Debug)]
pub struct ClassInfo {
    /// This class's identifier.
    pub id: ClassId,
    /// Class name.
    pub name: String,
    /// Direct superclasses, in declaration order.
    pub parents: Vec<ClassId>,
    /// C3 linearization: `self` first, then ancestors in resolution order.
    pub linearization: Vec<ClassId>,
    /// Proper ancestors (`ANCESTORS(C)`), i.e. the linearization minus self.
    pub ancestors: Vec<ClassId>,
    /// Fields declared in this class, in declaration order.
    pub own_fields: Vec<FieldId>,
    /// `FIELDS(C)`: all visible fields, root-most class first, then along
    /// the reversed linearization down to this class's own fields.
    pub all_fields: Vec<FieldId>,
    /// Methods defined (introduced or overridden) in this class.
    pub own_methods: Vec<MethodId>,
    /// `METHODS(C)` resolved by late binding: for each visible method name,
    /// the nearest definition in the linearization. Sorted by name, so the
    /// position is this class's stable *method index* (used as the access
    /// mode index by `finecc-core`).
    pub methods: Vec<(String, MethodId)>,
    /// Direct subclasses.
    pub subclasses: Vec<ClassId>,
    /// The domain rooted at this class: itself plus all transitive
    /// subclasses, sorted by id.
    pub domain: Vec<ClassId>,
    field_pos: HashMap<FieldId, u32>,
    method_by_name: HashMap<String, MethodId>,
}

impl ClassInfo {
    /// Position of `field` in [`ClassInfo::all_fields`], if visible.
    pub fn field_pos(&self, field: FieldId) -> Option<usize> {
        self.field_pos.get(&field).map(|&p| p as usize)
    }

    /// Number of visible fields.
    pub fn field_count(&self) -> usize {
        self.all_fields.len()
    }

    /// Resolve a method name by late binding in this class.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.method_by_name.get(name).copied()
    }

    /// The stable per-class index of a visible method name.
    pub fn method_index(&self, name: &str) -> Option<usize> {
        self.methods
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
    }
}

/// An immutable, validated schema.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    classes: Vec<ClassInfo>,
    fields: Vec<FieldInfo>,
    methods: Vec<MethodInfo>,
    class_by_name: HashMap<String, ClassId>,
}

impl Schema {
    /// Look a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Class metadata. Panics on a foreign id.
    pub fn class(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.index()]
    }

    /// Field metadata. Panics on a foreign id.
    pub fn field(&self, id: FieldId) -> &FieldInfo {
        &self.fields[id.index()]
    }

    /// Method metadata. Panics on a foreign id.
    pub fn method(&self, id: MethodId) -> &MethodInfo {
        &self.methods[id.index()]
    }

    /// All classes, in declaration order.
    pub fn classes(&self) -> impl DoubleEndedIterator<Item = &ClassInfo> {
        self.classes.iter()
    }

    /// All field definitions.
    pub fn fields(&self) -> impl Iterator<Item = &FieldInfo> {
        self.fields.iter()
    }

    /// All method definition sites.
    pub fn methods(&self) -> impl Iterator<Item = &MethodInfo> {
        self.methods.iter()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of field definitions.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Number of method definition sites.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Resolve a field name visible in `class`.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        self.class(class)
            .all_fields
            .iter()
            .copied()
            .find(|&f| self.field(f).name == name)
    }

    /// Late-binding method resolution: the definition a message `name` sent
    /// to a proper instance of `class` is linked to.
    pub fn resolve_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.class(class).method_by_name(name)
    }

    /// `true` if `a` is `c` or a (transitive) superclass of `c`.
    pub fn is_ancestor_or_self(&self, a: ClassId, c: ClassId) -> bool {
        self.class(c).linearization.contains(&a)
    }

    /// `true` if `c` belongs to the domain rooted at `root`.
    pub fn in_domain(&self, root: ClassId, c: ClassId) -> bool {
        self.is_ancestor_or_self(root, c)
    }

    /// The classes of the domain rooted at `root` (root itself included).
    pub fn domain(&self, root: ClassId) -> &[ClassId] {
        &self.class(root).domain
    }
}

#[derive(Clone, Debug)]
enum RawTy {
    Base(FieldType),
    RefByName(String),
}

/// A class under construction inside [`SchemaBuilder`].
#[derive(Debug)]
pub struct ClassDecl {
    name: String,
    parents: Vec<String>,
    fields: Vec<(String, RawTy)>,
    methods: Vec<MethodSig>,
}

impl ClassDecl {
    /// Add a direct superclass by name.
    pub fn inherits(&mut self, parent: &str) -> &mut Self {
        self.parents.push(parent.to_string());
        self
    }

    /// Declare a base-typed field.
    pub fn field(&mut self, name: &str, ty: FieldType) -> &mut Self {
        self.fields.push((name.to_string(), RawTy::Base(ty)));
        self
    }

    /// Declare a reference field pointing into the domain of `class`
    /// (which may be declared later; resolved at [`SchemaBuilder::finish`]).
    pub fn ref_field(&mut self, name: &str, class: &str) -> &mut Self {
        self.fields
            .push((name.to_string(), RawTy::RefByName(class.to_string())));
        self
    }

    /// Declare a method definition (new or overriding).
    pub fn method(&mut self, name: &str, params: &[&str]) -> &mut Self {
        self.methods.push(MethodSig {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
        });
        self
    }
}

/// Builds and validates a [`Schema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    decls: Vec<ClassDecl>,
    by_name: HashMap<String, usize>,
    duplicate: Option<String>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or re-opens) the declaration of a class. Re-opening an
    /// already declared class is an error reported at `finish`.
    pub fn class(&mut self, name: &str) -> &mut ClassDecl {
        match self.by_name.entry(name.to_string()) {
            Entry::Occupied(e) => {
                self.duplicate.get_or_insert_with(|| name.to_string());
                let i = *e.get();
                &mut self.decls[i]
            }
            Entry::Vacant(e) => {
                e.insert(self.decls.len());
                self.decls.push(ClassDecl {
                    name: name.to_string(),
                    parents: Vec::new(),
                    fields: Vec::new(),
                    methods: Vec::new(),
                });
                self.decls.last_mut().expect("just pushed")
            }
        }
    }

    /// Validates everything and produces the immutable [`Schema`].
    pub fn finish(self) -> Result<Schema, ModelError> {
        if let Some(dup) = self.duplicate {
            return Err(ModelError::DuplicateClass(dup));
        }
        let n = self.decls.len();

        // Resolve parent names.
        let mut parents: Vec<Vec<ClassId>> = Vec::with_capacity(n);
        for d in &self.decls {
            let mut ps = Vec::with_capacity(d.parents.len());
            for p in &d.parents {
                let pid = self
                    .by_name
                    .get(p)
                    .ok_or_else(|| ModelError::UnknownParent {
                        class: d.name.clone(),
                        parent: p.clone(),
                    })?;
                let pid = ClassId::from_index(*pid);
                if ps.contains(&pid) {
                    // Repeating a direct parent is harmless but sloppy;
                    // treat as hierarchy inconsistency.
                    return Err(ModelError::InconsistentHierarchy(d.name.clone()));
                }
                ps.push(pid);
            }
            parents.push(ps);
        }

        // Cycle check + topological order (parents before children).
        let topo = toposort(&parents)
            .map_err(|cid| ModelError::InheritanceCycle(self.decls[cid.index()].name.clone()))?;

        // C3 linearizations, computed in topological order.
        let mut linearizations: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for &c in &topo {
            let ps = &parents[c.index()];
            let inputs: Vec<&[ClassId]> = ps
                .iter()
                .map(|p| linearizations[p.index()].as_slice())
                .collect();
            let lin = c3_merge(c, &inputs, ps).ok_or_else(|| {
                ModelError::InconsistentHierarchy(self.decls[c.index()].name.clone())
            })?;
            linearizations[c.index()] = lin;
        }

        // Fields: assign global ids, in topological order so that a parent's
        // ids exist before a child collects them. Visibility and ambiguity
        // are checked per class over FIELDS(C).
        let mut fields: Vec<FieldInfo> = Vec::new();
        let mut own_fields: Vec<Vec<FieldId>> = vec![Vec::new(); n];
        for &c in &topo {
            let d = &self.decls[c.index()];
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for (fname, rty) in &d.fields {
                if seen.insert(fname.as_str(), ()).is_some() {
                    return Err(ModelError::DuplicateField {
                        class: d.name.clone(),
                        field: fname.clone(),
                    });
                }
                let ty = match rty {
                    RawTy::Base(t) => *t,
                    RawTy::RefByName(cls) => {
                        let target = self
                            .by_name
                            .get(cls)
                            .ok_or_else(|| ModelError::UnknownClass(cls.clone()))?;
                        FieldType::Ref(ClassId::from_index(*target))
                    }
                };
                let id = FieldId::from_index(fields.len());
                fields.push(FieldInfo {
                    id,
                    owner: c,
                    name: fname.clone(),
                    ty,
                });
                own_fields[c.index()].push(id);
            }
        }

        // FIELDS(C) with ambiguity detection.
        let mut all_fields: Vec<Vec<FieldId>> = vec![Vec::new(); n];
        for &c in &topo {
            let mut acc: Vec<FieldId> = Vec::new();
            let mut names: HashMap<&str, FieldId> = HashMap::new();
            for &a in linearizations[c.index()].iter().rev() {
                for &f in &own_fields[a.index()] {
                    let fi = &fields[f.index()];
                    if let Some(prev) = names.insert(fi.name.as_str(), f) {
                        if prev != f {
                            return Err(ModelError::AmbiguousField {
                                class: self.decls[c.index()].name.clone(),
                                field: fi.name.clone(),
                            });
                        }
                    } else {
                        acc.push(f);
                    }
                }
            }
            all_fields[c.index()] = acc;
        }

        // Methods: definition sites get ids in topological order;
        // METHODS(C) resolves each visible name to the nearest definition.
        let mut methods: Vec<MethodInfo> = Vec::new();
        let mut own_methods: Vec<Vec<MethodId>> = vec![Vec::new(); n];
        let mut own_by_name: Vec<HashMap<String, MethodId>> = vec![HashMap::new(); n];
        for &c in &topo {
            let d = &self.decls[c.index()];
            for sig in &d.methods {
                if own_by_name[c.index()].contains_key(&sig.name) {
                    return Err(ModelError::DuplicateMethod {
                        class: d.name.clone(),
                        method: sig.name.clone(),
                    });
                }
                let id = MethodId::from_index(methods.len());
                methods.push(MethodInfo {
                    id,
                    owner: c,
                    sig: sig.clone(),
                    overrides: None, // fixed up below
                });
                own_by_name[c.index()].insert(sig.name.clone(), id);
                own_methods[c.index()].push(id);
            }
        }

        let mut resolved: Vec<Vec<(String, MethodId)>> = vec![Vec::new(); n];
        let mut resolved_map: Vec<HashMap<String, MethodId>> = vec![HashMap::new(); n];
        for &c in &topo {
            let mut map: HashMap<String, MethodId> = HashMap::new();
            // Walk the linearization nearest-first; first definition wins.
            for &a in &linearizations[c.index()] {
                for (name, &mid) in &own_by_name[a.index()] {
                    map.entry(name.clone()).or_insert(mid);
                }
            }
            let mut list: Vec<(String, MethodId)> =
                map.iter().map(|(k, v)| (k.clone(), *v)).collect();
            list.sort_by(|a, b| a.0.cmp(&b.0));
            resolved[c.index()] = list;
            resolved_map[c.index()] = map;
        }

        // `overrides` fix-up: a definition in C overrides the resolution of
        // the same name in the remainder of C's linearization.
        for c in 0..n {
            let lin = &linearizations[c];
            let own: Vec<MethodId> = own_methods[c].clone();
            for mid in own {
                let name = methods[mid.index()].sig.name.clone();
                let mut over = None;
                for &a in lin.iter().skip(1) {
                    if let Some(&prev) = own_by_name[a.index()].get(&name) {
                        over = Some(prev);
                        break;
                    }
                }
                methods[mid.index()].overrides = over;
            }
        }

        // Subclasses and domains.
        let mut subclasses: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for (c, ps) in parents.iter().enumerate() {
            for p in ps {
                subclasses[p.index()].push(ClassId::from_index(c));
            }
        }
        // Domain: reverse-topological accumulation of subclass domains.
        let mut domains: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for &c in topo.iter().rev() {
            let mut dom = vec![c];
            for &s in &subclasses[c.index()] {
                dom.extend_from_slice(&domains[s.index()]);
            }
            dom.sort_unstable();
            dom.dedup();
            domains[c.index()] = dom;
        }

        // Assemble.
        let mut classes = Vec::with_capacity(n);
        for (i, d) in self.decls.iter().enumerate() {
            let id = ClassId::from_index(i);
            let lin = linearizations[i].clone();
            let field_pos = all_fields[i]
                .iter()
                .enumerate()
                .map(|(p, &f)| (f, p as u32))
                .collect();
            classes.push(ClassInfo {
                id,
                name: d.name.clone(),
                parents: parents[i].clone(),
                ancestors: lin[1..].to_vec(),
                linearization: lin,
                own_fields: own_fields[i].clone(),
                all_fields: all_fields[i].clone(),
                own_methods: own_methods[i].clone(),
                methods: resolved[i].clone(),
                subclasses: subclasses[i].clone(),
                domain: domains[i].clone(),
                field_pos,
                method_by_name: resolved_map[i].clone(),
            });
        }

        Ok(Schema {
            classes,
            fields,
            methods,
            class_by_name: self
                .by_name
                .into_iter()
                .map(|(k, v)| (k, ClassId::from_index(v)))
                .collect(),
        })
    }
}

/// Kahn toposort over the "parent → child" relation; returns parents before
/// children, or the id of a class on a cycle.
fn toposort(parents: &[Vec<ClassId>]) -> Result<Vec<ClassId>, ClassId> {
    let n = parents.len();
    let mut indeg: Vec<usize> = parents.iter().map(Vec::len).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (c, ps) in parents.iter().enumerate() {
        for p in ps {
            children[p.index()].push(c);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    // Process in declaration order for determinism.
    queue.sort_unstable();
    let mut out = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let c = queue[head];
        head += 1;
        out.push(ClassId::from_index(c));
        for &ch in &children[c] {
            indeg[ch] -= 1;
            if indeg[ch] == 0 {
                queue.push(ch);
            }
        }
    }
    if out.len() == n {
        Ok(out)
    } else {
        let bad = (0..n).find(|&i| indeg[i] > 0).expect("cycle exists");
        Err(ClassId::from_index(bad))
    }
}

/// C3 linearization: `c` followed by the monotonic merge of the parents'
/// linearizations and the parent list itself. Returns `None` if no
/// consistent order exists.
fn c3_merge(c: ClassId, parent_lins: &[&[ClassId]], parents: &[ClassId]) -> Option<Vec<ClassId>> {
    let mut seqs: Vec<Vec<ClassId>> = parent_lins.iter().map(|s| s.to_vec()).collect();
    if !parents.is_empty() {
        seqs.push(parents.to_vec());
    }
    let mut out = vec![c];
    loop {
        seqs.retain(|s| !s.is_empty());
        if seqs.is_empty() {
            return Some(out);
        }
        // Find a candidate: the head of some sequence that appears in no
        // other sequence's tail.
        let mut chosen: Option<ClassId> = None;
        'cand: for s in &seqs {
            let head = s[0];
            for t in &seqs {
                if t[1..].contains(&head) {
                    continue 'cand;
                }
            }
            chosen = Some(head);
            break;
        }
        let head = chosen?;
        out.push(head);
        for s in &mut seqs {
            if s.first() == Some(&head) {
                s.remove(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        {
            let c1 = b.class("c1");
            c1.field("f1", FieldType::Int)
                .field("f2", FieldType::Bool)
                .ref_field("f3", "c3")
                .method("m1", &["p1"])
                .method("m2", &["p1"])
                .method("m3", &[]);
        }
        {
            let c2 = b.class("c2");
            c2.inherits("c1")
                .field("f4", FieldType::Int)
                .field("f5", FieldType::Int)
                .field("f6", FieldType::Str)
                .method("m2", &["p1"])
                .method("m4", &["p1", "p2"]);
        }
        {
            let c3 = b.class("c3");
            c3.method("m", &[]);
        }
        b.finish().expect("figure 1 schema is valid")
    }

    #[test]
    fn figure1_shape() {
        let s = figure1_schema();
        let c1 = s.class_by_name("c1").unwrap();
        let c2 = s.class_by_name("c2").unwrap();
        let c3 = s.class_by_name("c3").unwrap();

        assert_eq!(s.class(c1).all_fields.len(), 3);
        assert_eq!(s.class(c2).all_fields.len(), 6);
        assert_eq!(s.class(c2).ancestors, vec![c1]);
        assert_eq!(s.class(c1).ancestors, Vec::<ClassId>::new());
        assert_eq!(s.domain(c1), &[c1, c2]);
        assert_eq!(s.domain(c2), &[c2]);
        assert_eq!(s.domain(c3), &[c3]);

        // FIELDS(c2) starts with the inherited c1 fields, same ids.
        assert_eq!(s.class(c2).all_fields[..3], s.class(c1).all_fields[..]);

        // METHODS(c1) = {m1, m2, m3}; METHODS(c2) = {m1, m2, m3, m4}.
        let names = |c: ClassId| {
            s.class(c)
                .methods
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(c1), ["m1", "m2", "m3"]);
        assert_eq!(names(c2), ["m1", "m2", "m3", "m4"]);
    }

    #[test]
    fn late_binding_resolution() {
        let s = figure1_schema();
        let c1 = s.class_by_name("c1").unwrap();
        let c2 = s.class_by_name("c2").unwrap();

        let m2_in_c1 = s.resolve_method(c1, "m2").unwrap();
        let m2_in_c2 = s.resolve_method(c2, "m2").unwrap();
        assert_ne!(m2_in_c1, m2_in_c2, "c2 overrides m2");
        assert_eq!(s.method(m2_in_c2).overrides, Some(m2_in_c1));
        assert_eq!(s.method(m2_in_c1).overrides, None);

        // m1 and m3 are inherited: same definition site.
        assert_eq!(s.resolve_method(c1, "m1"), s.resolve_method(c2, "m1"));
        assert_eq!(s.resolve_method(c1, "m3"), s.resolve_method(c2, "m3"));
        assert_eq!(s.resolve_method(c1, "m4"), None);
        assert!(s.resolve_method(c2, "m4").is_some());
    }

    #[test]
    fn field_resolution() {
        let s = figure1_schema();
        let c1 = s.class_by_name("c1").unwrap();
        let c2 = s.class_by_name("c2").unwrap();
        assert_eq!(s.resolve_field(c1, "f1"), s.resolve_field(c2, "f1"));
        assert_eq!(s.resolve_field(c1, "f4"), None);
        let f4 = s.resolve_field(c2, "f4").unwrap();
        assert_eq!(s.field(f4).owner, c2);
        let pos = s.class(c2).field_pos(f4).unwrap();
        assert_eq!(pos, 3, "f4 sits right after the inherited c1 fields");
    }

    #[test]
    fn method_index_is_sorted_position() {
        let s = figure1_schema();
        let c2 = s.class_by_name("c2").unwrap();
        assert_eq!(s.class(c2).method_index("m1"), Some(0));
        assert_eq!(s.class(c2).method_index("m4"), Some(3));
        assert_eq!(s.class(c2).method_index("nope"), None);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a");
        b.class("a");
        assert_eq!(
            b.finish().unwrap_err(),
            ModelError::DuplicateClass("a".into())
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").inherits("ghost");
        assert!(matches!(b.finish(), Err(ModelError::UnknownParent { .. })));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").inherits("b");
        b.class("b").inherits("a");
        assert!(matches!(b.finish(), Err(ModelError::InheritanceCycle(_))));
    }

    #[test]
    fn self_cycle_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").inherits("a");
        assert!(matches!(b.finish(), Err(ModelError::InheritanceCycle(_))));
    }

    #[test]
    fn diamond_linearizes() {
        // a <- b, a <- c, (b,c) <- d : classic diamond.
        let mut b = SchemaBuilder::new();
        b.class("a").field("fa", FieldType::Int).method("m", &[]);
        b.class("b").inherits("a").method("m", &[]);
        b.class("c").inherits("a").method("m", &[]);
        b.class("d").inherits("b").inherits("c");
        let s = b.finish().unwrap();
        let d = s.class_by_name("d").unwrap();
        let lin: Vec<String> = s
            .class(d)
            .linearization
            .iter()
            .map(|&c| s.class(c).name.clone())
            .collect();
        assert_eq!(lin, ["d", "b", "c", "a"]);
        // Diamond field is inherited once.
        assert_eq!(s.class(d).all_fields.len(), 1);
        // d's `m` resolves to b's definition (nearest in MRO).
        let m = s.resolve_method(d, "m").unwrap();
        assert_eq!(s.class(s.method(m).owner).name, "b");
    }

    #[test]
    fn inconsistent_hierarchy_rejected() {
        // Classic C3 failure: order conflict between (a,b) and (b,a).
        let mut b = SchemaBuilder::new();
        b.class("a");
        b.class("b");
        b.class("x").inherits("a").inherits("b");
        b.class("y").inherits("b").inherits("a");
        b.class("z").inherits("x").inherits("y");
        assert!(matches!(
            b.finish(),
            Err(ModelError::InconsistentHierarchy(_))
        ));
    }

    #[test]
    fn ambiguous_field_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").field("f", FieldType::Int);
        b.class("b").field("f", FieldType::Int);
        b.class("c").inherits("a").inherits("b");
        assert!(matches!(b.finish(), Err(ModelError::AmbiguousField { .. })));
    }

    #[test]
    fn shadowing_own_field_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").field("f", FieldType::Int);
        b.class("b").inherits("a").field("f", FieldType::Bool);
        assert!(matches!(b.finish(), Err(ModelError::AmbiguousField { .. })));
    }

    #[test]
    fn duplicate_method_in_class_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").method("m", &[]).method("m", &["p"]);
        assert!(matches!(
            b.finish(),
            Err(ModelError::DuplicateMethod { .. })
        ));
    }

    #[test]
    fn duplicate_field_in_class_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("f", FieldType::Int)
            .field("f", FieldType::Int);
        assert!(matches!(b.finish(), Err(ModelError::DuplicateField { .. })));
    }

    #[test]
    fn unknown_ref_class_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a").ref_field("f", "ghost");
        assert_eq!(
            b.finish().unwrap_err(),
            ModelError::UnknownClass("ghost".into())
        );
    }

    #[test]
    fn forward_reference_parent_ok() {
        // Child declared before parent.
        let mut b = SchemaBuilder::new();
        b.class("child").inherits("parent");
        b.class("parent").field("f", FieldType::Int);
        let s = b.finish().unwrap();
        let child = s.class_by_name("child").unwrap();
        assert_eq!(s.class(child).all_fields.len(), 1);
    }

    #[test]
    fn deep_chain_linearization() {
        let mut b = SchemaBuilder::new();
        b.class("k0").field("g0", FieldType::Int);
        for i in 1..50 {
            let name = format!("k{i}");
            let parent = format!("k{}", i - 1);
            let decl = b.class(&name);
            decl.field(&format!("g{i}"), FieldType::Int);
            decl.inherits(&parent);
        }
        let s = b.finish().unwrap();
        let leaf = s.class_by_name("k49").unwrap();
        assert_eq!(s.class(leaf).linearization.len(), 50);
        assert_eq!(s.class(leaf).all_fields.len(), 50);
        let root = s.class_by_name("k0").unwrap();
        assert_eq!(s.domain(root).len(), 50);
    }

    #[test]
    fn domain_with_branches() {
        let mut b = SchemaBuilder::new();
        b.class("root");
        b.class("l").inherits("root");
        b.class("r").inherits("root");
        b.class("ll").inherits("l");
        let s = b.finish().unwrap();
        let root = s.class_by_name("root").unwrap();
        assert_eq!(s.domain(root).len(), 4);
        let l = s.class_by_name("l").unwrap();
        assert_eq!(s.domain(l).len(), 2);
        assert_eq!(s.class(root).subclasses.len(), 2);
    }
}
