//! Instances: the mutable objects of the database.

use crate::ids::{ClassId, FieldId, Oid};
use crate::schema::Schema;
use crate::value::Value;

/// One object: its class and one value per visible field of that class
/// (positions follow `ClassInfo::all_fields`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// The proper class of the instance (exactly one, per the data model).
    pub class: ClassId,
    /// Field values, indexed by the class's field positions.
    pub values: Vec<Value>,
}

impl Instance {
    /// Creates an instance of `class` with default-initialized fields.
    pub fn new(schema: &Schema, class: ClassId) -> Instance {
        let ci = schema.class(class);
        let values = ci
            .all_fields
            .iter()
            .map(|&f| schema.field(f).ty.default_value())
            .collect();
        Instance { class, values }
    }

    /// Reads a field by id. Returns `None` if the field is not visible in
    /// this instance's class.
    pub fn get(&self, schema: &Schema, field: FieldId) -> Option<&Value> {
        let pos = schema.class(self.class).field_pos(field)?;
        self.values.get(pos)
    }

    /// Writes a field by id. Returns the old value, or `None` if the field
    /// is not visible in this instance's class.
    pub fn set(&mut self, schema: &Schema, field: FieldId, value: Value) -> Option<Value> {
        let pos = schema.class(self.class).field_pos(field)?;
        let slot = self.values.get_mut(pos)?;
        Some(std::mem::replace(slot, value))
    }

    /// Convenience: the OID a reference field currently points to.
    pub fn get_ref(&self, schema: &Schema, field: FieldId) -> Option<Oid> {
        self.get(schema, field).and_then(Value::as_ref_oid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::types::FieldType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("p").field("x", FieldType::Int);
        b.class("q")
            .inherits("p")
            .field("y", FieldType::Bool)
            .ref_field("z", "p");
        b.finish().unwrap()
    }

    #[test]
    fn defaults_and_rw() {
        let s = schema();
        let q = s.class_by_name("q").unwrap();
        let x = s.resolve_field(q, "x").unwrap();
        let y = s.resolve_field(q, "y").unwrap();
        let z = s.resolve_field(q, "z").unwrap();

        let mut i = Instance::new(&s, q);
        assert_eq!(i.get(&s, x), Some(&Value::Int(0)));
        assert_eq!(i.get(&s, y), Some(&Value::Bool(false)));
        assert_eq!(i.get(&s, z), Some(&Value::Nil));

        let old = i.set(&s, x, Value::Int(42)).unwrap();
        assert_eq!(old, Value::Int(0));
        assert_eq!(i.get(&s, x), Some(&Value::Int(42)));

        i.set(&s, z, Value::Ref(Oid(9))).unwrap();
        assert_eq!(i.get_ref(&s, z), Some(Oid(9)));
    }

    #[test]
    fn invisible_field_is_none() {
        let s = schema();
        let p = s.class_by_name("p").unwrap();
        let q = s.class_by_name("q").unwrap();
        let y = s.resolve_field(q, "y").unwrap();
        let mut i = Instance::new(&s, p);
        assert_eq!(i.get(&s, y), None);
        assert_eq!(i.set(&s, y, Value::Bool(true)), None);
    }

    #[test]
    fn subclass_sees_inherited_slot() {
        let s = schema();
        let p = s.class_by_name("p").unwrap();
        let q = s.class_by_name("q").unwrap();
        let x = s.resolve_field(p, "x").unwrap();
        let mut i = Instance::new(&s, q);
        i.set(&s, x, Value::Int(5)).unwrap();
        assert_eq!(i.get(&s, x), Some(&Value::Int(5)));
        assert_eq!(i.values.len(), 3);
    }
}
