//! Schema construction and validation errors.

use std::fmt;

/// Errors raised while building or validating a [`crate::Schema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// A parent class named in an `inherits` clause does not exist.
    UnknownParent { class: String, parent: String },
    /// The inheritance relation contains a cycle through the named class.
    InheritanceCycle(String),
    /// C3 linearization failed (inconsistent multiple-inheritance order).
    InconsistentHierarchy(String),
    /// Two distinct fields with the same name are visible in one class
    /// (either re-declared locally or inherited from unrelated parents).
    AmbiguousField { class: String, field: String },
    /// A method was defined twice in the same class.
    DuplicateMethod { class: String, method: String },
    /// A field was declared twice in the same class.
    DuplicateField { class: String, field: String },
    /// Reference to a class that does not exist.
    UnknownClass(String),
    /// Reference to a field not visible in the class.
    UnknownField { class: String, field: String },
    /// Reference to a method not visible in the class.
    UnknownMethod { class: String, method: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateClass(c) => write!(f, "class `{c}` declared twice"),
            ModelError::UnknownParent { class, parent } => {
                write!(f, "class `{class}` inherits unknown class `{parent}`")
            }
            ModelError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
            ModelError::InconsistentHierarchy(c) => write!(
                f,
                "C3 linearization failed for class `{c}` (inconsistent hierarchy)"
            ),
            ModelError::AmbiguousField { class, field } => write!(
                f,
                "field `{field}` is visible more than once in class `{class}`"
            ),
            ModelError::DuplicateMethod { class, method } => {
                write!(f, "method `{method}` defined twice in class `{class}`")
            }
            ModelError::DuplicateField { class, field } => {
                write!(f, "field `{field}` declared twice in class `{class}`")
            }
            ModelError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            ModelError::UnknownField { class, field } => {
                write!(f, "no field `{field}` visible in class `{class}`")
            }
            ModelError::UnknownMethod { class, method } => {
                write!(f, "no method `{method}` visible in class `{class}`")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::AmbiguousField {
            class: "c2".into(),
            field: "f1".into(),
        };
        assert!(e.to_string().contains("f1"));
        assert!(e.to_string().contains("c2"));
        let e = ModelError::InheritanceCycle("a".into());
        assert!(e.to_string().contains("cycle"));
    }
}
