//! # finecc-model — the object-oriented data model
//!
//! This crate implements the data model of Section 2 of Malta & Martinez
//! (ICDE'93): a class-based model with instances, simple and multiple
//! inheritance, instance variables ("fields") that are either base-typed or
//! references to other instances, and methods that may be inherited or
//! overridden.
//!
//! The model is deliberately the "highest common factor" the paper targets
//! (Smalltalk, ORION, O2, GemStone, ObjectStore, VBASE): one class per
//! instance, no metaclasses, no multiple instantiation.
//!
//! The central type is [`Schema`], built through [`SchemaBuilder`]. A schema
//! owns:
//!
//! * classes ([`ClassId`]) related by inheritance, each with a C3
//!   linearization used for field and method resolution,
//! * globally identified fields ([`FieldId`]) — an inherited field keeps the
//!   `FieldId` of its defining class, which is what makes the paper's access
//!   vectors line up across a hierarchy,
//! * method *definition sites* ([`MethodId`]) — `METHODS(C)` maps a method
//!   name to the nearest definition in `C`'s linearization, i.e. late
//!   binding resolved at the class level.
//!
//! Method *bodies* are not stored here; they live in `finecc-lang` as ASTs
//! keyed by [`MethodId`], keeping this crate independent of the language.

pub mod error;
pub mod ids;
pub mod instance;
pub mod schema;
pub mod types;
pub mod value;

pub use error::ModelError;
pub use ids::{ClassId, FieldId, MethodId, Oid, TxnId};
pub use instance::Instance;
pub use schema::{ClassInfo, FieldInfo, MethodInfo, MethodSig, Schema, SchemaBuilder};
pub use types::FieldType;
pub use value::Value;
