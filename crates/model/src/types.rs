//! Field types.
//!
//! The paper distinguishes fields of a *base type* (integers, booleans, …)
//! from fields that *reference instances* of another class (e.g. `f3 : c3`
//! in Figure 1). Complex types (tuples/sets/lists as in O2) are explicitly
//! out of the paper's scope and out of ours.

use crate::ids::ClassId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The declared type of a field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FieldType {
    /// 64-bit signed integer (`integer` in the surface syntax).
    Int,
    /// Boolean (`boolean`).
    Bool,
    /// IEEE-754 double (`float`).
    Float,
    /// UTF-8 string (`string`).
    Str,
    /// Reference to an instance whose class is in the domain rooted at the
    /// given class (covariant with inheritance), or nil.
    Ref(ClassId),
}

impl FieldType {
    /// The default value a freshly created instance holds in a field of
    /// this type.
    pub fn default_value(self) -> Value {
        match self {
            FieldType::Int => Value::Int(0),
            FieldType::Bool => Value::Bool(false),
            FieldType::Float => Value::Float(0.0),
            FieldType::Str => Value::str(""),
            FieldType::Ref(_) => Value::Nil,
        }
    }

    /// Whether `v` may be stored in a field of this type.
    ///
    /// Reference typing is structural at this level: any OID (or nil) is
    /// accepted; class-membership is checked by the store, which knows the
    /// schema and the target's class.
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (FieldType::Int, Value::Int(_))
                | (FieldType::Bool, Value::Bool(_))
                | (FieldType::Float, Value::Float(_))
                | (FieldType::Str, Value::Str(_))
                | (FieldType::Ref(_), Value::Ref(_))
                | (FieldType::Ref(_), Value::Nil)
        )
    }

    /// `true` for reference types.
    pub fn is_ref(self) -> bool {
        matches!(self, FieldType::Ref(_))
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Int => write!(f, "integer"),
            FieldType::Bool => write!(f, "boolean"),
            FieldType::Float => write!(f, "float"),
            FieldType::Str => write!(f, "string"),
            FieldType::Ref(c) => write!(f, "ref({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Oid;

    #[test]
    fn defaults_match_types() {
        assert!(FieldType::Int.admits(&FieldType::Int.default_value()));
        assert!(FieldType::Bool.admits(&FieldType::Bool.default_value()));
        assert!(FieldType::Float.admits(&FieldType::Float.default_value()));
        assert!(FieldType::Str.admits(&FieldType::Str.default_value()));
        assert!(FieldType::Ref(ClassId(0)).admits(&FieldType::Ref(ClassId(0)).default_value()));
    }

    #[test]
    fn admits_rejects_mismatches() {
        assert!(!FieldType::Int.admits(&Value::Bool(true)));
        assert!(!FieldType::Bool.admits(&Value::Int(1)));
        assert!(!FieldType::Str.admits(&Value::Nil));
        assert!(FieldType::Ref(ClassId(3)).admits(&Value::Ref(Oid(9))));
        assert!(FieldType::Ref(ClassId(3)).admits(&Value::Nil));
        assert!(!FieldType::Ref(ClassId(3)).admits(&Value::Int(9)));
    }

    #[test]
    fn display_names() {
        assert_eq!(FieldType::Int.to_string(), "integer");
        assert_eq!(FieldType::Ref(ClassId(2)).to_string(), "ref(c#2)");
    }
}
