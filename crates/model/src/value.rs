//! Runtime values stored in instance fields and flowing through the method
//! interpreter.

use crate::ids::Oid;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A dynamically-typed runtime value.
///
/// Strings are `Arc<str>` so that cloning values (undo logging, snapshots,
/// message arguments) never reallocates the character data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// Absent reference (`nil`). Also the initial value of reference fields.
    Nil,
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// IEEE-754 double.
    Float(f64),
    /// Immutable shared string.
    Str(Arc<str>),
    /// Reference to another instance.
    Ref(Oid),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Truthiness used by `if`/`while` and the `cond(...)` builtin:
    /// `false`, `0`, `0.0`, `""`, and `nil` are false, everything else true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Nil => false,
            Value::Int(i) => *i != 0,
            Value::Bool(b) => *b,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Ref(_) => true,
        }
    }

    /// Integer view used by arithmetic builtins; booleans coerce to 0/1.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// The OID if this is a reference.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// A short type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Ref(_) => "ref",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // Float equality is bitwise so that undo-log round-trips are
            // exact (NaN restores to NaN).
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Ref(a), Value::Ref(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(o) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(Value::Ref(Oid(0)).truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn nan_is_self_equal() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_ne!(Value::Float(0.0), Value::Float(1.0));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::Ref(Oid(4)).as_ref_oid(), Some(Oid(4)));
        assert_eq!(Value::Nil.as_ref_oid(), None);
    }

    #[test]
    fn from_impls_and_display() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(true).to_string(), "true");
        assert_eq!(Value::from(Oid(2)).to_string(), "oid:2");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
    }

    #[test]
    fn str_clone_shares_buffer() {
        let a = Value::str("shared");
        let b = a.clone();
        if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
            assert!(Arc::ptr_eq(x, y));
        } else {
            unreachable!()
        }
    }
}
