//! Strongly-typed identifiers used throughout the workspace.
//!
//! All identifiers are plain integers behind newtypes: cheap to copy, hash
//! and order, and impossible to confuse with one another at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the identifier as a `usize`, for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a `usize` index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(i as $repr)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a class within a [`crate::Schema`].
    ClassId,
    u32,
    "c#"
);

id_type!(
    /// Identifies a field *definition*. An inherited field keeps the
    /// `FieldId` assigned at its defining class, so access vectors of a
    /// subclass and its superclass index common fields identically
    /// (Definition 6(i) of the paper).
    FieldId,
    u32,
    "f#"
);

id_type!(
    /// Identifies a method *definition site* (a `(class, name, body)`
    /// triple). A method inherited unchanged shares the `MethodId` of the
    /// defining ancestor; an override introduces a fresh `MethodId`.
    MethodId,
    u32,
    "m#"
);

id_type!(
    /// An object identifier. Unique per database, never reused.
    Oid,
    u64,
    "oid:"
);

id_type!(
    /// A transaction identifier. Monotonically increasing; doubles as the
    /// timestamp used by deadlock victim selection.
    TxnId,
    u64,
    "txn:"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types_and_roundtrip() {
        let c = ClassId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.raw(), 7);
        assert_eq!(format!("{c}"), "c#7");
        assert_eq!(format!("{c:?}"), "c#7");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(Oid(1));
        set.insert(Oid(2));
        set.insert(Oid(1));
        assert_eq!(set.len(), 2);
        assert!(TxnId(3) < TxnId(10));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(FieldId::default(), FieldId(0));
        assert_eq!(MethodId::default().index(), 0);
    }
}
