//! # finecc-mvcc — the multi-version object heap
//!
//! A multi-version concurrency layer over [`finecc_store::Database`],
//! giving the scheme matrix its optimistic/multi-version point of
//! comparison (after Larson et al., *High-Performance Concurrency Control
//! Mechanisms for Main-Memory Databases*, VLDB 2012):
//!
//! * **Version chains** ([`heap::MvccHeap`]) — per-OID chains of version
//!   records ordered newest-first by commit timestamp. The *current*
//!   value of every field stays materialized in the base
//!   [`finecc_store::Database`] (so non-MVCC consumers keep working);
//!   chain records hold the before-images needed to reconstruct any
//!   registered snapshot — the rollback-segment organization.
//! * **Timestamps** — an atomic commit-timestamp clock (one `fetch_add`
//!   per writer commit) decoupled from *visibility*: a **lock-free**
//!   ordered publication watermark (a CAS ring of in-flight commit
//!   slots) advances the snapshot source only across a contiguous
//!   flipped prefix, so a snapshot never observes a half-flipped
//!   transaction even though committers flip their chains without any
//!   lock at all (see the `heap` module's "Concurrency architecture"
//!   docs).
//! * **Snapshots** ([`snapshot::Snapshot`]) — first-class read-only
//!   views: no logical locks, stable for their whole lifetime, and
//!   registered with the GC so the versions they need stay alive.
//!   Snapshot reads are **latch-free**: chains are published
//!   copy-on-write behind atomic pointers with epoch-based
//!   reclamation, and a chain hit never touches the base store
//!   (records carry before- *and* after-images per field).
//! * **Write conflicts** — first-updater-wins at **field granularity**
//!   (the paper's granularity): a write fails immediately with
//!   [`MvccConflict`] iff another live transaction holds a pending
//!   version of the *same field*, or a version of it committed after the
//!   writer's snapshot. Writers of disjoint fields of one object never
//!   conflict — the multi-version analogue of the paper's P4 fix. At
//!   [`IsolationLevel::Snapshot`] a transaction that never conflicts is
//!   guaranteed to commit — validation cannot fail later.
//! * **Garbage collection** — epoch-based: active snapshots pin a
//!   horizon; versions committed at or before the horizon can never be
//!   demanded again and are reclaimed ([`MvccHeap::gc`], also run
//!   opportunistically every few commits).
//! * **Isolation levels** ([`IsolationLevel`]) — the heap runs at plain
//!   [`IsolationLevel::Snapshot`] (write skew possible, commit
//!   infallible) or at [`IsolationLevel::Serializable`], which layers
//!   SSI-style commit-time validation on top ([`ssi`]): field-granular
//!   rw-antidependency tracking à la Cahill, with transactions aborted
//!   ([`SsiConflict`]) when they sit in a dangerous structure.
//!
//! The executable scheme built on this heap lives in
//! `finecc_runtime::schemes::mvcc`, one scheme-matrix entry per
//! isolation level (`mvcc`, `mvcc-ssi`).

mod cow;
pub mod heap;
pub mod snapshot;
pub mod ssi;
pub mod stats;
mod watermark;

pub use heap::{CommitError, CommitPath, MvccConflict, MvccHeap, MvccWriteError, WriteOutcome};
pub use snapshot::Snapshot;
pub use ssi::{IsolationLevel, SsiConflict};
pub use stats::{MvccStats, MvccStatsSnapshot};
// Durability is a scheme parameter like the isolation level; re-export
// the knobs so heap consumers configure both from one place.
pub use finecc_wal::{
    recover_database_with_window, DurabilityLevel, RecoveryInfo, Wal, WalConfig, WalStats,
    WalStatsSnapshot, DEFAULT_REORDER_WINDOW,
};

/// Commit timestamps. `0` is the genesis timestamp (before any commit);
/// pending versions carry [`TS_PENDING`].
pub type Ts = u64;

/// The sentinel timestamp of a not-yet-committed version record.
pub const TS_PENDING: Ts = u64::MAX;
