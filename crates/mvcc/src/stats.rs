//! MVCC statistics: the optimistic-scheme counterpart of
//! `finecc_lock::LockStats` — experiments report the two side by side.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of an [`crate::MvccHeap`].
#[derive(Debug, Default)]
pub struct MvccStats {
    begins: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    write_conflicts: AtomicU64,
    ssi_aborts: AtomicU64,
    ssi_edges: AtomicU64,
    ts_skips: AtomicU64,
    snapshot_reads: AtomicU64,
    read_chain_hits: AtomicU64,
    read_base_loads: AtomicU64,
    read_retries: AtomicU64,
    read_pin_retries: AtomicU64,
    watermark_waits: AtomicU64,
    cow_reclaimed: AtomicU64,
    versions_created: AtomicU64,
    versions_reclaimed: AtomicU64,
    chain_len_sum: AtomicU64,
    chain_len_samples: AtomicU64,
    chain_len_max: AtomicU64,
}

macro_rules! bumpers {
    ($($bump:ident => $field:ident),* $(,)?) => {$(
        pub(crate) fn $bump(&self) {
            self.$field.fetch_add(1, Ordering::Relaxed);
        }
    )*};
}

impl MvccStats {
    bumpers! {
        bump_begins => begins,
        bump_commits => commits,
        bump_aborts => aborts,
        bump_write_conflicts => write_conflicts,
        bump_ssi_aborts => ssi_aborts,
        bump_ts_skips => ts_skips,
        bump_snapshot_reads => snapshot_reads,
        bump_read_chain_hits => read_chain_hits,
        bump_read_base_loads => read_base_loads,
        bump_read_retries => read_retries,
        bump_watermark_waits => watermark_waits,
        bump_versions_created => versions_created,
    }

    pub(crate) fn add_versions_reclaimed(&self, n: u64) {
        self.versions_reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_ssi_edges(&self, n: u64) {
        self.ssi_edges.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_read_pin_retries(&self, n: u64) {
        self.read_pin_retries.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_cow_reclaimed(&self, n: u64) {
        self.cow_reclaimed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn sample_chain_len(&self, len: u64) {
        self.chain_len_sum.fetch_add(len, Ordering::Relaxed);
        self.chain_len_samples.fetch_add(1, Ordering::Relaxed);
        self.chain_len_max.fetch_max(len, Ordering::Relaxed);
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> MvccStatsSnapshot {
        MvccStatsSnapshot {
            begins: self.begins.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            write_conflicts: self.write_conflicts.load(Ordering::Relaxed),
            ssi_aborts: self.ssi_aborts.load(Ordering::Relaxed),
            ssi_edges: self.ssi_edges.load(Ordering::Relaxed),
            ts_skips: self.ts_skips.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            read_chain_hits: self.read_chain_hits.load(Ordering::Relaxed),
            read_base_loads: self.read_base_loads.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            read_pin_retries: self.read_pin_retries.load(Ordering::Relaxed),
            watermark_waits: self.watermark_waits.load(Ordering::Relaxed),
            cow_reclaimed: self.cow_reclaimed.load(Ordering::Relaxed),
            versions_created: self.versions_created.load(Ordering::Relaxed),
            versions_reclaimed: self.versions_reclaimed.load(Ordering::Relaxed),
            chain_len_sum: self.chain_len_sum.load(Ordering::Relaxed),
            chain_len_samples: self.chain_len_samples.load(Ordering::Relaxed),
            chain_len_max: self.chain_len_max.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.begins.store(0, Ordering::Relaxed);
        self.commits.store(0, Ordering::Relaxed);
        self.aborts.store(0, Ordering::Relaxed);
        self.write_conflicts.store(0, Ordering::Relaxed);
        self.ssi_aborts.store(0, Ordering::Relaxed);
        self.ssi_edges.store(0, Ordering::Relaxed);
        self.ts_skips.store(0, Ordering::Relaxed);
        self.snapshot_reads.store(0, Ordering::Relaxed);
        self.read_chain_hits.store(0, Ordering::Relaxed);
        self.read_base_loads.store(0, Ordering::Relaxed);
        self.read_retries.store(0, Ordering::Relaxed);
        self.read_pin_retries.store(0, Ordering::Relaxed);
        self.watermark_waits.store(0, Ordering::Relaxed);
        self.cow_reclaimed.store(0, Ordering::Relaxed);
        self.versions_created.store(0, Ordering::Relaxed);
        self.versions_reclaimed.store(0, Ordering::Relaxed);
        self.chain_len_sum.store(0, Ordering::Relaxed);
        self.chain_len_samples.store(0, Ordering::Relaxed);
        self.chain_len_max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`MvccStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvccStatsSnapshot {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (all causes).
    pub aborts: u64,
    /// Writes refused by first-updater-wins validation.
    pub write_conflicts: u64,
    /// Commits refused by SSI dangerous-structure validation (zero at
    /// [`crate::IsolationLevel::Snapshot`]).
    pub ssi_aborts: u64,
    /// rw-antidependency edges observed by the SSI tracker (zero at
    /// [`crate::IsolationLevel::Snapshot`]).
    pub ssi_edges: u64,
    /// Commit timestamps drawn from the clock but published as *skips*
    /// because SSI validation refused the transaction after the draw.
    /// The watermark prefix stays contiguous: `current_ts` equals
    /// writer commits + skips once all transactions have finished.
    pub ts_skips: u64,
    /// Snapshot field reads served.
    pub snapshot_reads: u64,
    /// Snapshot reads answered entirely from a copy-on-write chain —
    /// the **latch-free** path: no mutex, no `RwLock`, no base-store
    /// access.
    pub read_chain_hits: u64,
    /// Snapshot reads that missed the chains (no record covers the
    /// field) and paid exactly one base-store `RwLock::read`.
    pub read_base_loads: u64,
    /// Miss-revalidation retries: a chain-miss read raced a first
    /// writer of the field and re-ran through the chain (the read
    /// path's only loop; it resolves on the next iteration).
    pub read_retries: u64,
    /// Reclamation-era races during reader pinning (bounded retry of
    /// two atomic ops; fires at most around GC passes).
    pub read_pin_retries: u64,
    /// Commit publications that hit the watermark ring's overflow
    /// fallback (more in-flight commits than ring slots).
    pub watermark_waits: u64,
    /// Retired copy-on-write chain/map snapshots freed after their
    /// reclamation grace period.
    pub cow_reclaimed: u64,
    /// Version records installed.
    pub versions_created: u64,
    /// Version records reclaimed — by epoch GC or discarded by abort
    /// rollback. After a full GC with no live transactions this equals
    /// [`MvccStatsSnapshot::versions_created`].
    pub versions_reclaimed: u64,
    /// Sum of chain lengths sampled at each write.
    pub chain_len_sum: u64,
    /// Number of chain-length samples.
    pub chain_len_samples: u64,
    /// Longest chain observed at a write.
    pub chain_len_max: u64,
}

impl MvccStatsSnapshot {
    /// Mean version-chain length observed at writes.
    pub fn mean_chain_len(&self) -> f64 {
        if self.chain_len_samples == 0 {
            0.0
        } else {
            self.chain_len_sum as f64 / self.chain_len_samples as f64
        }
    }

    /// Emits every counter under stable `finecc.mvcc.*` names.
    pub fn collect_metrics(&self, c: &mut finecc_obs::Collector) {
        c.counter("finecc.mvcc.begins", self.begins);
        c.counter("finecc.mvcc.commits", self.commits);
        c.counter("finecc.mvcc.aborts", self.aborts);
        c.counter("finecc.mvcc.write_conflicts", self.write_conflicts);
        c.counter("finecc.mvcc.ssi_aborts", self.ssi_aborts);
        c.counter("finecc.mvcc.ssi_edges", self.ssi_edges);
        c.counter("finecc.mvcc.ts_skips", self.ts_skips);
        c.counter("finecc.mvcc.snapshot_reads", self.snapshot_reads);
        c.counter("finecc.mvcc.read_chain_hits", self.read_chain_hits);
        c.counter("finecc.mvcc.read_base_loads", self.read_base_loads);
        c.counter("finecc.mvcc.read_retries", self.read_retries);
        c.counter("finecc.mvcc.read_pin_retries", self.read_pin_retries);
        c.counter("finecc.mvcc.watermark_waits", self.watermark_waits);
        c.counter("finecc.mvcc.cow_reclaimed", self.cow_reclaimed);
        c.counter("finecc.mvcc.versions_created", self.versions_created);
        c.counter("finecc.mvcc.versions_reclaimed", self.versions_reclaimed);
        c.gauge("finecc.mvcc.chain_len_mean", self.mean_chain_len());
        c.gauge("finecc.mvcc.chain_len_max", self.chain_len_max as f64);
    }

    /// The difference `self - earlier`, counter-wise (saturating).
    pub fn since(&self, earlier: &MvccStatsSnapshot) -> MvccStatsSnapshot {
        MvccStatsSnapshot {
            begins: self.begins.saturating_sub(earlier.begins),
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            write_conflicts: self.write_conflicts.saturating_sub(earlier.write_conflicts),
            ssi_aborts: self.ssi_aborts.saturating_sub(earlier.ssi_aborts),
            ssi_edges: self.ssi_edges.saturating_sub(earlier.ssi_edges),
            ts_skips: self.ts_skips.saturating_sub(earlier.ts_skips),
            snapshot_reads: self.snapshot_reads.saturating_sub(earlier.snapshot_reads),
            read_chain_hits: self.read_chain_hits.saturating_sub(earlier.read_chain_hits),
            read_base_loads: self.read_base_loads.saturating_sub(earlier.read_base_loads),
            read_retries: self.read_retries.saturating_sub(earlier.read_retries),
            read_pin_retries: self
                .read_pin_retries
                .saturating_sub(earlier.read_pin_retries),
            watermark_waits: self.watermark_waits.saturating_sub(earlier.watermark_waits),
            cow_reclaimed: self.cow_reclaimed.saturating_sub(earlier.cow_reclaimed),
            versions_created: self
                .versions_created
                .saturating_sub(earlier.versions_created),
            versions_reclaimed: self
                .versions_reclaimed
                .saturating_sub(earlier.versions_reclaimed),
            chain_len_sum: self.chain_len_sum.saturating_sub(earlier.chain_len_sum),
            chain_len_samples: self
                .chain_len_samples
                .saturating_sub(earlier.chain_len_samples),
            // A maximum does not difference; keep the later value.
            chain_len_max: self.chain_len_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reset_and_mean() {
        let s = MvccStats::default();
        s.bump_commits();
        s.sample_chain_len(2);
        s.sample_chain_len(4);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.mean_chain_len(), 3.0);
        assert_eq!(snap.chain_len_max, 4);
        s.reset();
        assert_eq!(s.snapshot(), MvccStatsSnapshot::default());
        assert_eq!(s.snapshot().mean_chain_len(), 0.0);
    }

    #[test]
    fn since_diffs() {
        let a = MvccStatsSnapshot {
            commits: 5,
            write_conflicts: 1,
            ..Default::default()
        };
        let b = MvccStatsSnapshot {
            commits: 9,
            write_conflicts: 4,
            chain_len_max: 7,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.commits, 4);
        assert_eq!(d.write_conflicts, 3);
        assert_eq!(d.chain_len_max, 7);
    }
}
