//! First-class read snapshots.

use crate::heap::{EpochHandle, MvccHeap};
use crate::Ts;
use finecc_model::{FieldId, Oid, Value};
use finecc_store::StoreError;
use std::sync::Arc;

/// A stable, read-only view of the heap as of one commit timestamp.
///
/// Snapshot reads take **no logical locks** and never block writers;
/// writers never block snapshot readers. While the snapshot is alive it
/// is registered with the heap's sharded epoch table, pinning the
/// version records it may still need; dropping it releases them for GC.
pub struct Snapshot {
    heap: Arc<MvccHeap>,
    epoch: EpochHandle,
}

impl Snapshot {
    pub(crate) fn new(heap: Arc<MvccHeap>, epoch: EpochHandle) -> Snapshot {
        Snapshot { heap, epoch }
    }

    /// The commit timestamp this snapshot observes.
    pub fn ts(&self) -> Ts {
        self.epoch.ts
    }

    /// Reads one field as of the snapshot.
    pub fn read(&self, oid: Oid, field: FieldId) -> Result<Value, StoreError> {
        self.heap.read_as(self.epoch.ts, None, oid, field)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.heap.release_snapshot(self.epoch);
    }
}
