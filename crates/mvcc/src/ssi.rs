//! Serializable snapshot isolation: rw-antidependency tracking and
//! commit-time dangerous-structure validation, after Cahill, Röhm &
//! Fekete ("Serializable Isolation for Snapshot Databases", SIGMOD 2008).
//!
//! Plain snapshot isolation admits exactly one anomaly class: histories
//! whose serialization graph contains a cycle with two **consecutive
//! rw-antidependency edges** between concurrent transactions — the
//! *dangerous structure* `T_in ──rw──▶ T_pivot ──rw──▶ T_out`. The
//! tracker detects candidates with Cahill's two sticky flags per
//! transaction:
//!
//! * `in_conflict` — some concurrent transaction read a version this
//!   transaction overwrote (an incoming rw edge);
//! * `out_conflict` — this transaction read a version some concurrent
//!   transaction overwrote (an outgoing rw edge).
//!
//! A transaction that reaches commit with **both** flags set is a pivot
//! candidate and is aborted ([`SsiConflict`]). When an edge would turn an
//! already **committed** transaction into a pivot, it is too late to
//! abort the pivot, so the transaction *completing* the structure aborts
//! instead ([`SsiConflict::pivot`]). The tracker itself (`SsiTracker`)
//! is crate-internal; `finecc_mvcc::MvccHeap` drives it.
//!
//! # Striping and the per-edge protocol
//!
//! Both tracker tables are sharded: the SIREAD registry by OID and the
//! flag table by `TxnId`, so no tracker operation takes a global lock.
//! The correctness argument leans on two facts:
//!
//! 1. **A transaction's own thread is sequential.** Edge recording that
//!    a transaction performs for *itself* (its out-flag during a read,
//!    its in-flag after a write) is ordered before its own commit
//!    validation by program order; no lock is needed for that ordering.
//! 2. **Remote flag updates synchronize on the target's stripe.** When
//!    transaction `A`'s thread updates transaction `B`'s flags (the
//!    writer's in-flag on the read side, the readers' out-flags on the
//!    write side), it locks `B`'s stripe, and
//!    `SsiTracker::validate_and_commit` checks-and-marks `B`'s
//!    commit in one critical section on that same stripe. A remote
//!    update therefore lands either *before* `B`'s pivot check (and is
//!    seen by it) or *after* `B` is properly committed (and takes the
//!    committed-pivot path, dooming the completing transaction). The
//!    seed implementation bought this atomicity with one global flags
//!    mutex; striping preserves it per transaction while letting
//!    validation of unrelated transactions proceed in parallel.
//!
//! At most one flag stripe is held at any time (edge endpoints are
//! visited one after the other), so stripe acquisition cannot deadlock.
//! The only nested tracker acquisition at all is `SsiTracker::purge`,
//! which checks flag stripes *under* a SIREAD shard lock; the order
//! SIREAD shard → flag stripe is never reversed.
//!
//! The reads feeding the tracker are the interpreter's field-granularity
//! footprints — the runtime projection of the paper's access vectors —
//! so a reader of `o.x` never conflicts with a writer of `o.y`: the
//! validation granularity matches the locking granularity of the TAV
//! scheme (Huang et al. show granularity drives the false-positive
//! rate). The flags themselves are still conservative: one bit per
//! direction, kept even when the edge partner later aborts, so some
//! serializable histories abort (see `ROADMAP.md` for the precise,
//! edge-list-based follow-up). The tracker never blocks readers — it
//! only records, which is why the mvcc scheme's lock statistics stay
//! identically zero under either isolation level.
//!
//! # Observability probes
//!
//! The tracker itself carries no probes — its stripe mutexes stay
//! exactly as analyzed above. Validation time is charged to the
//! heap's `commit_ts_draw` histogram segment (the pivot check gates
//! the draw's visibility, so the two are timed as one), and each
//! [`SsiConflict`] is attributed in the contention registry by the
//! heap *after* `validate_and_commit` returns — never from inside a
//! flag stripe or SIREAD shard, so the probe cannot add an edge to the
//! lock-order argument. The abort is keyed to the transaction's first
//! written object when it has one, or recorded unattributed for a
//! read-only pivot.

use crate::Ts;
use finecc_model::{FieldId, Oid, TxnId};
use parking_lot::Mutex;
use std::collections::HashMap;

/// How many mutexes the SIREAD registry is striped over.
const READER_SHARDS: usize = 32;

/// How many mutexes the flag table is striped over.
const FLAG_STRIPES: usize = 64;

/// The isolation level of an [`crate::MvccHeap`] — a first-class scheme
/// parameter (the runtime exposes one scheme entry per level).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// Plain snapshot isolation: first-updater-wins writes, infallible
    /// commit, write skew possible.
    #[default]
    Snapshot,
    /// Snapshot isolation plus commit-time dangerous-structure
    /// validation: serializable, at the price of validation aborts.
    Serializable,
}

impl IsolationLevel {
    /// Stable display name (`"snapshot"` / `"serializable"`).
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::Snapshot => "snapshot",
            IsolationLevel::Serializable => "serializable",
        }
    }
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A commit was refused because the transaction sits in a dangerous
/// structure (two consecutive rw-antidependencies among concurrent
/// transactions). The transaction has been rolled back; retrying on a
/// fresh snapshot is the standard response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SsiConflict {
    /// The aborted transaction.
    pub txn: TxnId,
    /// `Some(p)` when the abort was forced because `p` — already
    /// committed — would otherwise become the pivot of a dangerous
    /// structure; `None` when the aborted transaction is itself the
    /// pivot candidate (both flags set).
    pub pivot: Option<TxnId>,
}

impl std::fmt::Display for SsiConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pivot {
            Some(p) => write!(
                f,
                "ssi validation: {} completes a dangerous structure around committed pivot {p}",
                self.txn
            ),
            None => write!(
                f,
                "ssi validation: dangerous structure — {} carries both incoming and outgoing \
                 rw-antidependencies",
                self.txn
            ),
        }
    }
}

impl std::error::Error for SsiConflict {}

/// Conflict-flag record of one tracked transaction. Entries of committed
/// transactions are retained until no concurrent transaction can remain
/// (see [`SsiTracker::purge`]); entries of aborted transactions are
/// dropped immediately.
#[derive(Debug, Default)]
struct Flags {
    /// An incoming rw edge exists: a concurrent transaction read a
    /// version this one overwrote.
    in_conflict: bool,
    /// An outgoing rw edge exists: this transaction read a version a
    /// concurrent transaction overwrote.
    out_conflict: bool,
    /// Set when an edge completed a dangerous structure around an
    /// already-committed pivot; the named pivot cannot be aborted, so
    /// this transaction must be.
    doomed_by: Option<TxnId>,
    /// Commit timestamp once committed (`None` while live). Read-only
    /// transactions record their snapshot timestamp — they serialize
    /// there, so no later-snapshot transaction is concurrent with them.
    commit_ts: Option<Ts>,
}

/// The SIREAD registry: which transactions have read which field,
/// striped by OID. Concurrency windows come from the flag table's
/// commit timestamps, so the registry itself only needs identities.
type ReaderShard = Mutex<HashMap<(Oid, FieldId), Vec<TxnId>>>;

/// One stripe of the flag table.
type FlagStripe = Mutex<HashMap<TxnId, Flags>>;

/// The rw-antidependency tracker of a Serializable-level heap.
///
/// Writers consult the SIREAD registry *after* installing their pending
/// version; readers register *before* walking the version chain. Either
/// the reader's chain walk sees the writer's record (the read side marks
/// the edge) or the writer's registry scan sees the reader (the write
/// side marks it) — the edge can never fall between the two.
#[derive(Debug)]
pub(crate) struct SsiTracker {
    /// SIREAD registry: who has read which field, striped by OID.
    readers: Box<[ReaderShard]>,
    /// Conflict flags of live and recently committed transactions,
    /// striped by `TxnId`. Each stripe is the commit-status authority
    /// for its transactions, so per-transaction flag updates and commit
    /// publication are atomic with respect to each other (see the
    /// module docs for the striping protocol).
    flags: Box<[FlagStripe]>,
}

/// What [`SsiTracker::validate_and_commit`] decided.
pub(crate) enum SsiVerdict {
    /// No dangerous structure: the transaction was atomically marked
    /// committed at the given timestamp.
    Committed,
    /// Dangerous structure: the caller must roll the transaction back.
    Abort(SsiConflict),
}

impl SsiTracker {
    pub(crate) fn new() -> SsiTracker {
        let readers = (0..READER_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let flags = (0..FLAG_STRIPES)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SsiTracker { readers, flags }
    }

    #[inline]
    fn reader_shard(&self, oid: Oid) -> &ReaderShard {
        &self.readers[(oid.raw() as usize) % READER_SHARDS]
    }

    #[inline]
    fn stripe(&self, txn: TxnId) -> &FlagStripe {
        &self.flags[(txn.raw() as usize) % FLAG_STRIPES]
    }

    /// Starts tracking `txn`.
    pub(crate) fn register(&self, txn: TxnId) {
        self.stripe(txn).lock().insert(txn, Flags::default());
    }

    /// Registers a SIREAD: `txn` is about to read `(oid, field)`. Must
    /// run BEFORE the version-chain walk.
    pub(crate) fn record_read(&self, txn: TxnId, oid: Oid, field: FieldId) {
        let mut shard = self.reader_shard(oid).lock();
        let entries = shard.entry((oid, field)).or_default();
        if !entries.contains(&txn) {
            entries.push(txn);
        }
    }

    /// Marks the rw edge `reader ──rw──▶ writer`, discovered on the read
    /// side: `reader` reconstructed a version of a field that `writer`
    /// has overwritten (pending, or committed after the reader's
    /// snapshot). Called by the **reader's own thread**, so the
    /// reader-side flag lands before the reader's own validation by
    /// program order; the writer's stripe is locked to make the
    /// check-and-mark against the writer's commit status atomic.
    /// Returns the number of edges recorded (0 or 1).
    pub(crate) fn read_edge(&self, reader: TxnId, writer: TxnId) -> u64 {
        if reader == writer {
            return 0;
        }
        // The writer may be long gone (purged): its flags can no longer
        // matter to anyone live, but the reader's out-edge is real.
        let writer_committed_pivot = {
            let mut stripe = self.stripe(writer).lock();
            match stripe.get_mut(&writer) {
                Some(w) => {
                    w.in_conflict = true;
                    w.commit_ts.is_some() && w.out_conflict
                }
                None => false,
            }
        };
        let mut stripe = self.stripe(reader).lock();
        if let Some(r) = stripe.get_mut(&reader) {
            r.out_conflict = true;
            if writer_committed_pivot && r.doomed_by.is_none() {
                // `writer` is committed with both flags: it is a pivot
                // we can no longer abort, so the completing side must go.
                r.doomed_by = Some(writer);
            }
        }
        1
    }

    /// Marks every rw edge `R ──rw──▶ writer` for concurrent readers `R`
    /// of `(oid, field)`, discovered on the write side. Must run AFTER
    /// the writer's pending version is installed. Called by the
    /// **writer's own thread**: each reader's stripe is locked for the
    /// concurrency test plus out-flag (atomic against that reader's
    /// validation), and the writer's own in-flag lands before its own
    /// validation by program order. Returns the number of edges
    /// recorded.
    pub(crate) fn write_edges(
        &self,
        writer: TxnId,
        writer_snapshot: Ts,
        oid: Oid,
        field: FieldId,
    ) -> u64 {
        let snapshot: Vec<TxnId> = {
            let shard = self.reader_shard(oid).lock();
            match shard.get(&(oid, field)) {
                Some(rs) => rs.clone(),
                None => return 0,
            }
        };
        let mut edges = 0;
        let mut doom: Option<TxnId> = None;
        for reader in snapshot {
            if reader == writer {
                continue;
            }
            let mut stripe = self.stripe(reader).lock();
            // Aborted (or purged) reader: no edge.
            let Some(f) = stripe.get_mut(&reader) else {
                continue;
            };
            // Concurrency: a live reader overlaps the live writer by
            // definition; a committed reader overlaps iff the writer's
            // snapshot predates the reader's commit (otherwise the
            // writer's snapshot already contains everything the reader
            // saw, and the edge is plain wr ordering).
            match f.commit_ts {
                None => {}
                Some(c) if c > writer_snapshot => {}
                Some(_) => continue, // not concurrent
            }
            f.out_conflict = true;
            edges += 1;
            if f.commit_ts.is_some() && f.in_conflict {
                doom = Some(reader);
            }
        }
        if edges > 0 {
            let mut stripe = self.stripe(writer).lock();
            if let Some(w) = stripe.get_mut(&writer) {
                w.in_conflict = true;
                if let Some(p) = doom {
                    if w.doomed_by.is_none() {
                        w.doomed_by = Some(p);
                    }
                }
            }
        }
        edges
    }

    /// Commit-time validation, atomic with commit publication **per
    /// transaction**: the check and the commit mark happen in one
    /// critical section on the transaction's own flag stripe, so an
    /// edge discovered by a concurrent transaction lands either before
    /// the check or against a properly committed transaction — never in
    /// between. Only the one stripe is locked; validations of
    /// transactions on other stripes proceed in parallel.
    pub(crate) fn validate_and_commit(&self, txn: TxnId, commit_ts: Ts) -> SsiVerdict {
        let mut stripe = self.stripe(txn).lock();
        let f = stripe
            .get_mut(&txn)
            .expect("transaction is registered with the ssi tracker");
        if let Some(pivot) = f.doomed_by {
            stripe.remove(&txn);
            return SsiVerdict::Abort(SsiConflict {
                txn,
                pivot: Some(pivot),
            });
        }
        if f.in_conflict && f.out_conflict {
            stripe.remove(&txn);
            return SsiVerdict::Abort(SsiConflict { txn, pivot: None });
        }
        f.commit_ts = Some(commit_ts);
        SsiVerdict::Committed
    }

    /// Drops all tracking state of an aborted transaction. Flags it set
    /// on OTHER transactions stay set (sticky, conservatively), matching
    /// Cahill's original formulation.
    pub(crate) fn forget(&self, txn: TxnId) {
        self.stripe(txn).lock().remove(&txn);
    }

    /// Drops flag entries and SIREAD registrations that can no longer
    /// participate in an edge: committed transactions whose commit
    /// timestamp is at or below `horizon` (the oldest live snapshot —
    /// every live or future transaction's snapshot already contains
    /// them, so no further concurrency is possible).
    ///
    /// Runs stripe-at-a-time — no global lock. A SIREAD entry is kept
    /// iff its transaction still has a flag entry, checked under the
    /// SIREAD shard's lock (flag stripes are locked *nested inside* the
    /// shard lock; that order is never reversed). Verdicts are cached
    /// per shard: transaction ids are never reused, so a transaction
    /// observed gone cannot come back, and entries present in the shard
    /// were added before the shard was locked — i.e. by transactions
    /// registered before the check.
    pub(crate) fn purge(&self, horizon: Ts) {
        for stripe in self.flags.iter() {
            stripe.lock().retain(|_, f| match f.commit_ts {
                Some(c) => c > horizon,
                None => true,
            });
        }
        for shard in self.readers.iter() {
            let mut shard = shard.lock();
            let mut live: HashMap<TxnId, bool> = HashMap::new();
            shard.retain(|_, rs| {
                rs.retain(|t| {
                    *live
                        .entry(*t)
                        .or_insert_with(|| self.stripe(*t).lock().contains_key(t))
                });
                !rs.is_empty()
            });
        }
    }

    /// Number of live SIREAD registrations (diagnostics; shards are
    /// visited one at a time, so the total is approximate under
    /// concurrency).
    pub(crate) fn siread_entries(&self) -> usize {
        self.readers
            .iter()
            .map(|s| s.lock().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Number of tracked (live or retained-committed) transactions
    /// (diagnostics; stripes are visited one at a time, so the total is
    /// approximate under concurrency).
    pub(crate) fn tracked_txns(&self) -> usize {
        self.flags.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const T3: TxnId = TxnId(3);

    #[test]
    fn isolation_level_names() {
        assert_eq!(IsolationLevel::Snapshot.to_string(), "snapshot");
        assert_eq!(IsolationLevel::Serializable.name(), "serializable");
        assert_eq!(IsolationLevel::default(), IsolationLevel::Snapshot);
    }

    #[test]
    fn conflict_display_mentions_dangerous_structure() {
        let own = SsiConflict {
            txn: T1,
            pivot: None,
        };
        assert!(own.to_string().contains("dangerous structure"));
        let completing = SsiConflict {
            txn: T1,
            pivot: Some(T2),
        };
        assert!(completing.to_string().contains("committed pivot"));
    }

    #[test]
    fn pivot_with_both_flags_aborts_at_commit() {
        let t = SsiTracker::new();
        t.register(T1);
        t.register(T2);
        t.register(T3);
        let oid = Oid(1);
        let f = FieldId(0);
        // T2 reads; T3 overwrites what T2 read; T1 reads what T2 wrote…
        t.record_read(T2, oid, f);
        assert_eq!(t.write_edges(T3, 0, oid, f), 1); // T2 → T3
        assert_eq!(t.read_edge(T1, T2), 1); // T1 → T2
                                            // …so T2 is the pivot: in (from T1) and out (to T3).
        match t.validate_and_commit(T2, 7) {
            SsiVerdict::Abort(c) => {
                assert_eq!(c.txn, T2);
                assert_eq!(c.pivot, None);
            }
            SsiVerdict::Committed => panic!("pivot must abort"),
        }
        // The other two carry one flag each and commit fine.
        assert!(matches!(
            t.validate_and_commit(T1, 8),
            SsiVerdict::Committed
        ));
        assert!(matches!(
            t.validate_and_commit(T3, 9),
            SsiVerdict::Committed
        ));
    }

    #[test]
    fn committed_pivot_dooms_the_completing_transaction() {
        let t = SsiTracker::new();
        t.register(T1);
        t.register(T3);
        let oid = Oid(4);
        let f = FieldId(1);
        // T1 reads (oid, f) at snapshot 0 and gains an IN edge: T3 read
        // something T1 overwrote (T3 → T1). T1 then commits — one flag
        // only, so commit succeeds.
        t.record_read(T1, oid, f);
        t.read_edge(T3, T1);
        assert!(matches!(
            t.validate_and_commit(T1, 5),
            SsiVerdict::Committed
        ));
        // T4 (snapshot 0, concurrent with T1's commit at 5) overwrites
        // what T1 read: edge T1 → T4 gives committed T1 its OUT flag —
        // T1 is now a pivot nobody can abort, so T4 is doomed.
        let t4 = TxnId(4);
        t.register(t4);
        assert_eq!(t.write_edges(t4, 0, oid, f), 1, "edge from committed T1");
        match t.validate_and_commit(t4, 6) {
            SsiVerdict::Abort(c) => assert_eq!(c.pivot, Some(T1)),
            SsiVerdict::Committed => panic!("completing txn must abort"),
        }
    }

    #[test]
    fn non_concurrent_committed_reader_creates_no_edge() {
        let t = SsiTracker::new();
        t.register(T1);
        t.record_read(T1, Oid(9), FieldId(0));
        assert!(matches!(
            t.validate_and_commit(T1, 3),
            SsiVerdict::Committed
        ));
        // A writer whose snapshot (5) already includes T1's commit (3):
        // plain wr ordering, not an antidependency.
        t.register(T2);
        assert_eq!(t.write_edges(T2, 5, Oid(9), FieldId(0)), 0);
        assert!(matches!(
            t.validate_and_commit(T2, 6),
            SsiVerdict::Committed
        ));
    }

    #[test]
    fn aborted_readers_leave_no_edges_and_purge_drains() {
        let t = SsiTracker::new();
        t.register(T1);
        t.record_read(T1, Oid(2), FieldId(0));
        t.forget(T1); // aborted
        t.register(T2);
        assert_eq!(t.write_edges(T2, 0, Oid(2), FieldId(0)), 0);
        assert!(matches!(
            t.validate_and_commit(T2, 1),
            SsiVerdict::Committed
        ));
        assert!(t.siread_entries() > 0);
        t.purge(10);
        assert_eq!(t.siread_entries(), 0);
        assert_eq!(t.tracked_txns(), 0);
    }

    #[test]
    fn striping_keeps_edges_across_distant_txn_ids() {
        // Transactions deliberately chosen to land on distinct stripes
        // (ids differ mod FLAG_STRIPES): the edge protocol must behave
        // exactly as under one global lock.
        let a = TxnId(1);
        let b = TxnId(1 + FLAG_STRIPES as u64);
        let c = TxnId(2 + 2 * FLAG_STRIPES as u64);
        let t = SsiTracker::new();
        t.register(a);
        t.register(b);
        t.register(c);
        let oid = Oid(7);
        let f = FieldId(0);
        t.record_read(b, oid, f);
        assert_eq!(t.write_edges(c, 0, oid, f), 1); // b → c
        assert_eq!(t.read_edge(a, b), 1); // a → b
        match t.validate_and_commit(b, 3) {
            SsiVerdict::Abort(conflict) => assert_eq!(conflict.txn, b),
            SsiVerdict::Committed => panic!("cross-stripe pivot must abort"),
        }
        assert!(matches!(t.validate_and_commit(a, 4), SsiVerdict::Committed));
        assert!(matches!(t.validate_and_commit(c, 5), SsiVerdict::Committed));
    }

    #[test]
    fn purge_keeps_sireads_of_live_transactions() {
        let t = SsiTracker::new();
        t.register(T1);
        t.record_read(T1, Oid(3), FieldId(0));
        // T1 is live: horizon way past anything must not drop its
        // registration (only ended transactions are purged).
        t.purge(1_000);
        assert_eq!(t.siread_entries(), 1);
        assert_eq!(t.tracked_txns(), 1);
    }
}
