//! Copy-on-write publication: the latch-free half of the heap's reader
//! path.
//!
//! A [`CowCell`] publishes an immutable heap-allocated snapshot through
//! one atomic pointer. **Readers never block**: they [`Rcu::pin`] (two
//! atomic counter operations, no mutex), load the pointer, and walk the
//! snapshot by reference. **Writers never block readers**: they build a
//! new snapshot off to the side, [`CowCell::swap`] it in with one
//! atomic exchange, and hand the old snapshot to a retire bin. Writers
//! of one cell must be serialized externally (the heap's per-shard
//! writer mutex) — the cell itself arbitrates nothing between writers.
//!
//! # Reclamation: striped two-era grace periods
//!
//! The hard part of a hand-rolled atomic-`Arc` cell is freeing the old
//! snapshot while some reader may still hold a reference into it
//! (crates.io — `arc-swap`, `crossbeam-epoch` — is unreachable in this
//! build environment, so the cell is self-contained). [`Rcu`] solves it
//! with classic epoch-based reclamation, striped so readers on
//! different threads do not contend on one counter:
//!
//! * A global **era** counter advances over time. Readers pin into the
//!   counter stripe of the era's parity (`era % 2`), re-checking the
//!   era after the increment — a pin that observes a stable era is
//!   guaranteed to be counted by any drain check that could enable
//!   freeing memory the pin protects (the re-check closes the race
//!   with a concurrent era advance; see `Rcu::pin`).
//! * Writers tag retired snapshots with the era current at retire
//!   time.
//! * [`Rcu::try_advance`] moves the era forward only when the
//!   *previous* parity's stripes have drained to zero, so at most two
//!   eras of readers are ever in flight; a snapshot retired at era `r`
//!   is freed once the era reaches `r + 2` ([`Rcu::free_horizon`]),
//!   by which point every reader that could have loaded it has
//!   unpinned.
//!
//! All era/pin/pointer operations use `SeqCst`: the safety argument
//! ("a reader pinned at era ≥ r+1 loads the pointer after the swap
//! that retired the era-`r` snapshot, so it sees the new snapshot")
//! chains coherence through the single total order, which is far
//! easier to audit than a minimal-ordering variant — and the reader
//! path is still just two uncontended RMWs plus plain loads.
//!
//! Reclamation itself (the retire bins, [`Rcu::try_advance`]) runs on
//! the **GC path only**, never on a read.

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};

/// How many pin counters each era parity is striped over. Threads hash
/// to a stripe at first pin, so concurrent readers rarely share a
/// cache line's counter.
const PIN_STRIPES: usize = 32;

/// Assigns each thread a pin stripe round-robin on first use.
fn pin_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<Option<usize>> = const { Cell::new(None) };
    }
    STRIPE.with(|s| match s.get() {
        Some(i) => i,
        None => {
            let i = NEXT.fetch_add(1, SeqCst) % PIN_STRIPES;
            s.set(Some(i));
            i
        }
    })
}

/// The reclamation clock shared by every [`CowCell`] of one heap.
#[derive(Debug)]
pub(crate) struct Rcu {
    /// The monotone era counter.
    era: AtomicU64,
    /// Pin counters: `pins[(era % 2) * PIN_STRIPES + stripe]`.
    pins: Box<[AtomicU64]>,
}

/// An active read-side critical section. While a `Pin` is alive, no
/// snapshot the pinning thread can reach through a [`CowCell::load`]
/// will be freed. Dropping it ends the critical section.
pub(crate) struct Pin<'a> {
    slot: &'a AtomicU64,
}

impl Drop for Pin<'_> {
    fn drop(&mut self) {
        self.slot.fetch_sub(1, SeqCst);
    }
}

impl Rcu {
    pub(crate) fn new() -> Rcu {
        Rcu {
            era: AtomicU64::new(0),
            pins: (0..2 * PIN_STRIPES)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Enters a read-side critical section. Latch-free: two atomic RMWs
    /// on an almost-always-uncontended stripe, and a bounded retry only
    /// when the era advances concurrently (reclamation runs at most
    /// once per GC pass, so in practice the retry never fires; the
    /// return value counts how often it did, for the heap's
    /// contention counters).
    pub(crate) fn pin(&self) -> (Pin<'_>, u64) {
        let stripe = pin_stripe();
        let mut retries = 0;
        loop {
            let era = self.era.load(SeqCst);
            let slot = &self.pins[(era % 2) as usize * PIN_STRIPES + stripe];
            slot.fetch_add(1, SeqCst);
            // Re-check: if the era is unchanged, every drain check that
            // could free memory this pin protects is ordered after the
            // increment above and therefore observes it. If the era
            // moved, the increment may have landed in a parity already
            // drained — undo and retry on the new era.
            if self.era.load(SeqCst) == era {
                return (Pin { slot }, retries);
            }
            slot.fetch_sub(1, SeqCst);
            retries += 1;
        }
    }

    /// The era a snapshot retired *now* must be tagged with.
    pub(crate) fn current_era(&self) -> u64 {
        self.era.load(SeqCst)
    }

    /// Advances the era if the previous parity has drained, and returns
    /// the **free horizon**: retired snapshots tagged with an era `< `
    /// the returned value may be freed. Runs on the GC path only;
    /// concurrent callers are harmless (the advance is a CAS).
    pub(crate) fn try_advance(&self) -> u64 {
        let era = self.era.load(SeqCst);
        let prev_parity = ((era + 1) % 2) as usize;
        let drained = self.pins[prev_parity * PIN_STRIPES..(prev_parity + 1) * PIN_STRIPES]
            .iter()
            .all(|c| c.load(SeqCst) == 0);
        if drained {
            let _ = self.era.compare_exchange(era, era + 1, SeqCst, SeqCst);
        }
        self.free_horizon()
    }

    /// Eras strictly below this value are unreachable: every reader
    /// pinned in them has unpinned (two grace periods have passed).
    pub(crate) fn free_horizon(&self) -> u64 {
        self.era.load(SeqCst).saturating_sub(1)
    }
}

/// An atomically published, heap-allocated, immutable snapshot.
///
/// * [`CowCell::load`] — readers, latch-free, under a [`Pin`].
/// * [`CowCell::swap`] — writers, **externally serialized** (per-shard
///   writer mutex); returns the old snapshot as a [`Retired`] box that
///   must be kept alive until the [`Rcu`] free horizon passes its tag.
#[derive(Debug)]
pub(crate) struct CowCell<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: the cell hands out `&T` only (readers) and moves whole boxes
// in and out (writers); `T: Send + Sync` makes both directions sound.
unsafe impl<T: Send + Sync> Send for CowCell<T> {}
unsafe impl<T: Send + Sync> Sync for CowCell<T> {}

/// A snapshot swapped out of a [`CowCell`], awaiting its grace period.
/// Dropping it frees the snapshot — only do so once
/// [`Rcu::free_horizon`] exceeds `era`.
///
/// Holds the raw pointer rather than a `Box`: readers may still hold
/// references into the snapshot, and materializing an owning `Box`
/// while those references live would assert unique access the aliasing
/// model forbids. The `Box` is reconstructed only in `Drop`, after the
/// grace period has run out every reader.
#[derive(Debug)]
pub(crate) struct Retired<T> {
    ptr: *mut T,
    /// The [`Rcu`] era current when the snapshot was retired.
    pub(crate) era: u64,
}

// SAFETY: a `Retired` is exclusive ownership of the (immutable,
// eventually-freed) snapshot; moving it across threads is sound for
// the same bounds a `Box<T>` would need in this shared-reader setting.
unsafe impl<T: Send + Sync> Send for Retired<T> {}
unsafe impl<T: Send + Sync> Sync for Retired<T> {}

impl<T> Retired<T> {
    /// The retired snapshot (still fully intact — readers may be
    /// walking it).
    pub(crate) fn node(&self) -> &T {
        // SAFETY: the pointee stays allocated until `self` drops.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Retired<T> {
    fn drop(&mut self) {
        // SAFETY: `ptr` came from `Box::into_raw` and `self` is its
        // sole owner; the caller contract (free only past the RCU
        // horizon) guarantees no reader reference survives.
        drop(unsafe { Box::from_raw(self.ptr) });
    }
}

impl<T> CowCell<T> {
    pub(crate) fn new(value: T) -> CowCell<T> {
        CowCell {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the current snapshot. Latch-free; the reference is valid
    /// for the lifetime of the pin (reclamation cannot pass the pin's
    /// era while it is held).
    pub(crate) fn load<'p>(&self, _pin: &'p Pin<'_>) -> &'p T {
        // SAFETY: the pointer was created by `Box::into_raw` and is
        // freed only by `Retired::drop` after the RCU free horizon
        // passes the retire era — which cannot happen while `_pin` is
        // alive (the pin blocks its parity from draining, capping the
        // era at retire_era + 1 < free threshold). The returned
        // lifetime is capped by the pin, enforcing exactly that.
        unsafe { &*self.ptr.load(SeqCst) }
    }

    /// Loads the current snapshot without a pin. Sound **only** while
    /// the caller holds the external writer serialization of this cell
    /// (the per-shard writer mutex): no swap — hence no retire of the
    /// current snapshot — can run concurrently.
    pub(crate) fn load_exclusive(&self) -> &T {
        // SAFETY: see above; the writer mutex pins the current snapshot
        // in place for the guard's lifetime, and `&self` outlives the
        // call.
        unsafe { &*self.ptr.load(SeqCst) }
    }

    /// Publishes `new`, returning the previous snapshot for deferred
    /// reclamation. Callers must hold the cell's external writer
    /// serialization and must tag the result with [`Rcu::current_era`]
    /// **after** the swap (swap, then read the era — the order the
    /// safety argument needs). This is packaged here so it cannot be
    /// done backwards.
    pub(crate) fn swap(&self, new: T, rcu: &Rcu) -> Retired<T> {
        let old = self.ptr.swap(Box::into_raw(Box::new(new)), SeqCst);
        let era = rcu.current_era();
        Retired { ptr: old, era }
    }
}

impl<T> Drop for CowCell<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` means no readers or writers remain; the
        // current pointer is exclusively ours.
        drop(unsafe { Box::from_raw(*self.ptr.get_mut()) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    /// Bumps a counter when dropped, so tests can observe reclamation.
    struct DropProbe(Arc<AtomicUsize>);
    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn load_sees_latest_swap() {
        let rcu = Rcu::new();
        let cell = CowCell::new(1u64);
        let (pin, _) = rcu.pin();
        assert_eq!(*cell.load(&pin), 1);
        let retired = cell.swap(2, &rcu);
        assert_eq!(*retired.node(), 1, "old snapshot intact after swap");
        assert_eq!(*cell.load(&pin), 2, "fresh load sees the new snapshot");
        drop(pin);
        drop(retired); // test shortcut: no concurrent readers here
    }

    #[test]
    fn era_advances_only_when_prev_parity_drains() {
        let rcu = Rcu::new();
        let (pin, _) = rcu.pin(); // pinned at era 0, parity 0
        let e0 = rcu.current_era();
        // Era 0 -> 1 drains parity 1 (empty): advances even while we
        // hold a parity-0 pin…
        let h1 = rcu.try_advance();
        assert_eq!(rcu.current_era(), e0 + 1);
        // …but 1 -> 2 needs parity 0 drained, which our pin blocks.
        let h2 = rcu.try_advance();
        assert_eq!(rcu.current_era(), e0 + 1, "held pin blocks the advance");
        assert!(h2 <= e0 + 1 && h1 <= h2);
        drop(pin);
        assert_eq!(rcu.try_advance(), e0 + 1, "freed up to the horizon");
        assert_eq!(rcu.current_era(), e0 + 2);
    }

    #[test]
    fn free_horizon_protects_snapshots_readers_may_hold() {
        let drops = Arc::new(AtomicUsize::new(0));
        let rcu = Rcu::new();
        let cell = CowCell::new(DropProbe(Arc::clone(&drops)));
        let (pin, _) = rcu.pin();
        let _old = cell.load(&pin); // reader holds the era-0 snapshot
        let retired = cell.swap(DropProbe(Arc::clone(&drops)), &rcu);
        // The pin caps the era below retire_era + 2: the horizon never
        // clears the retired snapshot while the reader is live.
        for _ in 0..4 {
            assert!(
                rcu.try_advance() <= retired.era,
                "horizon passed a snapshot a live reader may hold"
            );
        }
        assert_eq!(drops.load(SeqCst), 0);
        drop(pin);
        // Two grace periods after the pin is gone, the horizon clears.
        let mut horizon = 0;
        for _ in 0..4 {
            horizon = rcu.try_advance();
        }
        assert!(horizon > retired.era);
        drop(retired);
        assert_eq!(drops.load(SeqCst), 1);
        drop(cell);
        assert_eq!(drops.load(SeqCst), 2, "cell drop frees the live snapshot");
    }

    #[test]
    fn concurrent_readers_and_swapper_stay_coherent() {
        // A writer publishes monotonically increasing snapshots while
        // readers assert monotonicity through their pins — the
        // single-cell analogue of the heap's reader storm. Retired
        // snapshots are only freed past the horizon.
        let rcu = Arc::new(Rcu::new());
        let cell = Arc::new(CowCell::new(0u64));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rcu = Arc::clone(&rcu);
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0;
                    while stop.load(SeqCst) == 0 {
                        let (pin, _) = rcu.pin();
                        let v = *cell.load(&pin);
                        assert!(v >= last, "snapshot went backwards: {last} -> {v}");
                        last = v;
                    }
                });
            }
            let mut bin: Vec<Retired<u64>> = Vec::new();
            for v in 1..=2_000u64 {
                bin.push(cell.swap(v, &rcu));
                if v % 64 == 0 {
                    let horizon = rcu.try_advance();
                    bin.retain(|r| r.era >= horizon);
                }
            }
            stop.store(1, SeqCst);
        });
    }
}
