//! The versioned heap: chains, transaction registry, commit/abort, GC,
//! and — at [`IsolationLevel::Serializable`] — SSI conflict tracking.
//!
//! # Concurrency architecture
//!
//! The heap is latch-free where it matters most: **snapshot reads take
//! zero latches end to end** on the chain-hit path, and neither
//! timestamp allocation nor publication holds a mutex anywhere.
//!
//! * **Reads are latch-free.** Chains are published copy-on-write
//!   (the crate-private `cow` module): each per-OID record list is an immutable
//!   snapshot behind an atomic pointer, and the per-shard OID→chain map
//!   is published the same way. A reader pins the reclamation clock
//!   (two atomic counter ops — no mutex, no spinning), loads the two
//!   pointers, and walks the records by reference. Records carry
//!   **both before- and after-images** per field, so a chain hit is
//!   answered entirely from the chain — the base store is not touched.
//!   A chain miss (no record covers the field) pays one base
//!   `RwLock::read`, then a **seqlock-style stability check**: the
//!   read is kept only if both publication pointers (bucket map and
//!   chain) are bit-identical across it. Writers publish their record
//!   *before* the base write-through and unpublish it *after* the
//!   rollback restore, so any racing install **or** unpublish — either
//!   of which could expose an uncommitted write-through — moves a
//!   pointer and forces a retry (counted in `read_retries`; pointer
//!   equality is sound because nodes retired after the first look
//!   cannot be freed, let alone address-reused, under the reader's
//!   pin).
//! * **Commits flip without latches.** A committer stores its commit
//!   timestamp into each of its records' atomic `commit_ts` — record
//!   identity is stable across concurrent snapshot swaps (snapshots
//!   share records by `Arc`), so no chain latch is needed to flip.
//! * **Publication is a lock-free ring** (the crate-private `watermark` module): an
//!   ordered watermark advances `last_committed` only across a
//!   contiguous flipped prefix, with CAS-claimed in-flight slots
//!   instead of the earlier pending-set mutex. A timestamp drawn by a
//!   transaction that then fails SSI validation is published as a
//!   *skip* (nothing was flipped at it), keeping the prefix dense.
//! * **Writers keep a per-shard writer latch** — installs, merges,
//!   rollbacks, and GC edits of one shard serialize on it, but readers
//!   never take it and committers flipping records do not either.
//! * **Registries are striped**: the transaction table by `TxnId` and
//!   the snapshot-epoch table by a round-robin shard pick. The
//!   `MvccScheme` additionally caches each transaction's snapshot
//!   timestamp in its session, so steady-state reads and writes skip
//!   the transaction registry entirely (the registry is touched once
//!   per transaction at begin/commit plus once per *first* write of an
//!   object).
//!
//! ## Latch order
//!
//! The writer-side latches that remain are acquired in this order,
//! each dropped before the next class is taken, with one documented
//! exception — the rollback path and the write path perform base-store
//! operations *under* the owning chain-shard writer latch (install
//! ordering and before-image restoration demand it):
//!
//! 1. a **txn stripe** (registry bookkeeping; held briefly, never
//!    across a chain shard);
//! 2. **chain-shard writer latches**, one at a time (readers and
//!    commit-time flips never take these);
//! 3. an **epoch shard** (snapshot registration/release).
//!
//! The watermark no longer appears in the latch order at all — it has
//! no latch. SSI-tracker latches (flag stripes, SIREAD shards — see
//! [`crate::ssi`]) are never nested with heap latches: reads register
//! SIREADs *before* the chain walk and record edges *after* it; writes
//! scan the SIREAD registry after releasing the shard writer latch;
//! commit validates before the first flip. (At
//! [`IsolationLevel::Serializable`] the read path therefore still pays
//! the tracker's stripe latches — inherent to Cahill-style SSI, as in
//! PostgreSQL's SIREAD locks; the latch-free guarantee is about the
//! *heap*, and holds unconditionally at
//! [`IsolationLevel::Snapshot`].)
//!
//! ## Observability probes
//!
//! With an attached `finecc_obs::Obs` handle the commit path times
//! four consecutive segments into latency histograms — *ts draw* (the
//! clock `fetch_add` plus SSI validation), *WAL ack* (redo assembly,
//! append, and at `WalSync` the group-commit ack), *chain flip* (the
//! atomic `commit_ts` stores), and *publish* (watermark publish plus
//! the in-order visibility wait) — plus the commit total. Every lap
//! sits **between** the latch-free steps it times: the probes take no
//! lock, run outside the txn-stripe and chain-shard latches, and the
//! only latch alive across them is the benchmark-only coarse-baseline
//! mutex. Contention attribution fires only where the matching counter
//! already bumps (ww conflicts under the shard writer latch, read
//! retries and SSI aborts outside every latch); the registry stripe it
//! takes is a leaf lock nested inside nothing. The latch-free **read
//! path records nothing** — no histogram, no registry touch on a
//! clean read; its only probe is the trace sampler's single branch,
//! false whenever tracing is off (the `read_scaling` bench asserts
//! the disabled path stays regression-free).
//!
//! The seed's coarse behavior is retained behind
//! [`CommitPath::CoarseBaseline`] purely so experiments can measure
//! the win: it serializes the whole commit window behind one mutex
//! *and* reinstates the latched reader path (every read holds the
//! chain-shard latch across the walk, as the seed did). The production
//! path is [`CommitPath::Sharded`].

use crate::cow::{CowCell, Pin, Rcu, Retired};
use crate::ssi::{SsiTracker, SsiVerdict};
use crate::stats::MvccStats;
use crate::watermark::Watermark;
use crate::{IsolationLevel, SsiConflict, Ts, TS_PENDING};
use finecc_model::{ClassId, FieldId, Oid, TxnId, Value};
use finecc_obs::{ContentionKind, EventKind, ObjKey, Obs, Phase};
use finecc_store::{Database, FieldImage, StoreError};
use finecc_wal::{CheckpointData, DurabilityLevel, InstanceImage, RecoveryInfo, Wal, WalConfig};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const SHARD_COUNT: usize = 64;

/// How many mutexes the transaction registry is striped over.
const TXN_STRIPES: usize = 64;

/// How many mutexes the snapshot-epoch table is sharded over.
const EPOCH_SHARDS: usize = 16;

/// How often (in commits) the heap runs an opportunistic GC pass.
const GC_EVERY_COMMITS: u64 = 64;

/// A write was refused because another transaction got to the field
/// first (first-updater-wins at field granularity — two transactions
/// writing *disjoint* fields of one object never conflict, matching the
/// paper's fine-granularity theme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvccConflict {
    /// The contended object.
    pub oid: Oid,
    /// The contended field.
    pub field: FieldId,
    /// `Some(t)` when a version of the field is pending in live
    /// transaction `t`; `None` when a transaction already *committed* a
    /// newer version of the field than the writer's snapshot.
    pub pending_in: Option<TxnId>,
}

impl std::fmt::Display for MvccConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pending_in {
            Some(t) => write!(
                f,
                "write-write conflict on {}.{}: pending version of {t}",
                self.oid, self.field
            ),
            None => write!(
                f,
                "write-write conflict on {}.{}: committed after this snapshot",
                self.oid, self.field
            ),
        }
    }
}

impl std::error::Error for MvccConflict {}

/// What [`MvccHeap::write`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// A fresh pending version record was installed on the chain.
    NewVersion,
    /// The transaction already owned the chain head; the record was
    /// republished with the field added (or its after-image updated).
    MergedVersion,
}

/// Which commit path the heap runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitPath {
    /// The production path: latch-free snapshot reads over
    /// copy-on-write chains, atomic timestamp draw, latch-free record
    /// flips, lock-free ordered-watermark publication. Writers
    /// synchronize only on short per-shard writer latches.
    #[default]
    Sharded,
    /// The pre-sharding baseline: the whole draw→flip→publish window is
    /// serialized behind one mutex **and** every read holds the chain-
    /// shard latch across its walk (the seed's reader path). Kept
    /// **only** so experiments (`parallelism_sweep`, `read_scaling`)
    /// can measure the latch-free paths' win against the seed behavior;
    /// do not use it outside benchmarks.
    CoarseBaseline,
}

/// One field mutation inside a version record: the value before the
/// writer's first write of the field (the undo image, what invisible-
/// version readers reconstruct) and the value after its latest write
/// (the redo image, what makes chain hits self-contained — readers of
/// a visible version never consult the base store).
#[derive(Clone, Debug)]
struct FieldWrite {
    field: FieldId,
    before: Value,
    after: Value,
}

/// One version record: everything needed to read *at* its writer
/// (after-images) or *past* its writer (before-images).
///
/// Immutable once published, with one deliberate exception: `commit_ts`
/// is atomic, so the commit flip is a plain store through the shared
/// record — no copy, no latch. A torn observation is benign by
/// construction: a concurrent reader that loads the old value sees
/// [`TS_PENDING`] (invisible: not its own record) and one that loads
/// the new value sees a timestamp above its snapshot (invisible: fresh
/// commits publish above every registered snapshot) — the visibility
/// verdict is identical either way.
#[derive(Debug)]
struct VersionRecord {
    writer: TxnId,
    /// Commit timestamp; [`TS_PENDING`] until the writer commits.
    commit_ts: AtomicU64,
    /// `(field, before, after)` for every field this writer modified.
    writes: Vec<FieldWrite>,
}

impl VersionRecord {
    fn pending(writer: TxnId, writes: Vec<FieldWrite>) -> VersionRecord {
        VersionRecord {
            writer,
            commit_ts: AtomicU64::new(TS_PENDING),
            writes,
        }
    }

    #[inline]
    fn ts(&self) -> Ts {
        self.commit_ts.load(Ordering::SeqCst)
    }

    fn write_of(&self, field: FieldId) -> Option<&FieldWrite> {
        self.writes.iter().find(|w| w.field == field)
    }
}

/// A published chain snapshot: records ordered by *installation*,
/// newest first, shared by `Arc` across successive snapshots.
/// Invariants:
///
/// * each transaction owns at most one record per chain (republished on
///   repeated writes);
/// * two records that touch a common field are ordered consistently by
///   install position *and* commit timestamp (field-level
///   first-updater-wins forbids concurrently pending writers of one
///   field), so the newest *visible* record of a field carries its
///   value at the snapshot, and the oldest *invisible* one carries the
///   value before any invisible writer;
/// * the base store holds every field's newest (possibly pending)
///   value — maintained for non-MVCC consumers and chain-miss reads,
///   never consulted on a chain hit.
#[derive(Debug, Default)]
struct Chain {
    records: Vec<Arc<VersionRecord>>,
}

/// Walks `records` for `field` as of snapshot `ts` (seeing `as_txn`'s
/// pending writes). Returns the reconstructed value by reference —
/// `None` is a chain miss (no record touches the field). When
/// `overwriters` is given, it collects the writers of invisible
/// versions stepped past (the read side of SSI's rw-antidependencies).
fn reconstruct<'a>(
    records: &'a [Arc<VersionRecord>],
    ts: Ts,
    as_txn: Option<TxnId>,
    field: FieldId,
    mut overwriters: Option<&mut Vec<TxnId>>,
) -> Option<&'a Value> {
    let mut oldest_invisible: Option<&'a Value> = None;
    for rec in records {
        let Some(w) = rec.write_of(field) else {
            continue;
        };
        let cts = rec.ts();
        let visible = if cts == TS_PENDING {
            as_txn == Some(rec.writer)
        } else {
            cts <= ts
        };
        if visible {
            // Records of one field are newest-first: the first visible
            // one holds the field's value at this snapshot.
            return Some(&w.after);
        }
        if let Some(ovw) = overwriters.as_deref_mut() {
            ovw.push(rec.writer);
        }
        oldest_invisible = Some(&w.before);
    }
    // No visible version: the value before the oldest invisible writer
    // (or a miss if nobody ever wrote the field here).
    oldest_invisible
}

/// The per-OID chain anchor: stable identity (shared by `Arc` across
/// map snapshots) holding the atomically published record list.
#[derive(Debug)]
struct ChainCell {
    records: CowCell<Chain>,
}

/// The copy-on-write published OID→chain map of one shard.
type ChainMap = HashMap<Oid, Arc<ChainCell>>;

/// A snapshot awaiting its reclamation grace period, in a shard's
/// retire bin.
#[derive(Debug)]
enum RetiredNode {
    Map(Retired<ChainMap>),
    Chain(Retired<Chain>),
}

impl RetiredNode {
    fn era(&self) -> u64 {
        match self {
            RetiredNode::Map(r) => r.era,
            RetiredNode::Chain(r) => r.era,
        }
    }
}

/// How many independently published map buckets each shard holds.
/// Inserting or removing a chain republishes **one bucket's** map (a
/// full `HashMap` clone), so bucketing divides the copy-on-write cost
/// of first-writes and chain removals by `SHARD_COUNT * MAP_BUCKETS` —
/// without it, bulk-loading N fresh objects would clone O(N/shards)
/// entries per insert, quadratic in total. (A real lock-free hash map
/// would remove the clone entirely; see the ROADMAP.)
const MAP_BUCKETS: usize = 16;

/// One chain shard: the writer-side latch doubles as the retire bin
/// (retires only ever happen under it), plus the published map buckets.
#[derive(Debug)]
struct ChainShard {
    /// Serializes writers (install/merge/rollback/GC) of this shard's
    /// chains; the guarded `Vec` is the shard's retire bin. Readers and
    /// commit-time flips never take it.
    writer: Mutex<Vec<RetiredNode>>,
    maps: Box<[CowCell<ChainMap>]>,
}

impl ChainShard {
    fn new() -> ChainShard {
        ChainShard {
            writer: Mutex::new(Vec::new()),
            maps: (0..MAP_BUCKETS)
                .map(|_| CowCell::new(ChainMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// The published map bucket holding `oid`'s chain. Consecutive OIDs
    /// land in one shard every `SHARD_COUNT`, so dividing first spreads
    /// them across buckets.
    #[inline]
    fn map_for(&self, oid: Oid) -> &CowCell<ChainMap> {
        &self.maps[(oid.raw() as usize / SHARD_COUNT) % MAP_BUCKETS]
    }
}

struct TxnState {
    /// The registered snapshot epoch; `epoch.ts` is the snapshot
    /// timestamp.
    epoch: EpochHandle,
    /// Objects this transaction installed pending versions on. Only the
    /// owning transaction's thread reads or writes this set, so it
    /// needs no latch beyond the registry stripe that holds it.
    write_set: HashSet<Oid>,
}

/// A live registration in the sharded epoch table: which shard holds
/// the entry, and the pinned snapshot timestamp.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EpochHandle {
    shard: u32,
    pub(crate) ts: Ts,
}

/// The snapshot registry: `ts → number of holders` per shard, sharded
/// round-robin so begin/commit of unrelated transactions never contend
/// on one epoch mutex. The minimum key across shards is the GC horizon.
///
/// Registration reads the watermark **under its shard's lock**, and
/// [`MvccHeap::gc_horizon`] reads the watermark *before* scanning the
/// shards (one at a time). That closes the registration/GC race without
/// a global lock: if the scan misses a concurrent registration, the
/// scan of that shard completed before the registration's critical
/// section, so the registration's watermark read happened after the
/// horizon's watermark bound was read — by monotonicity its pinned
/// timestamp is at or above the bound, hence at or above the horizon,
/// and the versions it can demand were not reclaimable.
#[derive(Debug)]
struct EpochTable {
    shards: Box<[Mutex<BTreeMap<Ts, usize>>]>,
    next: AtomicUsize,
}

impl EpochTable {
    fn new() -> EpochTable {
        EpochTable {
            shards: (0..EPOCH_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next: AtomicUsize::new(0),
        }
    }

    /// Atomically reads the current watermark and registers it as a
    /// live epoch in a round-robin shard.
    fn register(&self, watermark: &Watermark) -> EpochHandle {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut map = self.shards[shard].lock();
        let ts = watermark.get();
        *map.entry(ts).or_insert(0) += 1;
        EpochHandle {
            shard: shard as u32,
            ts,
        }
    }

    fn unregister(&self, h: EpochHandle) {
        let mut map = self.shards[h.shard as usize].lock();
        match map.get_mut(&h.ts) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                map.remove(&h.ts);
            }
            None => debug_assert!(false, "unregistering unknown epoch {}", h.ts),
        }
    }

    /// The minimum registered snapshot timestamp, scanning shards one
    /// at a time (never holding two epoch locks). May miss an entry
    /// registered during the scan; see the type-level doc for why that
    /// is safe given the caller's watermark bound.
    fn min_active(&self) -> Option<Ts> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().keys().next().copied())
            .min()
    }
}

/// The multi-version heap over a base [`Database`].
pub struct MvccHeap {
    base: Arc<Database>,
    shards: Box<[ChainShard]>,
    /// The reclamation clock shared by every copy-on-write cell.
    rcu: Rcu,
    /// Transaction registry, striped by `TxnId`.
    txns: Box<[Mutex<HashMap<TxnId, TxnState>>]>,
    /// Snapshot registry; the minimum active entry is the GC horizon.
    epochs: EpochTable,
    /// The commit-timestamp allocator. Drawing a timestamp is one
    /// `fetch_add`; visibility is governed by the watermark, not the
    /// clock.
    clock: AtomicU64,
    /// Lock-free ordered publication: `last_committed` advances only
    /// across a contiguous flipped prefix.
    watermark: Watermark,
    commits_since_gc: AtomicU64,
    /// The attached write-ahead log (`None` at
    /// [`DurabilityLevel::None`] — the pre-durability behavior, with
    /// zero additional work anywhere). Appends happen only on the
    /// commit path and on extent events; the snapshot read path never
    /// touches it.
    wal: Option<Arc<Wal>>,
    /// `Some` iff the heap runs [`CommitPath::CoarseBaseline`].
    coarse_commit: Option<Mutex<()>>,
    /// The rw-antidependency tracker; `Some` iff the heap runs at
    /// [`IsolationLevel::Serializable`].
    ssi: Option<SsiTracker>,
    /// Observability: commit-phase histograms, per-object contention
    /// attribution, sampled tracing. Disabled by default (one branch
    /// per probe; the latch-free read path records nothing per read
    /// either way — see the module docs).
    obs: Arc<Obs>,
    /// Live counters.
    pub stats: MvccStats,
}

impl MvccHeap {
    /// Creates a heap versioning `base` at the default
    /// [`IsolationLevel::Snapshot`].
    pub fn new(base: Arc<Database>) -> MvccHeap {
        MvccHeap::with_isolation(base, IsolationLevel::Snapshot)
    }

    /// Creates a heap versioning `base` at the given isolation level.
    pub fn with_isolation(base: Arc<Database>, isolation: IsolationLevel) -> MvccHeap {
        MvccHeap::with_commit_path(base, isolation, CommitPath::Sharded)
    }

    /// Creates a heap versioning `base` at the given isolation level and
    /// commit path. [`CommitPath::CoarseBaseline`] exists for
    /// before/after benchmarking only.
    pub fn with_commit_path(
        base: Arc<Database>,
        isolation: IsolationLevel,
        commit_path: CommitPath,
    ) -> MvccHeap {
        MvccHeap::build(base, isolation, commit_path, None, 0)
    }

    /// Creates a heap with an attached write-ahead log: every writer
    /// commit appends its *Write*-projection after-images **before**
    /// its timestamp is published (durable before visible; at
    /// [`DurabilityLevel::WalSync`] the commit also waits for the group
    /// fsync). If the log directory holds no checkpoint yet, a genesis
    /// checkpoint of the base store is written so the directory is
    /// recoverable from the first commit on. The timestamp clock starts
    /// above the highest timestamp already in the log, so attaching to
    /// a directory with history never reuses a timestamp — though the
    /// usual way to resume a directory is [`MvccHeap::recover`].
    pub fn with_wal(
        base: Arc<Database>,
        isolation: IsolationLevel,
        commit_path: CommitPath,
        wal: Arc<Wal>,
    ) -> std::io::Result<MvccHeap> {
        let base_ts = wal.max_logged_ts();
        let heap = MvccHeap::build(base, isolation, commit_path, Some(wal), base_ts);
        if !heap.wal.as_ref().expect("just attached").has_checkpoint()? {
            heap.checkpoint()?;
        }
        Ok(heap)
    }

    /// Rebuilds a heap from a log directory: newest checkpoint + replay
    /// of the log's intact prefix in commit-timestamp order (see
    /// `finecc_wal::recover_database`). The recovered heap resumes with
    /// the schema, extents, base store, OID allocator **and the
    /// timestamp clock/watermark** of the previous incarnation —
    /// including the holes left by SSI-refused commits (skip records),
    /// so post-recovery commits continue with no timestamp reuse and no
    /// watermark gap. The reopened log is attached at the same
    /// directory; a torn final record (crash mid-append) is truncated
    /// so new appends stay readable.
    pub fn recover(
        dir: impl AsRef<Path>,
        isolation: IsolationLevel,
        commit_path: CommitPath,
        config: WalConfig,
    ) -> std::io::Result<(MvccHeap, RecoveryInfo)> {
        let dir = dir.as_ref();
        let (db, info) = finecc_wal::recover_database(dir)?;
        let wal = Arc::new(Wal::open(dir, config)?);
        wal.stats()
            .set_recovery_progress(info.replayed, info.bytes_scanned, info.peak_reorder);
        let heap = MvccHeap::build(Arc::new(db), isolation, commit_path, Some(wal), info.max_ts);
        Ok((heap, info))
    }

    fn build(
        base: Arc<Database>,
        isolation: IsolationLevel,
        commit_path: CommitPath,
        wal: Option<Arc<Wal>>,
        base_ts: Ts,
    ) -> MvccHeap {
        let shards = (0..SHARD_COUNT)
            .map(|_| ChainShard::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let txns = (0..TXN_STRIPES)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MvccHeap {
            base,
            shards,
            rcu: Rcu::new(),
            txns,
            epochs: EpochTable::new(),
            clock: AtomicU64::new(base_ts),
            watermark: Watermark::with_base(base_ts),
            commits_since_gc: AtomicU64::new(0),
            wal,
            coarse_commit: match commit_path {
                CommitPath::Sharded => None,
                CommitPath::CoarseBaseline => Some(Mutex::new(())),
            },
            ssi: match isolation {
                IsolationLevel::Snapshot => None,
                IsolationLevel::Serializable => Some(SsiTracker::new()),
            },
            obs: Arc::new(Obs::disabled()),
            stats: MvccStats::default(),
        }
    }

    /// Attaches an observability handle (see the module docs for which
    /// phases are timed and where the probes sit relative to the latch
    /// order). Apply before sharing the heap.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> MvccHeap {
        self.obs = obs;
        self
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The base store (authoritative for the newest values).
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// The heap's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        if self.ssi.is_some() {
            IsolationLevel::Serializable
        } else {
            IsolationLevel::Snapshot
        }
    }

    /// The heap's commit path.
    pub fn commit_path(&self) -> CommitPath {
        if self.coarse_commit.is_some() {
            CommitPath::CoarseBaseline
        } else {
            CommitPath::Sharded
        }
    }

    /// The heap's durability level ([`DurabilityLevel::None`] when no
    /// write-ahead log is attached).
    pub fn durability(&self) -> DurabilityLevel {
        self.wal
            .as_ref()
            .map_or(DurabilityLevel::None, |w| w.level())
    }

    /// The attached write-ahead log, if any (statistics, checkpoints).
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Creates a default-initialized instance of `class` through the
    /// heap, logging the extent event when a write-ahead log is
    /// attached — the durable counterpart of [`Database::create`].
    /// (Creation still bypasses the version chains — see the ROADMAP's
    /// versioned-extents item; objects created directly on the base
    /// store become durable at the *next checkpoint* rather than
    /// immediately.)
    pub fn create(&self, class: ClassId) -> Oid {
        let oid = self.base.create(class);
        if let Some(wal) = &self.wal {
            wal.append_create(self.current_ts(), oid, class)
                .expect("write-ahead log append failed; durability cannot be guaranteed");
        }
        oid
    }

    /// Deletes an instance through the heap, logging the extent event
    /// when a write-ahead log is attached — the durable counterpart of
    /// [`Database::delete`].
    pub fn delete(&self, oid: Oid) -> Result<(), StoreError> {
        self.base.delete(oid)?;
        if let Some(wal) = &self.wal {
            wal.append_delete(self.current_ts(), oid)
                .expect("write-ahead log append failed; durability cannot be guaranteed");
        }
        Ok(())
    }

    /// Writes a **fuzzy checkpoint**: a consistent image of schema +
    /// base store + live chains at a watermark-consistent timestamp,
    /// produced without stopping writers — the checkpoint pins a
    /// snapshot (like any reader) and streams every live object's
    /// fields through the latch-free multi-version read path, so
    /// concurrent commits keep flowing and the image still reflects
    /// exactly the state at the pinned timestamp. Objects deleted under
    /// the scan are skipped (their log records replay idempotently).
    /// The file is written atomically (temp + rename); recovery replays
    /// the log only above the returned timestamp. Requires an attached
    /// write-ahead log.
    ///
    /// After the checkpoint is durable (its rename directory-fsynced),
    /// the maintenance pipeline runs: checkpoints beyond the retention
    /// count are deleted and the log is truncated below the checkpoint
    /// timestamp — `floor = ckpt_ts`, never higher, so extent events
    /// that raced the fuzzy scan at `ckpt_ts` survive and commits below
    /// it (already in the image) are dropped. Both steps are
    /// best-effort: a failure leaves a bigger log/extra checkpoint, not
    /// a durability hole, so the checkpoint itself still succeeds.
    pub fn checkpoint(&self) -> std::io::Result<Ts> {
        let wal = self
            .wal
            .as_ref()
            .expect("checkpoint requires an attached write-ahead log");
        let ckpt_start = self.obs.clock();
        let epoch = self.epochs.register(&self.watermark);
        let ckpt_ts = epoch.ts;
        let schema = self.base.schema();
        let mut instances = Vec::new();
        for ci in schema.classes() {
            for oid in self.base.extent(ci.id) {
                let mut values = Vec::with_capacity(ci.all_fields.len());
                let mut live = true;
                for &f in &ci.all_fields {
                    match self.read_as(ckpt_ts, None, oid, f) {
                        Ok(v) => values.push(v),
                        Err(_) => {
                            live = false; // deleted under the scan
                            break;
                        }
                    }
                }
                if live {
                    instances.push(InstanceImage {
                        oid,
                        class: ci.id,
                        values,
                    });
                }
            }
        }
        let result = wal.write_checkpoint(&CheckpointData {
            ckpt_ts,
            replay_from: ckpt_ts + 1,
            next_oid: self.base.next_oid_hint(),
            schema,
            instances,
        });
        self.epochs.unregister(epoch);
        result?;
        // The checkpoint is durable; compaction failures past this
        // point cost space, not safety — surface nothing. (A poisoned
        // log *will* surface on the next append.)
        let _ = wal.prune_checkpoints();
        let _ = wal.truncate_below(ckpt_ts);
        self.obs.record_since(Phase::Checkpoint, ckpt_start);
        Ok(ckpt_ts)
    }

    #[inline]
    fn shard(&self, oid: Oid) -> &ChainShard {
        &self.shards[(oid.raw() as usize) % SHARD_COUNT]
    }

    #[inline]
    fn txn_stripe(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, TxnState>> {
        &self.txns[(txn.raw() as usize) % TXN_STRIPES]
    }

    /// Pins the reclamation clock, folding any (rare) era-race retries
    /// into the read-contention counters.
    #[inline]
    fn pin(&self) -> Pin<'_> {
        let (pin, retries) = self.rcu.pin();
        if retries > 0 {
            self.stats.add_read_pin_retries(retries);
        }
        pin
    }

    /// The latest fully published commit timestamp (the watermark).
    pub fn current_ts(&self) -> Ts {
        self.watermark.get()
    }

    /// Registers a transaction, assigning it a snapshot of the latest
    /// published state. Returns the snapshot timestamp.
    pub fn begin(&self, txn: TxnId) -> Ts {
        let epoch = self.epochs.register(&self.watermark);
        let ts = epoch.ts;
        let prev = self.txn_stripe(txn).lock().insert(
            txn,
            TxnState {
                epoch,
                write_set: HashSet::new(),
            },
        );
        debug_assert!(prev.is_none(), "transaction {txn} already registered");
        if let Some(ssi) = &self.ssi {
            ssi.register(txn);
        }
        self.stats.bump_begins();
        ts
    }

    /// The registered snapshot timestamp of `txn`. Callers on a hot
    /// path should cache the value returned by [`MvccHeap::begin`]
    /// instead (the scheme's transaction session does), so steady-state
    /// operations skip the registry stripe.
    pub fn snapshot_ts(&self, txn: TxnId) -> Option<Ts> {
        self.txn_stripe(txn).lock().get(&txn).map(|s| s.epoch.ts)
    }

    /// The number of objects `txn` has written so far.
    pub fn write_set_len(&self, txn: TxnId) -> usize {
        self.txn_stripe(txn)
            .lock()
            .get(&txn)
            .map_or(0, |s| s.write_set.len())
    }

    /// Reconstructs `field` of `oid` as of snapshot `ts`, seeing the
    /// pending writes of `as_txn` (pass `None` for a pure snapshot read).
    ///
    /// Takes **no logical locks and no latches** on the chain-hit path:
    /// reconstruction pins the reclamation clock (atomic counters),
    /// loads the published chain snapshot, and walks it by reference —
    /// cloning exactly one [`Value`] at the end. A chain miss pays a
    /// single base `RwLock::read` and revalidates against the chain
    /// (see the module docs). At [`IsolationLevel::Serializable`] a
    /// transactional read additionally registers a SIREAD entry (before
    /// the walk) and records an outgoing rw-antidependency for every
    /// invisible overwrite of the field it steps past — still without
    /// blocking anyone.
    ///
    /// Deletion caveat: [`Database::delete`] bypasses the version layer
    /// (like creation — see the ROADMAP's versioned-extents item), so a
    /// read of a *deleted* object answers from whatever it consults: a
    /// chain hit returns the field's value as of the snapshot (the
    /// object existed there), while a chain miss surfaces the base
    /// store's [`StoreError::UnknownOid`]. Until extents are versioned,
    /// don't use read errors to probe liveness of versioned objects.
    pub fn read_as(
        &self,
        ts: Ts,
        as_txn: Option<TxnId>,
        oid: Oid,
        field: FieldId,
    ) -> Result<Value, StoreError> {
        let ssi = match (&self.ssi, as_txn) {
            (Some(ssi), Some(txn)) => {
                // Register BEFORE walking the chain: a concurrent writer
                // either installed its record already (the walk sees it
                // and marks the edge here) or will scan the registry
                // after installing (and marks it there).
                ssi.record_read(txn, oid, field);
                Some((ssi, txn))
            }
            _ => None,
        };
        // Benchmark baseline only: reinstate the seed's latched reader.
        let _coarse_guard = self
            .coarse_commit
            .as_ref()
            .map(|_| self.shard(oid).writer.lock());
        let mut overwriters: Vec<TxnId> = Vec::new();
        let value = loop {
            overwriters.clear();
            let pin = self.pin();
            let map_cell = self.shard(oid).map_for(oid);
            let map = map_cell.load(&pin);
            let chain = map.get(&oid).map(|cell| cell.records.load(&pin));
            // Overwriters are only worth collecting when an SSI tracker
            // will consume them — the pure-snapshot hot path stays
            // allocation-free.
            let collect = if ssi.is_some() {
                Some(&mut overwriters)
            } else {
                None
            };
            if let Some(v) =
                chain.and_then(|chain| reconstruct(&chain.records, ts, as_txn, field, collect))
            {
                self.stats.bump_read_chain_hits();
                break v.clone();
            }
            // Chain miss: one base-store read, then a seqlock-style
            // stability check. Writers publish their record BEFORE the
            // base write-through and unpublish it AFTER restoring the
            // base on rollback, so the base value just read is
            // committed-stable iff NEITHER publication pointer moved
            // across the read — a changed pointer means an install or
            // an unpublish raced us (either could have exposed an
            // uncommitted write-through), so retry. Pointer equality is
            // sound: nodes retired after the first look cannot be freed
            // — let alone have their addresses reused — while the pin
            // is held.
            let v = self.base.read(oid, field)?;
            self.stats.bump_read_base_loads();
            let map_again = map_cell.load(&pin);
            let stable = std::ptr::eq(map, map_again)
                && match chain {
                    None => true,
                    Some(chain) => map_again
                        .get(&oid)
                        .is_some_and(|cell| std::ptr::eq(chain, cell.records.load(&pin))),
                };
            if stable {
                break v;
            }
            self.stats.bump_read_retries();
            // One attribution per bump of `read_retries`, so the
            // registry's total equals the scheme-level counter. Only
            // the (rare) retry path pays it — never a clean read.
            self.obs
                .contend(ObjKey::Instance(oid.0), ContentionKind::ReadRetry);
        };
        #[cfg(debug_assertions)]
        if self.coarse_commit.is_none() {
            self.crosscheck_read(ts, as_txn, oid, field, &value);
        }
        if let Some((ssi, txn)) = ssi {
            let mut edges = 0;
            for &writer in &overwriters {
                edges += ssi.read_edge(txn, writer);
            }
            if edges > 0 {
                self.stats.add_ssi_edges(edges);
            }
        }
        self.stats.bump_snapshot_reads();
        // Lifecycle trace: one sampled instant per read. The sampler is
        // a single branch, false whenever tracing is off — the only
        // thing the latch-free read path ever asks of observability.
        if let Some(txn) = as_txn {
            if self.obs.trace_sampled(txn.0) {
                self.obs
                    .emit(EventKind::Read, self.obs.now_ns(), 0, txn.0, oid.0);
            }
        }
        Ok(value)
    }

    /// Re-runs the reconstruction under the shard's writer latch and
    /// asserts it agrees with the latch-free result. Debug builds only
    /// (so the multi-threaded integration storms exercise it too, not
    /// just this crate's unit tests) — the cross-check that the
    /// copy-on-write publication protocol never lets a latch-free
    /// reader observe a value a latched reader could not.
    /// (Reconstruction at a fixed snapshot is stable across concurrent
    /// installs, flips, rollbacks and GC, which is exactly what this
    /// verifies.)
    #[cfg(debug_assertions)]
    fn crosscheck_read(
        &self,
        ts: Ts,
        as_txn: Option<TxnId>,
        oid: Oid,
        field: FieldId,
        got: &Value,
    ) {
        let shard = self.shard(oid);
        let _writer = shard.writer.lock();
        let map = shard.map_for(oid).load_exclusive();
        let locked = map
            .get(&oid)
            .and_then(|cell| {
                reconstruct(
                    &cell.records.load_exclusive().records,
                    ts,
                    as_txn,
                    field,
                    None,
                )
            })
            .cloned()
            .map_or_else(|| self.base.read(oid, field), Ok);
        // An `Err` means the object was deleted under the read (deletes
        // bypass the version chains); there is nothing to compare.
        if let Ok(locked) = locked {
            debug_assert_eq!(
                &locked, got,
                "latch-free read of {oid}.{field} at ts {ts} diverged from the latched re-read"
            );
        }
    }

    /// Snapshot read through a registered transaction (sees its own
    /// pending writes).
    pub fn read(&self, txn: TxnId, oid: Oid, field: FieldId) -> Result<Value, StoreError> {
        let ts = self
            .snapshot_ts(txn)
            .unwrap_or_else(|| panic!("transaction {txn} is not registered with the mvcc heap"));
        self.read_as(ts, Some(txn), oid, field)
    }

    /// Writes `field` of `oid` in transaction `txn`, resolving the
    /// snapshot timestamp from the registry. Hot paths that already
    /// know it (the scheme session caches it at begin) use
    /// [`MvccHeap::write_at`] and skip the registry stripe.
    pub fn write(
        &self,
        txn: TxnId,
        oid: Oid,
        field: FieldId,
        value: Value,
    ) -> Result<WriteOutcome, MvccWriteError> {
        let snapshot_ts = self
            .snapshot_ts(txn)
            .unwrap_or_else(|| panic!("transaction {txn} is not registered with the mvcc heap"));
        self.write_at(snapshot_ts, txn, oid, field, value)
    }

    /// Writes `field` of `oid` in transaction `txn`, whose registered
    /// snapshot timestamp the caller supplies: first-updater-wins
    /// conflict check, copy-on-write publication of the pending record,
    /// then write-through to the base store. Returns what happened to
    /// the chain.
    ///
    /// The record is published **before** the base write-through — the
    /// ordering the latch-free reader's miss-revalidation relies on
    /// (see the module docs).
    pub fn write_at(
        &self,
        snapshot_ts: Ts,
        txn: TxnId,
        oid: Oid,
        field: FieldId,
        value: Value,
    ) -> Result<WriteOutcome, MvccWriteError> {
        // Chaos scheduling decision strictly before the writer latch:
        // a parked latch holder would deadlock the token scheduler.
        finecc_chaos::yield_point(finecc_chaos::Site::WriteInstall);
        // Type/domain validation runs before any latch is taken.
        self.base.check_write(field, &value)?;
        let shard = self.shard(oid);
        let mut bin = shard.writer.lock();
        // Anchor the chain cell (copy-on-write bucket-map insert on
        // first write of the object).
        let cell: Arc<ChainCell> = {
            let map_cell = shard.map_for(oid);
            let map = map_cell.load_exclusive();
            match map.get(&oid) {
                Some(cell) => Arc::clone(cell),
                None => {
                    let cell = Arc::new(ChainCell {
                        records: CowCell::new(Chain::default()),
                    });
                    let mut next = map.clone();
                    next.insert(oid, Arc::clone(&cell));
                    let old = map_cell.swap(next, &self.rcu);
                    bin.push(RetiredNode::Map(old));
                    cell
                }
            }
        };
        let chain = cell.records.load_exclusive();

        // First-updater-wins admission control, at field granularity:
        // another live transaction with a pending version of this field,
        // or a version of it committed after this snapshot, wins. (A
        // record flipped to its commit timestamp but not yet published
        // by the watermark behaves exactly like a committed-after-
        // snapshot record here, which is the correct verdict: it can
        // only publish above this transaction's snapshot.)
        for rec in &chain.records {
            if rec.writer == txn || rec.write_of(field).is_none() {
                continue;
            }
            let cts = rec.ts();
            if cts == TS_PENDING {
                self.stats.bump_write_conflicts();
                self.note_ww_conflict(txn, oid, field);
                return Err(MvccWriteError::Conflict(MvccConflict {
                    oid,
                    field,
                    pending_in: Some(rec.writer),
                }));
            }
            if cts > snapshot_ts {
                self.stats.bump_write_conflicts();
                self.note_ww_conflict(txn, oid, field);
                return Err(MvccWriteError::Conflict(MvccConflict {
                    oid,
                    field,
                    pending_in: None,
                }));
            }
        }

        // The before-image is the current base value (no concurrent
        // heap writer of this object can interleave — we hold the shard
        // writer latch); this also surfaces unknown-OID/visibility
        // errors before anything is published.
        let before = self.base.read(oid, field)?;
        let own = chain
            .records
            .iter()
            .position(|r| r.ts() == TS_PENDING && r.writer == txn);
        let (outcome, records) = match own {
            Some(i) => {
                // Republish the transaction's record with the field
                // added (or its after-image updated) — records are
                // immutable once published, so a merge is a new record.
                let mut writes = chain.records[i].writes.clone();
                match writes.iter_mut().find(|w| w.field == field) {
                    Some(w) => w.after = value.clone(),
                    None => writes.push(FieldWrite {
                        field,
                        before,
                        after: value.clone(),
                    }),
                }
                let mut records = chain.records.clone();
                records[i] = Arc::new(VersionRecord::pending(txn, writes));
                (WriteOutcome::MergedVersion, records)
            }
            None => {
                let mut records = Vec::with_capacity(chain.records.len() + 1);
                records.push(Arc::new(VersionRecord::pending(
                    txn,
                    vec![FieldWrite {
                        field,
                        before,
                        after: value.clone(),
                    }],
                )));
                records.extend(chain.records.iter().cloned());
                (WriteOutcome::NewVersion, records)
            }
        };
        let chain_len = records.len() as u64;
        // Publish the record, THEN write through to the base store (the
        // order the miss-revalidating reader depends on).
        let old_chain = cell.records.swap(Chain { records }, &self.rcu);
        if let Err(e) = self.base.exchange_unchecked(oid, field, value) {
            // The object vanished between the before-image read and the
            // write-through (concurrent delete): unpublish the edit.
            let undo = cell.records.swap(
                Chain {
                    records: old_chain.node().records.clone(),
                },
                &self.rcu,
            );
            bin.push(RetiredNode::Chain(old_chain));
            bin.push(RetiredNode::Chain(undo));
            return Err(e.into());
        }
        bin.push(RetiredNode::Chain(old_chain));
        drop(bin);
        // Registry and stats updates run off the shard latch (latch
        // order: a txn stripe is never taken under a chain shard). The
        // write set is only consulted by this transaction's own
        // commit/abort, which its own thread issues strictly later.
        if outcome == WriteOutcome::NewVersion {
            self.stats.bump_versions_created();
            self.txn_stripe(txn)
                .lock()
                .get_mut(&txn)
                .expect("transaction is registered with the mvcc heap")
                .write_set
                .insert(oid);
        }
        self.stats.sample_chain_len(chain_len);
        // SSI: scan SIREAD entries AFTER the pending version is
        // published (see `read_as` for why the order closes the race)
        // and record an incoming rw edge per concurrent reader.
        if let Some(ssi) = &self.ssi {
            let edges = ssi.write_edges(txn, snapshot_ts, oid, field);
            if edges > 0 {
                self.stats.add_ssi_edges(edges);
            }
        }
        if self.obs.trace_sampled(txn.0) {
            self.obs
                .emit(EventKind::Write, self.obs.now_ns(), 0, txn.0, oid.0);
        }
        Ok(outcome)
    }

    /// Attributes a first-updater-wins refusal to the contended field
    /// (and emits a `conflict` trace instant when sampled). Called
    /// under the shard writer latch; the registry stripe is a leaf
    /// lock, so no ordering issue arises.
    fn note_ww_conflict(&self, txn: TxnId, oid: Oid, field: FieldId) {
        self.obs
            .contend(ObjKey::Field(oid.0, field.0), ContentionKind::WwConflict);
        if self.obs.trace_sampled(txn.0) {
            self.obs
                .emit(EventKind::Conflict, self.obs.now_ns(), 0, txn.0, oid.0);
        }
    }

    /// Attributes an SSI dangerous-structure abort: to the smallest
    /// OID in the pivot's write set (deterministic, and exactly one
    /// attribution per abort so registry totals match `ssi_aborts`),
    /// or unattributed for a read-only victim.
    fn note_ssi_abort(&self, txn: TxnId, state: &TxnState) {
        let key = state
            .write_set
            .iter()
            .min()
            .map_or(ObjKey::Unattributed, |o| ObjKey::Instance(o.0));
        self.obs.contend(key, ContentionKind::SsiAbort);
        if self.obs.trace_sampled(txn.0) {
            self.obs.emit(
                EventKind::Conflict,
                self.obs.now_ns(),
                0,
                txn.0,
                key.oid().unwrap_or(0),
            );
        }
    }

    /// Commits `txn`: draws the next commit timestamp from the atomic
    /// clock, flips every pending record of the transaction by storing
    /// the timestamp through the records' atomic `commit_ts` (record
    /// identity is stable across concurrent snapshot swaps, so the flip
    /// takes **no latch at all**), then publishes the timestamp through
    /// the lock-free ordered watermark. Concurrent snapshots cannot
    /// observe a half-flipped transaction: the records become visible
    /// only once the watermark publishes the timestamp, and the
    /// watermark publishes it only after every record is flipped.
    /// Returns the commit timestamp, and returns only once the
    /// timestamp is **published**: any snapshot taken after `commit`
    /// returns — including this session's next transaction — observes
    /// the commit (read-your-own-commits across transactions; the wait
    /// covers only the bounded publication lag behind concurrent
    /// committers holding earlier timestamps). A **read-only**
    /// transaction serializes at (and returns) its snapshot timestamp
    /// without drawing a timestamp at all, keeping the reader path
    /// coordination-free end to end.
    ///
    /// At [`IsolationLevel::Snapshot`] commit is infallible by
    /// construction — all conflicts were detected at write time. At
    /// [`IsolationLevel::Serializable`] the commit additionally runs
    /// dangerous-structure validation; on failure the transaction is
    /// fully rolled back (as by [`MvccHeap::abort`]), its drawn
    /// timestamp is published as a *skip* (keeping the watermark prefix
    /// contiguous), and the [`SsiConflict`] is returned — the caller
    /// retries on a fresh snapshot, like a first-updater-wins victim.
    pub fn commit(&self, txn: TxnId) -> Result<Ts, CommitError> {
        let state =
            self.txn_stripe(txn).lock().remove(&txn).unwrap_or_else(|| {
                panic!("transaction {txn} is not registered with the mvcc heap")
            });

        if state.write_set.is_empty() {
            // Read-only transactions still validate: their reads can
            // complete a dangerous structure around a committed pivot
            // (the SI read-only anomaly, Fekete et al. 2004).
            if let Some(ssi) = &self.ssi {
                if let SsiVerdict::Abort(c) = ssi.validate_and_commit(txn, state.epoch.ts) {
                    self.note_ssi_abort(txn, &state);
                    self.epochs.unregister(state.epoch);
                    self.stats.bump_ssi_aborts();
                    self.stats.bump_aborts();
                    return Err(c.into());
                }
            }
            self.epochs.unregister(state.epoch);
            self.stats.bump_commits();
            return Ok(state.epoch.ts);
        }

        // Benchmark baseline only: serialize the whole draw→flip→publish
        // window behind one mutex, reproducing the seed's commit lock.
        // Chaos yield points inside the window are skipped under the
        // baseline (`coarse.is_some()`): a scheduled worker parked
        // while holding this mutex would deadlock the token scheduler.
        finecc_chaos::yield_point(finecc_chaos::Site::CommitTsDraw);
        let coarse = self.coarse_commit.as_ref().map(|m| m.lock());

        // Commit-phase probes (no-ops on a disabled handle — not even
        // a clock read). Laps sit strictly *between* the latch-free
        // steps they time, never inside a latch: the timer itself
        // takes nothing, and the only latch alive across laps is the
        // benchmark-only coarse-baseline mutex.
        let mut phases = self.obs.phase_timer();
        let commit_ts = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(ssi) = &self.ssi {
            // Validation and commit publication are one atomic step per
            // transaction in the tracker; the timestamp becomes visible
            // to snapshots only below, after every record is flipped.
            if let SsiVerdict::Abort(c) = ssi.validate_and_commit(txn, commit_ts) {
                // The drawn timestamp must still reach the watermark —
                // as a skip — or the contiguous prefix would stall
                // forever. Nothing was flipped at `commit_ts`, so a
                // snapshot there observes exactly the state at
                // `commit_ts - 1`. The skip is logged before it is
                // published so recovery restores the hole, but the
                // append never waits for a sync: a lost skip is
                // harmless (any later durable commit covers the frame;
                // a reused trailing skip timestamp flipped nothing).
                if let Some(wal) = &self.wal {
                    // Best-effort even on a degraded log: a lost skip
                    // is harmless (see above), so a failed append must
                    // not escalate an SSI refusal into a panic.
                    let _ = wal.append_skip(commit_ts);
                }
                if self.watermark.publish(commit_ts) {
                    self.stats.bump_watermark_waits();
                }
                self.stats.bump_ts_skips();
                drop(coarse);
                self.note_ssi_abort(txn, &state);
                let rolled_back = self.rollback_writes(txn, &state);
                self.stats.add_versions_reclaimed(rolled_back as u64);
                self.epochs.unregister(state.epoch);
                self.stats.bump_ssi_aborts();
                self.stats.bump_aborts();
                return Err(c.into());
            }
        }
        phases.lap(Phase::CommitTsDraw);
        // Locate this transaction's pending records once — the redo
        // images (write-ahead log) and the commit flips both walk them.
        // Record identity is stable across concurrent snapshot swaps
        // (snapshots share records by `Arc`) and nobody but the owner
        // merges or removes a pending record, so the collected handles
        // stay valid after the pin is dropped. (Sorted iteration is
        // determinism, not a lock-ordering requirement: there is
        // nothing to order.)
        let mut oids: Vec<Oid> = state.write_set.iter().copied().collect();
        oids.sort_unstable();
        let mut own_records: Vec<Arc<VersionRecord>> = Vec::with_capacity(oids.len());
        {
            let pin = self.pin();
            for &oid in &oids {
                let map = self.shard(oid).map_for(oid).load(&pin);
                let cell = map.get(&oid).expect("written chain exists");
                let chain = cell.records.load(&pin);
                let own = chain
                    .records
                    .iter()
                    .find(|r| r.ts() == TS_PENDING && r.writer == txn)
                    .expect("pending record owned by committer");
                own_records.push(Arc::clone(own));
            }
        }
        // Durable before visible: the record hits the log — and, at
        // WalSync, the disk (group-commit ack) — strictly before any
        // record flips and strictly before the watermark publishes the
        // timestamp. No latch is held across the wait; concurrent
        // committers keep drawing, appending and sharing fsyncs, and
        // the ordered watermark serializes visibility afterwards
        // exactly as without a log.
        if let Some(wal) = &self.wal {
            let mut writes = Vec::new();
            for (rec, &oid) in own_records.iter().zip(&oids) {
                for w in &rec.writes {
                    writes.push(FieldImage {
                        oid,
                        field: w.field,
                        value: w.after.clone(),
                    });
                }
            }
            if coarse.is_none() {
                finecc_chaos::yield_point(finecc_chaos::Site::CommitWalAppend);
            }
            if let Err(e) = wal.append_commit(commit_ts, txn, &writes) {
                // Graceful degradation: the record never reached the
                // log, so the commit must not happen — but the drawn
                // timestamp must still reach the watermark or the
                // contiguous prefix stalls forever. Publish it as a
                // skip (best-effort on the log; a lost skip is
                // harmless, see the SSI-refusal path above) and roll
                // the transaction back. The SSI tracker has already
                // recorded the transaction as committed at
                // `commit_ts`; leaving that in place is conservative —
                // it can only produce false-positive aborts of rivals,
                // never a missed conflict.
                let _ = wal.append_skip(commit_ts);
                if self.watermark.publish(commit_ts) {
                    self.stats.bump_watermark_waits();
                }
                self.stats.bump_ts_skips();
                drop(coarse);
                let rolled_back = self.rollback_writes(txn, &state);
                self.stats.add_versions_reclaimed(rolled_back as u64);
                self.epochs.unregister(state.epoch);
                self.stats.bump_aborts();
                return Err(CommitError::LogIo(e.to_string()));
            }
        }
        phases.lap(Phase::CommitWalAck);
        // Flip this transaction's pending records to the commit
        // timestamp — an atomic store per record through the published
        // chain snapshots, no latch.
        for rec in &own_records {
            if coarse.is_none() {
                finecc_chaos::yield_point(finecc_chaos::Site::CommitFlipStep);
            }
            rec.commit_ts.store(commit_ts, Ordering::SeqCst);
        }
        phases.lap(Phase::CommitFlip);
        if coarse.is_none() {
            finecc_chaos::yield_point(finecc_chaos::Site::CommitPublish);
        }
        if self.watermark.publish(commit_ts) {
            self.stats.bump_watermark_waits();
        }
        drop(coarse);
        // A returned commit is a *visible* commit: wait out the (tiny,
        // bounded) publication lag behind concurrent committers with
        // earlier timestamps, so this session's next snapshot — and
        // anyone it signals — observes the commit. Without this, a
        // session's own next write could be refused as
        // "committed after snapshot" by its previous transaction.
        // Deliberate trade-off: commit *returns* re-serialize in
        // timestamp order (head-of-line behind the slowest in-flight
        // committer), but only the return waits — flips, validation
        // and publication all ran latch-free above. Relaxing this
        // needs a per-session visibility floor, which needs a session
        // abstraction the heap does not have (see the ROADMAP).
        // The chaos fault plane can switch this barrier off
        // (`Site::CommitPublishWait` + `FaultKind::Disable`): the
        // explorer's known-bug regression re-creates the pre-barrier
        // engine and shows the lost-own-write anomaly it allowed.
        if !finecc_chaos::disabled_at(finecc_chaos::Site::CommitPublishWait) {
            self.watermark.wait_published(commit_ts);
        }
        phases.lap(Phase::CommitPublish);
        if self.obs.trace_sampled(txn.0) {
            let dur = phases.elapsed_ns().unwrap_or(0);
            let now = self.obs.now_ns();
            self.obs
                .emit(EventKind::Commit, now.saturating_sub(dur), dur, txn.0, 0);
        }
        phases.finish(Phase::CommitTotal);

        self.epochs.unregister(state.epoch);
        self.stats.bump_commits();
        let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(GC_EVERY_COMMITS) {
            self.gc();
        }
        Ok(commit_ts)
    }

    /// Removes every pending record `txn` owns and restores its
    /// before-images into the base store. Returns the number of objects
    /// rolled back.
    fn rollback_writes(&self, txn: TxnId, state: &TxnState) -> usize {
        let mut rolled_back = 0;
        for &oid in &state.write_set {
            let shard = self.shard(oid);
            let mut bin = shard.writer.lock();
            let map_cell = shard.map_for(oid);
            let map = map_cell.load_exclusive();
            let cell = map.get(&oid).expect("written chain exists");
            let chain = cell.records.load_exclusive();
            let idx = chain
                .records
                .iter()
                .position(|r| r.ts() == TS_PENDING && r.writer == txn)
                .expect("pending record owned by aborter");
            // Restore base values BEFORE unpublishing the record, so a
            // reader that misses the shrunken chain finds the restored
            // value (while the record is still published, invisible
            // readers reconstruct through its before-images — the same
            // values). No other live transaction wrote these fields
            // (they would have conflicted), so restoring is safe. The
            // instance may have been deleted concurrently; the undo
            // then has nothing to restore (same contract as
            // `UndoLog::rollback`).
            for w in &chain.records[idx].writes {
                let _ = self.base.write_unchecked(oid, w.field, w.before.clone());
            }
            if chain.records.len() == 1 {
                // Last record: drop the whole chain from the bucket map.
                let mut next = map.clone();
                next.remove(&oid);
                let old = map_cell.swap(next, &self.rcu);
                bin.push(RetiredNode::Map(old));
            } else {
                let mut records = chain.records.clone();
                records.remove(idx);
                let old = cell.records.swap(Chain { records }, &self.rcu);
                bin.push(RetiredNode::Chain(old));
            }
            rolled_back += 1;
        }
        rolled_back
    }

    /// Aborts `txn`: restores every before-image of its pending records
    /// into the base store and removes the records. Returns the number of
    /// objects rolled back.
    pub fn abort(&self, txn: TxnId) -> usize {
        let state =
            self.txn_stripe(txn).lock().remove(&txn).unwrap_or_else(|| {
                panic!("transaction {txn} is not registered with the mvcc heap")
            });
        if let Some(ssi) = &self.ssi {
            ssi.forget(txn);
        }
        let rolled_back = self.rollback_writes(txn, &state);
        // Abort-discarded records count as reclaimed, so created and
        // reclaimed balance once GC has drained the committed history.
        self.stats.add_versions_reclaimed(rolled_back as u64);
        self.epochs.unregister(state.epoch);
        self.stats.bump_aborts();
        rolled_back
    }

    /// Opens a standalone read snapshot of the latest committed state.
    pub fn snapshot(self: &Arc<Self>) -> crate::Snapshot {
        let epoch = self.epochs.register(&self.watermark);
        crate::Snapshot::new(Arc::clone(self), epoch)
    }

    pub(crate) fn release_snapshot(&self, epoch: EpochHandle) {
        self.epochs.unregister(epoch);
    }

    /// The oldest snapshot any reader may still demand. Versions
    /// committed at or before this horizon can never be reconstructed
    /// *past* again.
    ///
    /// The watermark is read **before** the epoch shards are scanned
    /// and bounds the result; see `EpochTable`'s docs for why that makes the
    /// shard-at-a-time scan safe against concurrent registrations.
    pub fn gc_horizon(&self) -> Ts {
        let bound = self.current_ts();
        match self.epochs.min_active() {
            Some(m) => m.min(bound),
            None => bound,
        }
    }

    /// Epoch-based garbage collection: drops every version record whose
    /// commit timestamp is at or below the horizon — no active or future
    /// snapshot can ever need to reconstruct *past* such a record. At
    /// [`IsolationLevel::Serializable`] the same horizon also retires
    /// SSI flag entries and SIREAD registrations (a transaction
    /// committed at or below the horizon cannot be concurrent with any
    /// live or future one). The pass also drives the copy-on-write
    /// reclamation clock: chain snapshots retired by writers are freed
    /// here once their grace period has run out every possible reader
    /// (`cow_reclaimed` in the statistics). Returns the number of
    /// records reclaimed.
    pub fn gc(&self) -> usize {
        // The copy-on-write reclamation decision point — outside every
        // latch (pins are never held across yield sites, so GC never
        // waits on a parked thread).
        finecc_chaos::yield_point(finecc_chaos::Site::CowReclaim);
        let horizon = self.gc_horizon();
        if let Some(ssi) = &self.ssi {
            ssi.purge(horizon);
        }
        let mut reclaimed = 0;
        for shard in self.shards.iter() {
            let mut bin = shard.writer.lock();
            for map_cell in shard.maps.iter() {
                let map = map_cell.load_exclusive();
                let mut removed: Vec<Oid> = Vec::new();
                let mut swaps: Vec<(Arc<ChainCell>, Vec<Arc<VersionRecord>>)> = Vec::new();
                for (&oid, cell) in map.iter() {
                    let records = &cell.records.load_exclusive().records;
                    let keep: Vec<Arc<VersionRecord>> = records
                        .iter()
                        .filter(|r| {
                            let cts = r.ts();
                            cts == TS_PENDING || cts > horizon
                        })
                        .cloned()
                        .collect();
                    if keep.len() == records.len() {
                        continue;
                    }
                    reclaimed += records.len() - keep.len();
                    if keep.is_empty() {
                        removed.push(oid);
                    } else {
                        swaps.push((Arc::clone(cell), keep));
                    }
                }
                // Publish the shrunken chains, then the shrunken bucket
                // map — all references into the old snapshots are
                // released above, so the swaps cannot invalidate
                // anything still borrowed.
                let shrink_map = !removed.is_empty();
                let next = shrink_map.then(|| {
                    let mut next = map.clone();
                    for oid in &removed {
                        next.remove(oid);
                    }
                    next
                });
                for (cell, records) in swaps {
                    let old = cell.records.swap(Chain { records }, &self.rcu);
                    bin.push(RetiredNode::Chain(old));
                }
                if let Some(next) = next {
                    let old = map_cell.swap(next, &self.rcu);
                    bin.push(RetiredNode::Map(old));
                }
            }
        }
        self.stats.add_versions_reclaimed(reclaimed as u64);
        self.collect_retired();
        reclaimed
    }

    /// Frees retired copy-on-write snapshots whose grace period has
    /// passed. GC-path only; never touched by readers.
    fn collect_retired(&self) {
        let horizon = self.rcu.try_advance();
        let mut freed = 0u64;
        for shard in self.shards.iter() {
            let mut bin = shard.writer.lock();
            let before = bin.len();
            bin.retain(|node| node.era() >= horizon);
            freed += (before - bin.len()) as u64;
        }
        if freed > 0 {
            self.stats.add_cow_reclaimed(freed);
        }
    }

    /// Number of live version records across all chains (diagnostics).
    /// Latch-free; under concurrent commits the total is approximate —
    /// a consistent point-in-time count would require freezing every
    /// shard at once, which diagnostics must never do.
    pub fn live_versions(&self) -> usize {
        let pin = self.pin();
        self.shards
            .iter()
            .flat_map(|s| s.maps.iter())
            .map(|m| {
                m.load(&pin)
                    .values()
                    .map(|cell| cell.records.load(&pin).records.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Number of objects with a live chain (diagnostics; approximate
    /// under concurrency, like [`MvccHeap::live_versions`]).
    pub fn live_chains(&self) -> usize {
        let pin = self.pin();
        self.shards
            .iter()
            .flat_map(|s| s.maps.iter())
            .map(|m| m.load(&pin).len())
            .sum()
    }

    /// Publishers that hit the watermark ring's overflow fallback so
    /// far (diagnostics; also surfaced as `watermark_waits` in the
    /// statistics relative to a reset).
    pub fn watermark_waits(&self) -> u64 {
        self.watermark.waits()
    }

    /// Number of live SIREAD registrations; 0 at
    /// [`IsolationLevel::Snapshot`] (diagnostics; approximate under
    /// concurrency).
    pub fn ssi_siread_entries(&self) -> usize {
        self.ssi.as_ref().map_or(0, |s| s.siread_entries())
    }

    /// Number of transactions the SSI tracker still holds flags for
    /// (live + retained committed); 0 at [`IsolationLevel::Snapshot`]
    /// (diagnostics; approximate under concurrency).
    pub fn ssi_tracked_txns(&self) -> usize {
        self.ssi.as_ref().map_or(0, |s| s.tracked_txns())
    }
}

/// Why an MVCC write failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvccWriteError {
    /// First-updater-wins conflict; the transaction must abort (and may
    /// retry with a fresh snapshot).
    Conflict(MvccConflict),
    /// The base store rejected the write (unknown OID, type mismatch, …).
    Store(StoreError),
}

impl From<StoreError> for MvccWriteError {
    fn from(e: StoreError) -> MvccWriteError {
        MvccWriteError::Store(e)
    }
}

impl std::fmt::Display for MvccWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvccWriteError::Conflict(c) => c.fmt(f),
            MvccWriteError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MvccWriteError {}

/// Why [`MvccHeap::commit`] refused a transaction. On either variant
/// the transaction is fully rolled back (as by [`MvccHeap::abort`])
/// and its drawn timestamp is published as a *skip*, keeping the
/// watermark prefix dense — callers retry on a fresh snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// Serializable validation found a dangerous structure.
    Ssi(SsiConflict),
    /// The write-ahead log could not make the commit durable (append
    /// or fsync failure). Nothing became visible; the failure may be
    /// transient (the log degrades batch by batch), so the error is
    /// retryable.
    LogIo(String),
}

impl From<SsiConflict> for CommitError {
    fn from(c: SsiConflict) -> CommitError {
        CommitError::Ssi(c)
    }
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Ssi(c) => c.fmt(f),
            CommitError::LogIo(m) => write!(f, "write-ahead log failure: {m}"),
        }
    }
}

impl std::error::Error for CommitError {}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::{ClassId, FieldType, Schema, SchemaBuilder};

    fn setup() -> (Arc<Schema>, Arc<MvccHeap>, ClassId, FieldId, FieldId) {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Int);
        let schema = Arc::new(b.finish().unwrap());
        let db = Arc::new(Database::new(Arc::clone(&schema)));
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let y = schema.resolve_field(a, "y").unwrap();
        (schema, Arc::new(MvccHeap::new(db)), a, x, y)
    }

    #[test]
    fn read_your_writes_and_isolation() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(7)).unwrap();
        // Writer sees its own write; a concurrent snapshot does not.
        assert_eq!(heap.read(TxnId(1), o, x), Ok(Value::Int(7)));
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(0)));
        heap.commit(TxnId(1)).unwrap();
        // T2's snapshot predates the commit: still the old value.
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(0)));
        heap.commit(TxnId(2)).unwrap();
        // A fresh snapshot sees the committed value.
        heap.begin(TxnId(3));
        assert_eq!(heap.read(TxnId(3), o, x), Ok(Value::Int(7)));
        heap.abort(TxnId(3));
    }

    #[test]
    fn first_updater_wins_per_field() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(1)).unwrap();
        // Same field: pending conflict.
        let err = heap.write(TxnId(2), o, x, Value::Int(2)).unwrap_err();
        assert_eq!(
            err,
            MvccWriteError::Conflict(MvccConflict {
                oid: o,
                field: x,
                pending_in: Some(TxnId(1)),
            })
        );
        heap.commit(TxnId(1)).unwrap();
        // T2's snapshot is now stale: committed-after-snapshot conflict.
        let err = heap.write(TxnId(2), o, x, Value::Int(2)).unwrap_err();
        assert_eq!(
            err,
            MvccWriteError::Conflict(MvccConflict {
                oid: o,
                field: x,
                pending_in: None,
            })
        );
        heap.abort(TxnId(2));
        assert_eq!(heap.stats.snapshot().write_conflicts, 2);
    }

    #[test]
    fn disjoint_fields_of_one_object_never_conflict() {
        // The multi-version analogue of the paper's P4 fix: writers of
        // disjoint fields of the SAME object both commit, out of install
        // order, and snapshots reconstruct each field independently.
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(10)).unwrap();
        heap.write(TxnId(2), o, y, Value::Int(20)).unwrap();
        let snap = heap.snapshot();
        // Install order is T1 then T2, commit order T2 then T1.
        let ts2 = heap.commit(TxnId(2)).unwrap();
        let mid = heap.snapshot();
        let ts1 = heap.commit(TxnId(1)).unwrap();
        assert!(ts2 < ts1);
        assert_eq!(heap.stats.snapshot().write_conflicts, 0);
        // Pre-commit snapshot: neither write; mid snapshot: only T2's.
        assert_eq!(snap.read(o, x), Ok(Value::Int(0)));
        assert_eq!(snap.read(o, y), Ok(Value::Int(0)));
        assert_eq!(mid.read(o, x), Ok(Value::Int(0)));
        assert_eq!(mid.read(o, y), Ok(Value::Int(20)));
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(10)));
        assert_eq!(heap.base().read(o, y), Ok(Value::Int(20)));
    }

    #[test]
    fn abort_restores_before_images() {
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.write(TxnId(1), o, x, Value::Int(5)).unwrap();
        heap.write(TxnId(1), o, x, Value::Int(6)).unwrap();
        heap.write(TxnId(1), o, y, Value::Int(7)).unwrap();
        assert_eq!(heap.abort(TxnId(1)), 1, "one object rolled back");
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(0)));
        assert_eq!(heap.base().read(o, y), Ok(Value::Int(0)));
        assert_eq!(heap.live_chains(), 0, "aborted chain is removed");
    }

    #[test]
    fn snapshots_are_stable_and_pin_versions() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        // Commit three successive values, snapshotting between commits.
        let mut snaps = Vec::new();
        for (i, v) in [10, 20, 30].into_iter().enumerate() {
            snaps.push(heap.snapshot());
            let t = TxnId(i as u64 + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(v)).unwrap();
            heap.commit(t).unwrap();
        }
        assert_eq!(snaps[0].read(o, x), Ok(Value::Int(0)));
        assert_eq!(snaps[1].read(o, x), Ok(Value::Int(10)));
        assert_eq!(snaps[2].read(o, x), Ok(Value::Int(20)));
        // Nothing at or below the oldest active snapshot can be pruned
        // past it: all three versions stay reachable.
        heap.gc();
        assert_eq!(snaps[0].read(o, x), Ok(Value::Int(0)));
        drop(snaps);
        // With every snapshot released the whole history is reclaimable.
        let reclaimed = heap.gc();
        assert!(reclaimed >= 3, "got {reclaimed}");
        assert_eq!(heap.live_versions(), 0);
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(30)));
    }

    #[test]
    fn commit_is_atomic_across_objects() {
        let (_, heap, a, x, _) = setup();
        let o1 = heap.base().create(a);
        let o2 = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.write(TxnId(1), o1, x, Value::Int(1)).unwrap();
        heap.write(TxnId(1), o2, x, Value::Int(2)).unwrap();
        let snap_before = heap.snapshot();
        let ts = heap.commit(TxnId(1)).unwrap();
        let snap_after = heap.snapshot();
        assert!(snap_after.ts() >= ts);
        // The pre-commit snapshot sees neither write; the post-commit
        // snapshot sees both.
        assert_eq!(snap_before.read(o1, x), Ok(Value::Int(0)));
        assert_eq!(snap_before.read(o2, x), Ok(Value::Int(0)));
        assert_eq!(snap_after.read(o1, x), Ok(Value::Int(1)));
        assert_eq!(snap_after.read(o2, x), Ok(Value::Int(2)));
    }

    #[test]
    fn commit_timestamps_are_monotone_and_unique() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        let mut last = 0;
        for i in 0..10u64 {
            let t = TxnId(i + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(i as i64)).unwrap();
            let ts = heap.commit(t).unwrap();
            assert!(ts > last);
            last = ts;
        }
        assert_eq!(heap.current_ts(), last);
    }

    #[test]
    fn store_errors_pass_through_without_installing_versions() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        let err = heap.write(TxnId(1), o, x, Value::Bool(true)).unwrap_err();
        assert!(matches!(
            err,
            MvccWriteError::Store(StoreError::TypeMismatch { .. })
        ));
        assert_eq!(heap.live_versions(), 0);
        assert_eq!(heap.write_set_len(TxnId(1)), 0);
        heap.abort(TxnId(1));
    }

    #[test]
    fn concurrent_writers_disjoint_objects_all_commit() {
        let (_, heap, a, x, _) = setup();
        let oids: Vec<Oid> = (0..8).map(|_| heap.base().create(a)).collect();
        std::thread::scope(|s| {
            for (i, &oid) in oids.iter().enumerate() {
                let heap = &heap;
                s.spawn(move || {
                    for round in 0..50u64 {
                        let t = TxnId((i as u64) << 32 | round | 1 << 63);
                        heap.begin(t);
                        heap.write(t, oid, x, Value::Int(round as i64)).unwrap();
                        heap.commit(t).unwrap();
                    }
                });
            }
        });
        for &oid in &oids {
            assert_eq!(heap.base().read(oid, x), Ok(Value::Int(49)));
        }
        assert_eq!(heap.stats.snapshot().commits, 400);
        assert_eq!(heap.stats.snapshot().write_conflicts, 0);
        // Every drawn timestamp was published: the watermark drained to
        // the clock and the prefix is contiguous.
        assert_eq!(heap.current_ts(), 400);
    }

    #[test]
    fn chain_hits_answer_from_the_chain_alone() {
        // Once a field has any version record, snapshot reads of it are
        // served entirely from the copy-on-write chain: no base-store
        // lock, no latch — the counters prove it.
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        let pin_gc = heap.snapshot(); // horizon 0: chains never shrink
        for i in 0..3u64 {
            let t = TxnId(i + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(i as i64)).unwrap();
            heap.write(t, o, y, Value::Int(-(i as i64))).unwrap();
            heap.commit(t).unwrap();
        }
        heap.stats.reset();
        let snap = heap.snapshot();
        assert_eq!(snap.read(o, x), Ok(Value::Int(2)));
        assert_eq!(snap.read(o, y), Ok(Value::Int(-2)));
        assert_eq!(pin_gc.read(o, x), Ok(Value::Int(0)));
        let m = heap.stats.snapshot();
        assert_eq!(m.snapshot_reads, 3);
        assert_eq!(m.read_chain_hits, 3, "all three reads hit the chain");
        assert_eq!(m.read_base_loads, 0, "the base store was never locked");
        assert_eq!(m.read_retries, 0);
    }

    #[test]
    fn chain_miss_pays_one_base_read() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.stats.reset();
        let snap = heap.snapshot();
        assert_eq!(snap.read(o, x), Ok(Value::Int(0)));
        let m = heap.stats.snapshot();
        assert_eq!(m.read_chain_hits, 0);
        assert_eq!(m.read_base_loads, 1, "unversioned object: one base read");
    }

    #[test]
    fn merged_writes_republish_with_updated_after_images() {
        // Repeated writes by one transaction stay a single record whose
        // after-image tracks the latest value — and its reader sees it
        // without consulting the base store.
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        assert_eq!(
            heap.write(TxnId(1), o, x, Value::Int(1)).unwrap(),
            WriteOutcome::NewVersion
        );
        assert_eq!(
            heap.write(TxnId(1), o, x, Value::Int(2)).unwrap(),
            WriteOutcome::MergedVersion
        );
        assert_eq!(heap.live_versions(), 1, "merge does not grow the chain");
        assert_eq!(heap.read(TxnId(1), o, x), Ok(Value::Int(2)));
        heap.commit(TxnId(1)).unwrap();
        heap.begin(TxnId(2));
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(2)));
        heap.abort(TxnId(2));
    }

    #[test]
    fn coarse_baseline_path_still_commits() {
        let mut b = SchemaBuilder::new();
        b.class("a").field("x", FieldType::Int);
        let schema = Arc::new(b.finish().unwrap());
        let db = Arc::new(Database::new(Arc::clone(&schema)));
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let heap = Arc::new(MvccHeap::with_commit_path(
            db,
            IsolationLevel::Snapshot,
            CommitPath::CoarseBaseline,
        ));
        assert_eq!(heap.commit_path(), CommitPath::CoarseBaseline);
        let o = heap.base().create(a);
        for i in 0..5u64 {
            let t = TxnId(i + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(i as i64)).unwrap();
            assert_eq!(heap.commit(t).unwrap(), i + 1);
            heap.begin(TxnId(100 + i));
            assert_eq!(heap.read(TxnId(100 + i), o, x), Ok(Value::Int(i as i64)));
            heap.abort(TxnId(100 + i));
        }
        assert_eq!(heap.current_ts(), 5);
    }

    #[test]
    fn latch_free_readers_stay_consistent_under_write_churn() {
        // Readers hammer one hot object while a writer thread churns
        // versions (install → flip → GC): the debug-build cross-check
        // inside read_as latches and re-reads every single read, so
        // this is the copy-on-write publication protocol's sharpest
        // unit-level race test. Reads must also be atomic across the
        // two fields each commit writes together.
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        std::thread::scope(|s| {
            {
                let heap = Arc::clone(&heap);
                s.spawn(move || {
                    for round in 0..300u64 {
                        let t = TxnId(round + 1);
                        heap.begin(t);
                        heap.write(t, o, x, Value::Int(round as i64)).unwrap();
                        heap.write(t, o, y, Value::Int(round as i64)).unwrap();
                        heap.commit(t).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let heap = Arc::clone(&heap);
                s.spawn(move || {
                    let mut last = -1i64;
                    while !writer_done(&heap) {
                        let snap = heap.snapshot();
                        let vx = snap.read(o, x).unwrap();
                        let vy = snap.read(o, y).unwrap();
                        assert_eq!(vx, vy, "torn read across one commit's fields");
                        let Value::Int(v) = vx else { panic!() };
                        assert!(v >= last, "snapshot went backwards");
                        last = v;
                    }
                });
            }

            fn writer_done(heap: &MvccHeap) -> bool {
                heap.current_ts() >= 300
            }
        });
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(299)));
        let m = heap.stats.snapshot();
        assert_eq!(m.commits, 300);
        assert_eq!(m.write_conflicts, 0);
    }
}
