//! The versioned heap: chains, transaction registry, commit/abort, GC,
//! and — at [`IsolationLevel::Serializable`] — SSI conflict tracking.
//!
//! # Concurrency architecture
//!
//! The commit path is **sharded**: no global mutex is held while a
//! transaction's chains are flipped, so committers of disjoint objects
//! proceed fully in parallel and committers of overlapping objects
//! contend only on the short per-shard flip sections.
//!
//! * **Timestamp allocation** is one `fetch_add` on an atomic clock
//!   ([`MvccHeap::commit`]); timestamps are unique and monotone in draw
//!   order, never guarded by a lock.
//! * **Chain flips** take per-OID shard latches only, one at a time, in
//!   canonical (ascending-OID) order.
//! * **Publication** goes through an ordered watermark (`Watermark`): a small
//!   in-flight commit table advances `last_committed` only when the
//!   committed-timestamp prefix is contiguous, so a snapshot taken at
//!   the watermark observes *every* write at or below it even when
//!   transactions finish flipping out of timestamp order. A timestamp
//!   drawn by a transaction that then fails SSI validation is published
//!   as a *skip* (nothing was flipped at it), keeping the prefix dense.
//! * **Registries are striped**: the transaction table by `TxnId` and
//!   the snapshot-epoch table by a round-robin shard pick, so
//!   begin/commit never funnel through one mutex either.
//!
//! ## Latch order
//!
//! Heap latches are acquired in this order, each dropped before the
//! next class is taken (no heap latch is ever held across another —
//! with the single documented exception that the rollback path restores
//! base-store values under the owning chain-shard latch):
//!
//! 1. a **txn stripe** (registry bookkeeping; held briefly, never
//!    across a chain shard);
//! 2. **OID chain shards**, in canonical ascending-OID order, one at a
//!    time;
//! 3. the **watermark** mutex (publication; a few integer ops);
//! 4. an **epoch shard** (snapshot registration/release).
//!
//! SSI-tracker latches (flag stripes, SIREAD shards — see [`crate::ssi`])
//! are never nested with heap latches: reads register SIREADs *before*
//! taking the chain shard and record edges *after* releasing it; writes
//! scan the SIREAD registry after releasing the shard; commit validates
//! before the first flip.
//!
//! The coarse single-mutex commit path of the seed implementation is
//! retained behind [`CommitPath::CoarseBaseline`] purely so the
//! `parallelism_sweep` experiment can measure the before/after win; the
//! production path is [`CommitPath::Sharded`].

use crate::ssi::{SsiTracker, SsiVerdict};
use crate::stats::MvccStats;
use crate::{IsolationLevel, SsiConflict, Ts, TS_PENDING};
use finecc_model::{FieldId, Oid, TxnId, Value};
use finecc_store::{Database, StoreError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const SHARD_COUNT: usize = 64;

/// How many mutexes the transaction registry is striped over.
const TXN_STRIPES: usize = 64;

/// How many mutexes the snapshot-epoch table is sharded over.
const EPOCH_SHARDS: usize = 16;

/// How often (in commits) the heap runs an opportunistic GC pass.
const GC_EVERY_COMMITS: u64 = 64;

/// A write was refused because another transaction got to the field
/// first (first-updater-wins at field granularity — two transactions
/// writing *disjoint* fields of one object never conflict, matching the
/// paper's fine-granularity theme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvccConflict {
    /// The contended object.
    pub oid: Oid,
    /// The contended field.
    pub field: FieldId,
    /// `Some(t)` when a version of the field is pending in live
    /// transaction `t`; `None` when a transaction already *committed* a
    /// newer version of the field than the writer's snapshot.
    pub pending_in: Option<TxnId>,
}

impl std::fmt::Display for MvccConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pending_in {
            Some(t) => write!(
                f,
                "write-write conflict on {}.{}: pending version of {t}",
                self.oid, self.field
            ),
            None => write!(
                f,
                "write-write conflict on {}.{}: committed after this snapshot",
                self.oid, self.field
            ),
        }
    }
}

impl std::error::Error for MvccConflict {}

/// What [`MvccHeap::write`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// A fresh pending version record was installed on the chain.
    NewVersion,
    /// The transaction already owned the chain head; the before-image set
    /// was extended in place.
    MergedVersion,
}

/// Which commit path the heap runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitPath {
    /// The production path: atomic timestamp draw, per-shard chain
    /// flips, ordered-watermark publication. No mutex is held across
    /// the chain flips; committers synchronize only on short per-shard
    /// latches and the watermark's brief publication mutex.
    #[default]
    Sharded,
    /// The pre-sharding baseline: the whole draw→flip→publish window is
    /// serialized behind one mutex. Kept **only** so experiments can
    /// measure the sharded path's win against the seed behavior; do not
    /// use it outside benchmarks.
    CoarseBaseline,
}

/// One version record: the before-images of the fields its writer
/// modified, i.e. everything needed to roll the object *back* past that
/// writer.
#[derive(Debug)]
struct VersionRecord {
    writer: TxnId,
    /// Commit timestamp; [`TS_PENDING`] until the writer commits.
    commit_ts: Ts,
    /// `(field, value before this writer's first write of the field)`.
    before: Vec<(FieldId, Value)>,
}

impl VersionRecord {
    fn before_of(&self, field: FieldId) -> Option<&Value> {
        self.before
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, v)| v)
    }
}

/// A per-OID chain, ordered by *installation*, newest record first.
/// Invariants:
///
/// * each transaction owns at most one record per chain (merged on
///   repeated writes);
/// * two records that touch a common field are ordered consistently by
///   install position *and* commit timestamp (field-level
///   first-updater-wins forbids concurrently pending writers of one
///   field), so newest-first before-image application per field is
///   well-defined — records touching disjoint fields may commit out of
///   install order, which is why readers walk the whole chain;
/// * the base store holds every field's newest (possibly pending) value.
#[derive(Debug, Default)]
struct Chain {
    records: Vec<VersionRecord>,
}

struct TxnState {
    /// The registered snapshot epoch; `epoch.ts` is the snapshot
    /// timestamp.
    epoch: EpochHandle,
    /// Objects this transaction installed pending versions on. Only the
    /// owning transaction's thread reads or writes this set, so it
    /// needs no latch beyond the registry stripe that holds it.
    write_set: HashSet<Oid>,
}

/// The ordered publication watermark: the bridge between *flipped* and
/// *visible*.
///
/// Committers draw timestamps from an atomic clock and flip their
/// chains without any global lock, so transaction `T+1` can finish
/// flipping before `T` does. Publishing `T+1` at that moment would let
/// a snapshot at `T+1` miss `T`'s writes. The watermark therefore
/// tracks completed-but-unpublished timestamps and advances
/// `published` (the snapshot source) only across a **contiguous**
/// prefix: every commit at or below the watermark has fully flipped.
///
/// The internal mutex is held only for the few integer operations of
/// [`Watermark::publish`] — never across a chain flip — and it also
/// provides the happens-before edge from a committer's flips to the
/// (possibly different) committer that ultimately advances the
/// watermark past them, which the `Release` store then passes on to
/// snapshot readers.
#[derive(Debug)]
struct Watermark {
    /// The highest timestamp `t` such that every commit in `1..=t` has
    /// fully flipped (or was skipped). This is `last_committed` — the
    /// snapshot source.
    published: AtomicU64,
    /// Flipped (or skipped) timestamps above `published`, awaiting
    /// their predecessors. Bounded by the number of in-flight commits.
    pending: Mutex<BTreeSet<Ts>>,
}

impl Watermark {
    fn new() -> Watermark {
        Watermark {
            published: AtomicU64::new(0),
            pending: Mutex::new(BTreeSet::new()),
        }
    }

    /// The latest fully published commit timestamp.
    #[inline]
    fn get(&self) -> Ts {
        self.published.load(Ordering::Acquire)
    }

    /// Marks `ts` complete (flipped, or skipped by an aborted
    /// validation) and advances the contiguous published prefix as far
    /// as it now reaches.
    fn publish(&self, ts: Ts) {
        let mut pending = self.pending.lock();
        pending.insert(ts);
        let mut head = self.published.load(Ordering::Relaxed);
        let mut advanced = false;
        while pending.remove(&(head + 1)) {
            head += 1;
            advanced = true;
        }
        if advanced {
            // Still under the `pending` mutex: stores are totally
            // ordered and monotone.
            self.published.store(head, Ordering::Release);
        }
    }
}

/// A live registration in the sharded epoch table: which shard holds
/// the entry, and the pinned snapshot timestamp.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EpochHandle {
    shard: u32,
    pub(crate) ts: Ts,
}

/// The snapshot registry: `ts → number of holders` per shard, sharded
/// round-robin so begin/commit of unrelated transactions never contend
/// on one epoch mutex. The minimum key across shards is the GC horizon.
///
/// Registration reads the watermark **under its shard's lock**, and
/// [`MvccHeap::gc_horizon`] reads the watermark *before* scanning the
/// shards (one at a time). That closes the registration/GC race without
/// a global lock: if the scan misses a concurrent registration, the
/// scan of that shard completed before the registration's critical
/// section, so the registration's watermark read happened after the
/// horizon's watermark bound was read — by monotonicity its pinned
/// timestamp is at or above the bound, hence at or above the horizon,
/// and the versions it can demand were not reclaimable.
#[derive(Debug)]
struct EpochTable {
    shards: Box<[Mutex<BTreeMap<Ts, usize>>]>,
    next: AtomicUsize,
}

impl EpochTable {
    fn new() -> EpochTable {
        EpochTable {
            shards: (0..EPOCH_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            next: AtomicUsize::new(0),
        }
    }

    /// Atomically reads the current watermark and registers it as a
    /// live epoch in a round-robin shard.
    fn register(&self, watermark: &Watermark) -> EpochHandle {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut map = self.shards[shard].lock();
        let ts = watermark.get();
        *map.entry(ts).or_insert(0) += 1;
        EpochHandle {
            shard: shard as u32,
            ts,
        }
    }

    fn unregister(&self, h: EpochHandle) {
        let mut map = self.shards[h.shard as usize].lock();
        match map.get_mut(&h.ts) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                map.remove(&h.ts);
            }
            None => debug_assert!(false, "unregistering unknown epoch {}", h.ts),
        }
    }

    /// The minimum registered snapshot timestamp, scanning shards one
    /// at a time (never holding two epoch locks). May miss an entry
    /// registered during the scan; see the type-level doc for why that
    /// is safe given the caller's watermark bound.
    fn min_active(&self) -> Option<Ts> {
        self.shards
            .iter()
            .filter_map(|s| s.lock().keys().next().copied())
            .min()
    }
}

/// The multi-version heap over a base [`Database`].
pub struct MvccHeap {
    base: Arc<Database>,
    shards: Box<[Mutex<HashMap<Oid, Chain>>]>,
    /// Transaction registry, striped by `TxnId`.
    txns: Box<[Mutex<HashMap<TxnId, TxnState>>]>,
    /// Snapshot registry; the minimum active entry is the GC horizon.
    epochs: EpochTable,
    /// The commit-timestamp allocator. Drawing a timestamp is one
    /// `fetch_add`; visibility is governed by the watermark, not the
    /// clock.
    clock: AtomicU64,
    /// Ordered publication: `last_committed` advances only across a
    /// contiguous flipped prefix.
    watermark: Watermark,
    commits_since_gc: AtomicU64,
    /// `Some` iff the heap runs [`CommitPath::CoarseBaseline`].
    coarse_commit: Option<Mutex<()>>,
    /// The rw-antidependency tracker; `Some` iff the heap runs at
    /// [`IsolationLevel::Serializable`].
    ssi: Option<SsiTracker>,
    /// Live counters.
    pub stats: MvccStats,
}

impl MvccHeap {
    /// Creates a heap versioning `base` at the default
    /// [`IsolationLevel::Snapshot`].
    pub fn new(base: Arc<Database>) -> MvccHeap {
        MvccHeap::with_isolation(base, IsolationLevel::Snapshot)
    }

    /// Creates a heap versioning `base` at the given isolation level.
    pub fn with_isolation(base: Arc<Database>, isolation: IsolationLevel) -> MvccHeap {
        MvccHeap::with_commit_path(base, isolation, CommitPath::Sharded)
    }

    /// Creates a heap versioning `base` at the given isolation level and
    /// commit path. [`CommitPath::CoarseBaseline`] exists for
    /// before/after benchmarking only.
    pub fn with_commit_path(
        base: Arc<Database>,
        isolation: IsolationLevel,
        commit_path: CommitPath,
    ) -> MvccHeap {
        let shards = (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let txns = (0..TXN_STRIPES)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MvccHeap {
            base,
            shards,
            txns,
            epochs: EpochTable::new(),
            clock: AtomicU64::new(0),
            watermark: Watermark::new(),
            commits_since_gc: AtomicU64::new(0),
            coarse_commit: match commit_path {
                CommitPath::Sharded => None,
                CommitPath::CoarseBaseline => Some(Mutex::new(())),
            },
            ssi: match isolation {
                IsolationLevel::Snapshot => None,
                IsolationLevel::Serializable => Some(SsiTracker::new()),
            },
            stats: MvccStats::default(),
        }
    }

    /// The base store (authoritative for the newest values).
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// The heap's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        if self.ssi.is_some() {
            IsolationLevel::Serializable
        } else {
            IsolationLevel::Snapshot
        }
    }

    /// The heap's commit path.
    pub fn commit_path(&self) -> CommitPath {
        if self.coarse_commit.is_some() {
            CommitPath::CoarseBaseline
        } else {
            CommitPath::Sharded
        }
    }

    #[inline]
    fn shard(&self, oid: Oid) -> &Mutex<HashMap<Oid, Chain>> {
        &self.shards[(oid.raw() as usize) % SHARD_COUNT]
    }

    #[inline]
    fn txn_stripe(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, TxnState>> {
        &self.txns[(txn.raw() as usize) % TXN_STRIPES]
    }

    /// The latest fully published commit timestamp (the watermark).
    pub fn current_ts(&self) -> Ts {
        self.watermark.get()
    }

    /// Registers a transaction, assigning it a snapshot of the latest
    /// published state. Returns the snapshot timestamp.
    pub fn begin(&self, txn: TxnId) -> Ts {
        let epoch = self.epochs.register(&self.watermark);
        let ts = epoch.ts;
        let prev = self.txn_stripe(txn).lock().insert(
            txn,
            TxnState {
                epoch,
                write_set: HashSet::new(),
            },
        );
        debug_assert!(prev.is_none(), "transaction {txn} already registered");
        if let Some(ssi) = &self.ssi {
            ssi.register(txn);
        }
        self.stats.bump_begins();
        ts
    }

    /// The registered snapshot timestamp of `txn`.
    pub fn snapshot_ts(&self, txn: TxnId) -> Option<Ts> {
        self.txn_stripe(txn).lock().get(&txn).map(|s| s.epoch.ts)
    }

    /// The number of objects `txn` has written so far.
    pub fn write_set_len(&self, txn: TxnId) -> usize {
        self.txn_stripe(txn)
            .lock()
            .get(&txn)
            .map_or(0, |s| s.write_set.len())
    }

    /// Reconstructs `field` of `oid` as of snapshot `ts`, seeing the
    /// pending writes of `as_txn` (pass `None` for a pure snapshot read).
    ///
    /// Takes **no logical locks**: reconstruction walks the version chain
    /// under the chain shard's short physical mutex only. At
    /// [`IsolationLevel::Serializable`] a transactional read additionally
    /// registers a SIREAD entry (before the walk) and records an outgoing
    /// rw-antidependency for every invisible overwrite of the field it
    /// steps past — still without blocking anyone.
    pub fn read_as(
        &self,
        ts: Ts,
        as_txn: Option<TxnId>,
        oid: Oid,
        field: FieldId,
    ) -> Result<Value, StoreError> {
        let ssi = match (&self.ssi, as_txn) {
            (Some(ssi), Some(txn)) => {
                // Register BEFORE walking the chain: a concurrent writer
                // either installed its record already (the walk sees it
                // and marks the edge here) or will scan the registry
                // after installing (and marks it there).
                ssi.record_read(txn, oid, field);
                Some((ssi, txn))
            }
            _ => None,
        };
        let mut overwriters: Vec<TxnId> = Vec::new();
        let shard = self.shard(oid).lock();
        let mut value = self.base.read(oid, field)?;
        if let Some(chain) = shard.get(&oid) {
            // Walk the whole chain (records touching disjoint fields may
            // commit out of install order, so there is no early stop):
            // revert every version that is invisible to this snapshot.
            // Records sharing a field are install- and timestamp-ordered,
            // so newest-first application lands on the value as of `ts`.
            for rec in &chain.records {
                let visible = if rec.commit_ts == TS_PENDING {
                    as_txn == Some(rec.writer)
                } else {
                    rec.commit_ts <= ts
                };
                if !visible {
                    if let Some(before) = rec.before_of(field) {
                        value = before.clone();
                        // The record overwrote the value this snapshot
                        // reads: an outgoing rw edge to its writer.
                        if ssi.is_some() {
                            overwriters.push(rec.writer);
                        }
                    }
                }
            }
        }
        drop(shard);
        if let Some((ssi, txn)) = ssi {
            let mut edges = 0;
            for writer in overwriters {
                edges += ssi.read_edge(txn, writer);
            }
            if edges > 0 {
                self.stats.add_ssi_edges(edges);
            }
        }
        self.stats.bump_snapshot_reads();
        Ok(value)
    }

    /// Snapshot read through a registered transaction (sees its own
    /// pending writes).
    pub fn read(&self, txn: TxnId, oid: Oid, field: FieldId) -> Result<Value, StoreError> {
        let ts = self
            .snapshot_ts(txn)
            .unwrap_or_else(|| panic!("transaction {txn} is not registered with the mvcc heap"));
        self.read_as(ts, Some(txn), oid, field)
    }

    /// Writes `field` of `oid` in transaction `txn`: first-updater-wins
    /// conflict check, pending-version installation, then write-through
    /// to the base store. Returns what happened to the chain.
    pub fn write(
        &self,
        txn: TxnId,
        oid: Oid,
        field: FieldId,
        value: Value,
    ) -> Result<WriteOutcome, MvccWriteError> {
        let snapshot_ts = self
            .snapshot_ts(txn)
            .unwrap_or_else(|| panic!("transaction {txn} is not registered with the mvcc heap"));
        let mut shard = self.shard(oid).lock();
        let chain = shard.entry(oid).or_default();

        // First-updater-wins admission control, at field granularity:
        // another live transaction with a pending version of this field,
        // or a version of it committed after this snapshot, wins. (A
        // record flipped to its commit timestamp but not yet published
        // by the watermark behaves exactly like a committed-after-
        // snapshot record here, which is the correct verdict: it can
        // only publish above this transaction's snapshot.)
        for rec in &chain.records {
            if rec.writer == txn || rec.before_of(field).is_none() {
                continue;
            }
            if rec.commit_ts == TS_PENDING {
                self.stats.bump_write_conflicts();
                return Err(MvccWriteError::Conflict(MvccConflict {
                    oid,
                    field,
                    pending_in: Some(rec.writer),
                }));
            }
            if rec.commit_ts > snapshot_ts {
                self.stats.bump_write_conflicts();
                return Err(MvccWriteError::Conflict(MvccConflict {
                    oid,
                    field,
                    pending_in: None,
                }));
            }
        }

        // Type/domain checks and the before-image come from the base
        // store; `write` returns the previous value.
        let before = self.base.write(oid, field, value)?;
        let own = chain
            .records
            .iter_mut()
            .find(|r| r.commit_ts == TS_PENDING && r.writer == txn);
        let outcome = if let Some(own) = own {
            if own.before_of(field).is_none() {
                own.before.push((field, before));
            }
            WriteOutcome::MergedVersion
        } else {
            chain.records.insert(
                0,
                VersionRecord {
                    writer: txn,
                    commit_ts: TS_PENDING,
                    before: vec![(field, before)],
                },
            );
            WriteOutcome::NewVersion
        };
        let chain_len = chain.records.len() as u64;
        drop(shard);
        // Registry and stats updates run off the shard latch (latch
        // order: a txn stripe is never taken under a chain shard). The
        // write set is only consulted by this transaction's own
        // commit/abort, which its own thread issues strictly later.
        if outcome == WriteOutcome::NewVersion {
            self.stats.bump_versions_created();
            self.txn_stripe(txn)
                .lock()
                .get_mut(&txn)
                .expect("registered above")
                .write_set
                .insert(oid);
        }
        self.stats.sample_chain_len(chain_len);
        // SSI: scan SIREAD entries AFTER the pending version is
        // installed (see `read_as` for why the order closes the race)
        // and record an incoming rw edge per concurrent reader.
        if let Some(ssi) = &self.ssi {
            let edges = ssi.write_edges(txn, snapshot_ts, oid, field);
            if edges > 0 {
                self.stats.add_ssi_edges(edges);
            }
        }
        Ok(outcome)
    }

    /// Commits `txn`: draws the next commit timestamp from the atomic
    /// clock, flips every pending record of the transaction under
    /// per-OID shard latches (in canonical ascending-OID order), then
    /// publishes the timestamp through the ordered watermark. No mutex
    /// is held across the flips — transactions flipping disjoint shards
    /// proceed in parallel, and the only commit-wide serialization left
    /// is the few integer operations inside `Watermark::publish` —
    /// in contrast to the seed's commit lock, which serialized entire
    /// commits. Returns the commit timestamp; a
    /// **read-only** transaction serializes at (and returns) its
    /// snapshot timestamp without drawing a timestamp at all, keeping
    /// the reader path coordination-free end to end.
    ///
    /// At [`IsolationLevel::Snapshot`] commit is infallible by
    /// construction — all conflicts were detected at write time. At
    /// [`IsolationLevel::Serializable`] the commit additionally runs
    /// dangerous-structure validation; on failure the transaction is
    /// fully rolled back (as by [`MvccHeap::abort`]), its drawn
    /// timestamp is published as a *skip* (keeping the watermark prefix
    /// contiguous), and the [`SsiConflict`] is returned — the caller
    /// retries on a fresh snapshot, like a first-updater-wins victim.
    pub fn commit(&self, txn: TxnId) -> Result<Ts, SsiConflict> {
        let state =
            self.txn_stripe(txn).lock().remove(&txn).unwrap_or_else(|| {
                panic!("transaction {txn} is not registered with the mvcc heap")
            });

        if state.write_set.is_empty() {
            // Read-only transactions still validate: their reads can
            // complete a dangerous structure around a committed pivot
            // (the SI read-only anomaly, Fekete et al. 2004).
            if let Some(ssi) = &self.ssi {
                if let SsiVerdict::Abort(c) = ssi.validate_and_commit(txn, state.epoch.ts) {
                    self.epochs.unregister(state.epoch);
                    self.stats.bump_ssi_aborts();
                    self.stats.bump_aborts();
                    return Err(c);
                }
            }
            self.epochs.unregister(state.epoch);
            self.stats.bump_commits();
            return Ok(state.epoch.ts);
        }

        // Benchmark baseline only: serialize the whole draw→flip→publish
        // window behind one mutex, reproducing the seed's commit lock.
        let coarse = self.coarse_commit.as_ref().map(|m| m.lock());

        let commit_ts = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(ssi) = &self.ssi {
            // Validation and commit publication are one atomic step per
            // transaction in the tracker; the timestamp becomes visible
            // to snapshots only below, after every chain is flipped.
            if let SsiVerdict::Abort(c) = ssi.validate_and_commit(txn, commit_ts) {
                // The drawn timestamp must still reach the watermark —
                // as a skip — or the contiguous prefix would stall
                // forever. Nothing was flipped at `commit_ts`, so a
                // snapshot there observes exactly the state at
                // `commit_ts - 1`.
                self.watermark.publish(commit_ts);
                self.stats.bump_ts_skips();
                drop(coarse);
                let rolled_back = self.rollback_writes(txn, &state);
                self.stats.add_versions_reclaimed(rolled_back as u64);
                self.epochs.unregister(state.epoch);
                self.stats.bump_ssi_aborts();
                self.stats.bump_aborts();
                return Err(c);
            }
        }
        // Flip this transaction's pending records to the commit
        // timestamp, one shard latch at a time, in canonical order.
        // Concurrent snapshots cannot observe a half-flipped state: the
        // records become visible only once the watermark (below)
        // publishes the timestamp, and the watermark publishes it only
        // after every record is flipped.
        let mut oids: Vec<Oid> = state.write_set.iter().copied().collect();
        oids.sort_unstable();
        for oid in oids {
            let mut shard = self.shard(oid).lock();
            let chain = shard.get_mut(&oid).expect("written chain exists");
            let own = chain
                .records
                .iter_mut()
                .find(|r| r.commit_ts == TS_PENDING && r.writer == txn)
                .expect("pending record owned by committer");
            own.commit_ts = commit_ts;
        }
        self.watermark.publish(commit_ts);
        drop(coarse);

        self.epochs.unregister(state.epoch);
        self.stats.bump_commits();
        let n = self.commits_since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(GC_EVERY_COMMITS) {
            self.gc();
        }
        Ok(commit_ts)
    }

    /// Removes every pending record `txn` owns and restores its
    /// before-images into the base store. Returns the number of objects
    /// rolled back.
    fn rollback_writes(&self, txn: TxnId, state: &TxnState) -> usize {
        let mut rolled_back = 0;
        for &oid in &state.write_set {
            let mut shard = self.shard(oid).lock();
            let chain = shard.get_mut(&oid).expect("written chain exists");
            let idx = chain
                .records
                .iter()
                .position(|r| r.commit_ts == TS_PENDING && r.writer == txn)
                .expect("pending record owned by aborter");
            let own = chain.records.remove(idx);
            for (field, before) in &own.before {
                // No other live transaction wrote these fields (they
                // would have conflicted), so restoring is safe. The
                // instance may have been deleted concurrently; the undo
                // then has nothing to restore (same contract as
                // `UndoLog::rollback`).
                let _ = self.base.write_unchecked(oid, *field, before.clone());
            }
            if chain.records.is_empty() {
                shard.remove(&oid);
            }
            rolled_back += 1;
        }
        rolled_back
    }

    /// Aborts `txn`: restores every before-image of its pending records
    /// into the base store and removes the records. Returns the number of
    /// objects rolled back.
    pub fn abort(&self, txn: TxnId) -> usize {
        let state =
            self.txn_stripe(txn).lock().remove(&txn).unwrap_or_else(|| {
                panic!("transaction {txn} is not registered with the mvcc heap")
            });
        if let Some(ssi) = &self.ssi {
            ssi.forget(txn);
        }
        let rolled_back = self.rollback_writes(txn, &state);
        // Abort-discarded records count as reclaimed, so created and
        // reclaimed balance once GC has drained the committed history.
        self.stats.add_versions_reclaimed(rolled_back as u64);
        self.epochs.unregister(state.epoch);
        self.stats.bump_aborts();
        rolled_back
    }

    /// Opens a standalone read snapshot of the latest committed state.
    pub fn snapshot(self: &Arc<Self>) -> crate::Snapshot {
        let epoch = self.epochs.register(&self.watermark);
        crate::Snapshot::new(Arc::clone(self), epoch)
    }

    pub(crate) fn release_snapshot(&self, epoch: EpochHandle) {
        self.epochs.unregister(epoch);
    }

    /// The oldest snapshot any reader may still demand. Versions
    /// committed at or before this horizon can never be reconstructed
    /// *past* again.
    ///
    /// The watermark is read **before** the epoch shards are scanned
    /// and bounds the result; see `EpochTable`'s docs for why that makes the
    /// shard-at-a-time scan safe against concurrent registrations.
    pub fn gc_horizon(&self) -> Ts {
        let bound = self.current_ts();
        match self.epochs.min_active() {
            Some(m) => m.min(bound),
            None => bound,
        }
    }

    /// Epoch-based garbage collection: drops every version record whose
    /// commit timestamp is at or below the horizon — no active or future
    /// snapshot can ever need to reconstruct *past* such a record. At
    /// [`IsolationLevel::Serializable`] the same horizon also retires
    /// SSI flag entries and SIREAD registrations (a transaction
    /// committed at or below the horizon cannot be concurrent with any
    /// live or future one). Returns the number of records reclaimed.
    pub fn gc(&self) -> usize {
        let horizon = self.gc_horizon();
        if let Some(ssi) = &self.ssi {
            ssi.purge(horizon);
        }
        let mut reclaimed = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.retain(|_, chain| {
                let before = chain.records.len();
                chain
                    .records
                    .retain(|r| r.commit_ts == TS_PENDING || r.commit_ts > horizon);
                reclaimed += before - chain.records.len();
                !chain.records.is_empty()
            });
        }
        self.stats.add_versions_reclaimed(reclaimed as u64);
        reclaimed
    }

    /// Number of live version records across all chains (diagnostics).
    /// Shards are visited one at a time, so under concurrent commits the
    /// total is approximate — a consistent point-in-time count would
    /// require holding every shard latch at once, which diagnostics must
    /// never do.
    pub fn live_versions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|c| c.records.len()).sum::<usize>())
            .sum()
    }

    /// Number of objects with a live chain (diagnostics; approximate
    /// under concurrency, like [`MvccHeap::live_versions`]).
    pub fn live_chains(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Number of live SIREAD registrations; 0 at
    /// [`IsolationLevel::Snapshot`] (diagnostics; approximate under
    /// concurrency).
    pub fn ssi_siread_entries(&self) -> usize {
        self.ssi.as_ref().map_or(0, |s| s.siread_entries())
    }

    /// Number of transactions the SSI tracker still holds flags for
    /// (live + retained committed); 0 at [`IsolationLevel::Snapshot`]
    /// (diagnostics; approximate under concurrency).
    pub fn ssi_tracked_txns(&self) -> usize {
        self.ssi.as_ref().map_or(0, |s| s.tracked_txns())
    }
}

/// Why an MVCC write failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvccWriteError {
    /// First-updater-wins conflict; the transaction must abort (and may
    /// retry with a fresh snapshot).
    Conflict(MvccConflict),
    /// The base store rejected the write (unknown OID, type mismatch, …).
    Store(StoreError),
}

impl From<StoreError> for MvccWriteError {
    fn from(e: StoreError) -> MvccWriteError {
        MvccWriteError::Store(e)
    }
}

impl std::fmt::Display for MvccWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvccWriteError::Conflict(c) => c.fmt(f),
            MvccWriteError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MvccWriteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::{ClassId, FieldType, Schema, SchemaBuilder};

    fn setup() -> (Arc<Schema>, Arc<MvccHeap>, ClassId, FieldId, FieldId) {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Int);
        let schema = Arc::new(b.finish().unwrap());
        let db = Arc::new(Database::new(Arc::clone(&schema)));
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let y = schema.resolve_field(a, "y").unwrap();
        (schema, Arc::new(MvccHeap::new(db)), a, x, y)
    }

    #[test]
    fn read_your_writes_and_isolation() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(7)).unwrap();
        // Writer sees its own write; a concurrent snapshot does not.
        assert_eq!(heap.read(TxnId(1), o, x), Ok(Value::Int(7)));
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(0)));
        heap.commit(TxnId(1)).unwrap();
        // T2's snapshot predates the commit: still the old value.
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(0)));
        heap.commit(TxnId(2)).unwrap();
        // A fresh snapshot sees the committed value.
        heap.begin(TxnId(3));
        assert_eq!(heap.read(TxnId(3), o, x), Ok(Value::Int(7)));
        heap.abort(TxnId(3));
    }

    #[test]
    fn first_updater_wins_per_field() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(1)).unwrap();
        // Same field: pending conflict.
        let err = heap.write(TxnId(2), o, x, Value::Int(2)).unwrap_err();
        assert_eq!(
            err,
            MvccWriteError::Conflict(MvccConflict {
                oid: o,
                field: x,
                pending_in: Some(TxnId(1)),
            })
        );
        heap.commit(TxnId(1)).unwrap();
        // T2's snapshot is now stale: committed-after-snapshot conflict.
        let err = heap.write(TxnId(2), o, x, Value::Int(2)).unwrap_err();
        assert_eq!(
            err,
            MvccWriteError::Conflict(MvccConflict {
                oid: o,
                field: x,
                pending_in: None,
            })
        );
        heap.abort(TxnId(2));
        assert_eq!(heap.stats.snapshot().write_conflicts, 2);
    }

    #[test]
    fn disjoint_fields_of_one_object_never_conflict() {
        // The multi-version analogue of the paper's P4 fix: writers of
        // disjoint fields of the SAME object both commit, out of install
        // order, and snapshots reconstruct each field independently.
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(10)).unwrap();
        heap.write(TxnId(2), o, y, Value::Int(20)).unwrap();
        let snap = heap.snapshot();
        // Install order is T1 then T2, commit order T2 then T1.
        let ts2 = heap.commit(TxnId(2)).unwrap();
        let mid = heap.snapshot();
        let ts1 = heap.commit(TxnId(1)).unwrap();
        assert!(ts2 < ts1);
        assert_eq!(heap.stats.snapshot().write_conflicts, 0);
        // Pre-commit snapshot: neither write; mid snapshot: only T2's.
        assert_eq!(snap.read(o, x), Ok(Value::Int(0)));
        assert_eq!(snap.read(o, y), Ok(Value::Int(0)));
        assert_eq!(mid.read(o, x), Ok(Value::Int(0)));
        assert_eq!(mid.read(o, y), Ok(Value::Int(20)));
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(10)));
        assert_eq!(heap.base().read(o, y), Ok(Value::Int(20)));
    }

    #[test]
    fn abort_restores_before_images() {
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.write(TxnId(1), o, x, Value::Int(5)).unwrap();
        heap.write(TxnId(1), o, x, Value::Int(6)).unwrap();
        heap.write(TxnId(1), o, y, Value::Int(7)).unwrap();
        assert_eq!(heap.abort(TxnId(1)), 1, "one object rolled back");
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(0)));
        assert_eq!(heap.base().read(o, y), Ok(Value::Int(0)));
        assert_eq!(heap.live_chains(), 0, "aborted chain is removed");
    }

    #[test]
    fn snapshots_are_stable_and_pin_versions() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        // Commit three successive values, snapshotting between commits.
        let mut snaps = Vec::new();
        for (i, v) in [10, 20, 30].into_iter().enumerate() {
            snaps.push(heap.snapshot());
            let t = TxnId(i as u64 + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(v)).unwrap();
            heap.commit(t).unwrap();
        }
        assert_eq!(snaps[0].read(o, x), Ok(Value::Int(0)));
        assert_eq!(snaps[1].read(o, x), Ok(Value::Int(10)));
        assert_eq!(snaps[2].read(o, x), Ok(Value::Int(20)));
        // Nothing at or below the oldest active snapshot can be pruned
        // past it: all three versions stay reachable.
        heap.gc();
        assert_eq!(snaps[0].read(o, x), Ok(Value::Int(0)));
        drop(snaps);
        // With every snapshot released the whole history is reclaimable.
        let reclaimed = heap.gc();
        assert!(reclaimed >= 3, "got {reclaimed}");
        assert_eq!(heap.live_versions(), 0);
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(30)));
    }

    #[test]
    fn commit_is_atomic_across_objects() {
        let (_, heap, a, x, _) = setup();
        let o1 = heap.base().create(a);
        let o2 = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.write(TxnId(1), o1, x, Value::Int(1)).unwrap();
        heap.write(TxnId(1), o2, x, Value::Int(2)).unwrap();
        let snap_before = heap.snapshot();
        let ts = heap.commit(TxnId(1)).unwrap();
        let snap_after = heap.snapshot();
        assert!(snap_after.ts() >= ts);
        // The pre-commit snapshot sees neither write; the post-commit
        // snapshot sees both.
        assert_eq!(snap_before.read(o1, x), Ok(Value::Int(0)));
        assert_eq!(snap_before.read(o2, x), Ok(Value::Int(0)));
        assert_eq!(snap_after.read(o1, x), Ok(Value::Int(1)));
        assert_eq!(snap_after.read(o2, x), Ok(Value::Int(2)));
    }

    #[test]
    fn commit_timestamps_are_monotone_and_unique() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        let mut last = 0;
        for i in 0..10u64 {
            let t = TxnId(i + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(i as i64)).unwrap();
            let ts = heap.commit(t).unwrap();
            assert!(ts > last);
            last = ts;
        }
        assert_eq!(heap.current_ts(), last);
    }

    #[test]
    fn store_errors_pass_through_without_installing_versions() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        let err = heap.write(TxnId(1), o, x, Value::Bool(true)).unwrap_err();
        assert!(matches!(
            err,
            MvccWriteError::Store(StoreError::TypeMismatch { .. })
        ));
        assert_eq!(heap.live_versions(), 0);
        assert_eq!(heap.write_set_len(TxnId(1)), 0);
        heap.abort(TxnId(1));
    }

    #[test]
    fn concurrent_writers_disjoint_objects_all_commit() {
        let (_, heap, a, x, _) = setup();
        let oids: Vec<Oid> = (0..8).map(|_| heap.base().create(a)).collect();
        std::thread::scope(|s| {
            for (i, &oid) in oids.iter().enumerate() {
                let heap = &heap;
                s.spawn(move || {
                    for round in 0..50u64 {
                        let t = TxnId((i as u64) << 32 | round | 1 << 63);
                        heap.begin(t);
                        heap.write(t, oid, x, Value::Int(round as i64)).unwrap();
                        heap.commit(t).unwrap();
                    }
                });
            }
        });
        for &oid in &oids {
            assert_eq!(heap.base().read(oid, x), Ok(Value::Int(49)));
        }
        assert_eq!(heap.stats.snapshot().commits, 400);
        assert_eq!(heap.stats.snapshot().write_conflicts, 0);
        // Every drawn timestamp was published: the watermark drained to
        // the clock and the prefix is contiguous.
        assert_eq!(heap.current_ts(), 400);
    }

    #[test]
    fn watermark_publishes_contiguous_prefix_out_of_order() {
        let w = Watermark::new();
        assert_eq!(w.get(), 0);
        w.publish(2);
        assert_eq!(w.get(), 0, "2 waits for 1");
        w.publish(3);
        assert_eq!(w.get(), 0);
        w.publish(1);
        assert_eq!(w.get(), 3, "1 unlocks the whole prefix");
        w.publish(4);
        assert_eq!(w.get(), 4);
        assert!(w.pending.lock().is_empty());
    }

    #[test]
    fn coarse_baseline_path_still_commits() {
        let mut b = SchemaBuilder::new();
        b.class("a").field("x", FieldType::Int);
        let schema = Arc::new(b.finish().unwrap());
        let db = Arc::new(Database::new(Arc::clone(&schema)));
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let heap = Arc::new(MvccHeap::with_commit_path(
            db,
            IsolationLevel::Snapshot,
            CommitPath::CoarseBaseline,
        ));
        assert_eq!(heap.commit_path(), CommitPath::CoarseBaseline);
        let o = heap.base().create(a);
        for i in 0..5u64 {
            let t = TxnId(i + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(i as i64)).unwrap();
            assert_eq!(heap.commit(t).unwrap(), i + 1);
        }
        assert_eq!(heap.current_ts(), 5);
    }
}
