//! The versioned heap: chains, transaction registry, commit/abort, GC,
//! and — at [`IsolationLevel::Serializable`] — SSI conflict tracking.

use crate::ssi::{SsiTracker, SsiVerdict};
use crate::stats::MvccStats;
use crate::{IsolationLevel, SsiConflict, Ts, TS_PENDING};
use finecc_model::{FieldId, Oid, TxnId, Value};
use finecc_store::{Database, StoreError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

const SHARD_COUNT: usize = 64;

/// How often (in commits) the heap runs an opportunistic GC pass.
const GC_EVERY_COMMITS: u64 = 64;

/// A write was refused because another transaction got to the field
/// first (first-updater-wins at field granularity — two transactions
/// writing *disjoint* fields of one object never conflict, matching the
/// paper's fine-granularity theme).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvccConflict {
    /// The contended object.
    pub oid: Oid,
    /// The contended field.
    pub field: FieldId,
    /// `Some(t)` when a version of the field is pending in live
    /// transaction `t`; `None` when a transaction already *committed* a
    /// newer version of the field than the writer's snapshot.
    pub pending_in: Option<TxnId>,
}

impl std::fmt::Display for MvccConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pending_in {
            Some(t) => write!(
                f,
                "write-write conflict on {}.{}: pending version of {t}",
                self.oid, self.field
            ),
            None => write!(
                f,
                "write-write conflict on {}.{}: committed after this snapshot",
                self.oid, self.field
            ),
        }
    }
}

impl std::error::Error for MvccConflict {}

/// What [`MvccHeap::write`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// A fresh pending version record was installed on the chain.
    NewVersion,
    /// The transaction already owned the chain head; the before-image set
    /// was extended in place.
    MergedVersion,
}

/// One version record: the before-images of the fields its writer
/// modified, i.e. everything needed to roll the object *back* past that
/// writer.
#[derive(Debug)]
struct VersionRecord {
    writer: TxnId,
    /// Commit timestamp; [`TS_PENDING`] until the writer commits.
    commit_ts: Ts,
    /// `(field, value before this writer's first write of the field)`.
    before: Vec<(FieldId, Value)>,
}

impl VersionRecord {
    fn before_of(&self, field: FieldId) -> Option<&Value> {
        self.before
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, v)| v)
    }
}

/// A per-OID chain, ordered by *installation*, newest record first.
/// Invariants:
///
/// * each transaction owns at most one record per chain (merged on
///   repeated writes);
/// * two records that touch a common field are ordered consistently by
///   install position *and* commit timestamp (field-level
///   first-updater-wins forbids concurrently pending writers of one
///   field), so newest-first before-image application per field is
///   well-defined — records touching disjoint fields may commit out of
///   install order, which is why readers walk the whole chain;
/// * the base store holds every field's newest (possibly pending) value.
#[derive(Debug, Default)]
struct Chain {
    records: Vec<VersionRecord>,
}

#[derive(Default)]
struct TxnState {
    snapshot_ts: Ts,
    /// Objects this transaction installed pending versions on.
    write_set: HashSet<Oid>,
}

/// The multi-version heap over a base [`Database`].
pub struct MvccHeap {
    base: Arc<Database>,
    shards: Box<[Mutex<HashMap<Oid, Chain>>]>,
    txns: Mutex<HashMap<TxnId, TxnState>>,
    /// Snapshot registry: `ts → number of holders` (transactions and
    /// standalone snapshots). The minimum key is the GC horizon.
    epochs: Mutex<BTreeMap<Ts, usize>>,
    /// Serializes commits: timestamp draw + chain flips + publication
    /// happen atomically with respect to new snapshots.
    commit_lock: Mutex<Ts>,
    /// The latest *fully published* commit timestamp; the snapshot source.
    last_committed: std::sync::atomic::AtomicU64,
    commits_since_gc: std::sync::atomic::AtomicU64,
    /// The rw-antidependency tracker; `Some` iff the heap runs at
    /// [`IsolationLevel::Serializable`].
    ssi: Option<SsiTracker>,
    /// Live counters.
    pub stats: MvccStats,
}

impl MvccHeap {
    /// Creates a heap versioning `base` at the default
    /// [`IsolationLevel::Snapshot`].
    pub fn new(base: Arc<Database>) -> MvccHeap {
        MvccHeap::with_isolation(base, IsolationLevel::Snapshot)
    }

    /// Creates a heap versioning `base` at the given isolation level.
    pub fn with_isolation(base: Arc<Database>, isolation: IsolationLevel) -> MvccHeap {
        let shards = (0..SHARD_COUNT)
            .map(|_| Mutex::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MvccHeap {
            base,
            shards,
            txns: Mutex::new(HashMap::new()),
            epochs: Mutex::new(BTreeMap::new()),
            commit_lock: Mutex::new(0),
            last_committed: std::sync::atomic::AtomicU64::new(0),
            commits_since_gc: std::sync::atomic::AtomicU64::new(0),
            ssi: match isolation {
                IsolationLevel::Snapshot => None,
                IsolationLevel::Serializable => Some(SsiTracker::new()),
            },
            stats: MvccStats::default(),
        }
    }

    /// The base store (authoritative for the newest values).
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// The heap's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        if self.ssi.is_some() {
            IsolationLevel::Serializable
        } else {
            IsolationLevel::Snapshot
        }
    }

    #[inline]
    fn shard(&self, oid: Oid) -> &Mutex<HashMap<Oid, Chain>> {
        &self.shards[(oid.raw() as usize) % SHARD_COUNT]
    }

    /// The latest fully published commit timestamp.
    pub fn current_ts(&self) -> Ts {
        self.last_committed
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Atomically reads the current committed timestamp and registers it
    /// as a live epoch. Reading under the epochs lock closes the race
    /// against a concurrent [`MvccHeap::gc`] (which computes its horizon
    /// under the same lock): a snapshot is either visible to the GC or
    /// taken after it, never in between — in the latter case its
    /// timestamp is at or above the horizon, so the versions it can
    /// demand were not reclaimable.
    fn register_snapshot_epoch(&self) -> Ts {
        let mut epochs = self.epochs.lock();
        let ts = self.current_ts();
        *epochs.entry(ts).or_insert(0) += 1;
        ts
    }

    fn unregister_epoch(&self, ts: Ts) {
        let mut e = self.epochs.lock();
        match e.get_mut(&ts) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                e.remove(&ts);
            }
            None => debug_assert!(false, "unregistering unknown epoch {ts}"),
        }
    }

    /// Registers a transaction, assigning it a snapshot of the latest
    /// committed state. Returns the snapshot timestamp.
    pub fn begin(&self, txn: TxnId) -> Ts {
        let ts = self.register_snapshot_epoch();
        let prev = self.txns.lock().insert(
            txn,
            TxnState {
                snapshot_ts: ts,
                write_set: HashSet::new(),
            },
        );
        debug_assert!(prev.is_none(), "transaction {txn} already registered");
        if let Some(ssi) = &self.ssi {
            ssi.register(txn);
        }
        self.stats.bump_begins();
        ts
    }

    /// The registered snapshot timestamp of `txn`.
    pub fn snapshot_ts(&self, txn: TxnId) -> Option<Ts> {
        self.txns.lock().get(&txn).map(|s| s.snapshot_ts)
    }

    /// The number of objects `txn` has written so far.
    pub fn write_set_len(&self, txn: TxnId) -> usize {
        self.txns.lock().get(&txn).map_or(0, |s| s.write_set.len())
    }

    /// Reconstructs `field` of `oid` as of snapshot `ts`, seeing the
    /// pending writes of `as_txn` (pass `None` for a pure snapshot read).
    ///
    /// Takes **no logical locks**: reconstruction walks the version chain
    /// under the chain shard's short physical mutex only. At
    /// [`IsolationLevel::Serializable`] a transactional read additionally
    /// registers a SIREAD entry (before the walk) and records an outgoing
    /// rw-antidependency for every invisible overwrite of the field it
    /// steps past — still without blocking anyone.
    pub fn read_as(
        &self,
        ts: Ts,
        as_txn: Option<TxnId>,
        oid: Oid,
        field: FieldId,
    ) -> Result<Value, StoreError> {
        let ssi = match (&self.ssi, as_txn) {
            (Some(ssi), Some(txn)) => {
                // Register BEFORE walking the chain: a concurrent writer
                // either installed its record already (the walk sees it
                // and marks the edge here) or will scan the registry
                // after installing (and marks it there).
                ssi.record_read(txn, oid, field);
                Some((ssi, txn))
            }
            _ => None,
        };
        let mut overwriters: Vec<TxnId> = Vec::new();
        let shard = self.shard(oid).lock();
        let mut value = self.base.read(oid, field)?;
        if let Some(chain) = shard.get(&oid) {
            // Walk the whole chain (records touching disjoint fields may
            // commit out of install order, so there is no early stop):
            // revert every version that is invisible to this snapshot.
            // Records sharing a field are install- and timestamp-ordered,
            // so newest-first application lands on the value as of `ts`.
            for rec in &chain.records {
                let visible = if rec.commit_ts == TS_PENDING {
                    as_txn == Some(rec.writer)
                } else {
                    rec.commit_ts <= ts
                };
                if !visible {
                    if let Some(before) = rec.before_of(field) {
                        value = before.clone();
                        // The record overwrote the value this snapshot
                        // reads: an outgoing rw edge to its writer.
                        if ssi.is_some() {
                            overwriters.push(rec.writer);
                        }
                    }
                }
            }
        }
        drop(shard);
        if let Some((ssi, txn)) = ssi {
            let mut edges = 0;
            for writer in overwriters {
                edges += ssi.read_edge(txn, writer);
            }
            if edges > 0 {
                self.stats.add_ssi_edges(edges);
            }
        }
        self.stats.bump_snapshot_reads();
        Ok(value)
    }

    /// Snapshot read through a registered transaction (sees its own
    /// pending writes).
    pub fn read(&self, txn: TxnId, oid: Oid, field: FieldId) -> Result<Value, StoreError> {
        let ts = self
            .snapshot_ts(txn)
            .unwrap_or_else(|| panic!("transaction {txn} is not registered with the mvcc heap"));
        self.read_as(ts, Some(txn), oid, field)
    }

    /// Writes `field` of `oid` in transaction `txn`: first-updater-wins
    /// conflict check, pending-version installation, then write-through
    /// to the base store. Returns what happened to the chain.
    pub fn write(
        &self,
        txn: TxnId,
        oid: Oid,
        field: FieldId,
        value: Value,
    ) -> Result<WriteOutcome, MvccWriteError> {
        let snapshot_ts = self
            .snapshot_ts(txn)
            .unwrap_or_else(|| panic!("transaction {txn} is not registered with the mvcc heap"));
        let mut shard = self.shard(oid).lock();
        let chain = shard.entry(oid).or_default();

        // First-updater-wins admission control, at field granularity:
        // another live transaction with a pending version of this field,
        // or a version of it committed after this snapshot, wins.
        for rec in &chain.records {
            if rec.writer == txn || rec.before_of(field).is_none() {
                continue;
            }
            if rec.commit_ts == TS_PENDING {
                self.stats.bump_write_conflicts();
                return Err(MvccWriteError::Conflict(MvccConflict {
                    oid,
                    field,
                    pending_in: Some(rec.writer),
                }));
            }
            if rec.commit_ts > snapshot_ts {
                self.stats.bump_write_conflicts();
                return Err(MvccWriteError::Conflict(MvccConflict {
                    oid,
                    field,
                    pending_in: None,
                }));
            }
        }

        // Type/domain checks and the before-image come from the base
        // store; `write` returns the previous value.
        let before = self.base.write(oid, field, value)?;
        let own = chain
            .records
            .iter_mut()
            .find(|r| r.commit_ts == TS_PENDING && r.writer == txn);
        let outcome = if let Some(own) = own {
            if own.before_of(field).is_none() {
                own.before.push((field, before));
            }
            WriteOutcome::MergedVersion
        } else {
            chain.records.insert(
                0,
                VersionRecord {
                    writer: txn,
                    commit_ts: TS_PENDING,
                    before: vec![(field, before)],
                },
            );
            self.stats.bump_versions_created();
            self.txns
                .lock()
                .get_mut(&txn)
                .expect("registered above")
                .write_set
                .insert(oid);
            WriteOutcome::NewVersion
        };
        self.stats.sample_chain_len(chain.records.len() as u64);
        drop(shard);
        // SSI: scan SIREAD entries AFTER the pending version is
        // installed (see `read_as` for why the order closes the race)
        // and record an incoming rw edge per concurrent reader.
        if let Some(ssi) = &self.ssi {
            let edges = ssi.write_edges(txn, snapshot_ts, oid, field);
            if edges > 0 {
                self.stats.add_ssi_edges(edges);
            }
        }
        Ok(outcome)
    }

    /// Commits `txn`: draws the next commit timestamp, flips every
    /// pending record of the transaction to it, then publishes the
    /// timestamp for new snapshots. Returns the commit timestamp; a
    /// **read-only** transaction serializes at (and returns) its
    /// snapshot timestamp without ever touching the global commit lock,
    /// keeping the reader path coordination-free end to end.
    ///
    /// At [`IsolationLevel::Snapshot`] commit is infallible by
    /// construction — all conflicts were detected at write time. At
    /// [`IsolationLevel::Serializable`] the commit additionally runs
    /// dangerous-structure validation; on failure the transaction is
    /// fully rolled back (as by [`MvccHeap::abort`]) and the
    /// [`SsiConflict`] is returned — the caller retries on a fresh
    /// snapshot, like a first-updater-wins victim.
    pub fn commit(&self, txn: TxnId) -> Result<Ts, SsiConflict> {
        let state =
            self.txns.lock().remove(&txn).unwrap_or_else(|| {
                panic!("transaction {txn} is not registered with the mvcc heap")
            });

        if state.write_set.is_empty() {
            // Read-only transactions still validate: their reads can
            // complete a dangerous structure around a committed pivot
            // (the SI read-only anomaly, Fekete et al. 2004).
            if let Some(ssi) = &self.ssi {
                if let SsiVerdict::Abort(c) = ssi.validate_and_commit(txn, state.snapshot_ts) {
                    self.unregister_epoch(state.snapshot_ts);
                    self.stats.bump_ssi_aborts();
                    self.stats.bump_aborts();
                    return Err(c);
                }
            }
            self.unregister_epoch(state.snapshot_ts);
            self.stats.bump_commits();
            return Ok(state.snapshot_ts);
        }

        let mut last = self.commit_lock.lock();
        let commit_ts = *last + 1;
        if let Some(ssi) = &self.ssi {
            // Validation and commit publication are one atomic step in
            // the tracker; the candidate timestamp is only made durable
            // below, after every chain is flipped.
            if let SsiVerdict::Abort(c) = ssi.validate_and_commit(txn, commit_ts) {
                drop(last); // timestamp never drawn
                let rolled_back = self.rollback_writes(txn, &state);
                self.stats.add_versions_reclaimed(rolled_back as u64);
                self.unregister_epoch(state.snapshot_ts);
                self.stats.bump_ssi_aborts();
                self.stats.bump_aborts();
                return Err(c);
            }
        }
        for &oid in &state.write_set {
            let mut shard = self.shard(oid).lock();
            let chain = shard.get_mut(&oid).expect("written chain exists");
            let own = chain
                .records
                .iter_mut()
                .find(|r| r.commit_ts == TS_PENDING && r.writer == txn)
                .expect("pending record owned by committer");
            own.commit_ts = commit_ts;
        }
        *last = commit_ts;
        // Publish only after every chain is flipped: a snapshot taken at
        // `commit_ts` must observe all of the transaction's writes.
        self.last_committed
            .store(commit_ts, std::sync::atomic::Ordering::Release);
        drop(last);

        self.unregister_epoch(state.snapshot_ts);
        self.stats.bump_commits();
        let n = self
            .commits_since_gc
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        if n.is_multiple_of(GC_EVERY_COMMITS) {
            self.gc();
        }
        Ok(commit_ts)
    }

    /// Removes every pending record `txn` owns and restores its
    /// before-images into the base store. Returns the number of objects
    /// rolled back.
    fn rollback_writes(&self, txn: TxnId, state: &TxnState) -> usize {
        let mut rolled_back = 0;
        for &oid in &state.write_set {
            let mut shard = self.shard(oid).lock();
            let chain = shard.get_mut(&oid).expect("written chain exists");
            let idx = chain
                .records
                .iter()
                .position(|r| r.commit_ts == TS_PENDING && r.writer == txn)
                .expect("pending record owned by aborter");
            let own = chain.records.remove(idx);
            for (field, before) in &own.before {
                // No other live transaction wrote these fields (they
                // would have conflicted), so restoring is safe. The
                // instance may have been deleted concurrently; the undo
                // then has nothing to restore (same contract as
                // `UndoLog::rollback`).
                let _ = self.base.write_unchecked(oid, *field, before.clone());
            }
            if chain.records.is_empty() {
                shard.remove(&oid);
            }
            rolled_back += 1;
        }
        rolled_back
    }

    /// Aborts `txn`: restores every before-image of its pending records
    /// into the base store and removes the records. Returns the number of
    /// objects rolled back.
    pub fn abort(&self, txn: TxnId) -> usize {
        let state =
            self.txns.lock().remove(&txn).unwrap_or_else(|| {
                panic!("transaction {txn} is not registered with the mvcc heap")
            });
        if let Some(ssi) = &self.ssi {
            ssi.forget(txn);
        }
        let rolled_back = self.rollback_writes(txn, &state);
        // Abort-discarded records count as reclaimed, so created and
        // reclaimed balance once GC has drained the committed history.
        self.stats.add_versions_reclaimed(rolled_back as u64);
        self.unregister_epoch(state.snapshot_ts);
        self.stats.bump_aborts();
        rolled_back
    }

    /// Opens a standalone read snapshot of the latest committed state.
    pub fn snapshot(self: &Arc<Self>) -> crate::Snapshot {
        let ts = self.register_snapshot_epoch();
        crate::Snapshot::new(Arc::clone(self), ts)
    }

    pub(crate) fn release_snapshot(&self, ts: Ts) {
        self.unregister_epoch(ts);
    }

    /// The oldest snapshot any reader may still demand. Versions
    /// committed at or before this horizon can never be reconstructed
    /// *past* again.
    pub fn gc_horizon(&self) -> Ts {
        self.epochs
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.current_ts())
    }

    /// Epoch-based garbage collection: drops every version record whose
    /// commit timestamp is at or below the horizon — no active or future
    /// snapshot can ever need to reconstruct *past* such a record. At
    /// [`IsolationLevel::Serializable`] the same horizon also retires
    /// SSI flag entries and SIREAD registrations (a transaction
    /// committed at or below the horizon cannot be concurrent with any
    /// live or future one). Returns the number of records reclaimed.
    pub fn gc(&self) -> usize {
        let horizon = self.gc_horizon();
        if let Some(ssi) = &self.ssi {
            ssi.purge(horizon);
        }
        let mut reclaimed = 0;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.retain(|_, chain| {
                let before = chain.records.len();
                chain
                    .records
                    .retain(|r| r.commit_ts == TS_PENDING || r.commit_ts > horizon);
                reclaimed += before - chain.records.len();
                !chain.records.is_empty()
            });
        }
        self.stats.add_versions_reclaimed(reclaimed as u64);
        reclaimed
    }

    /// Number of live version records across all chains (diagnostics).
    pub fn live_versions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|c| c.records.len()).sum::<usize>())
            .sum()
    }

    /// Number of objects with a live chain (diagnostics).
    pub fn live_chains(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Number of live SIREAD registrations; 0 at
    /// [`IsolationLevel::Snapshot`] (diagnostics).
    pub fn ssi_siread_entries(&self) -> usize {
        self.ssi.as_ref().map_or(0, |s| s.siread_entries())
    }

    /// Number of transactions the SSI tracker still holds flags for
    /// (live + retained committed); 0 at [`IsolationLevel::Snapshot`]
    /// (diagnostics).
    pub fn ssi_tracked_txns(&self) -> usize {
        self.ssi.as_ref().map_or(0, |s| s.tracked_txns())
    }
}

/// Why an MVCC write failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MvccWriteError {
    /// First-updater-wins conflict; the transaction must abort (and may
    /// retry with a fresh snapshot).
    Conflict(MvccConflict),
    /// The base store rejected the write (unknown OID, type mismatch, …).
    Store(StoreError),
}

impl From<StoreError> for MvccWriteError {
    fn from(e: StoreError) -> MvccWriteError {
        MvccWriteError::Store(e)
    }
}

impl std::fmt::Display for MvccWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MvccWriteError::Conflict(c) => c.fmt(f),
            MvccWriteError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MvccWriteError {}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::{ClassId, FieldType, Schema, SchemaBuilder};

    fn setup() -> (Arc<Schema>, Arc<MvccHeap>, ClassId, FieldId, FieldId) {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Int);
        let schema = Arc::new(b.finish().unwrap());
        let db = Arc::new(Database::new(Arc::clone(&schema)));
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let y = schema.resolve_field(a, "y").unwrap();
        (schema, Arc::new(MvccHeap::new(db)), a, x, y)
    }

    #[test]
    fn read_your_writes_and_isolation() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(7)).unwrap();
        // Writer sees its own write; a concurrent snapshot does not.
        assert_eq!(heap.read(TxnId(1), o, x), Ok(Value::Int(7)));
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(0)));
        heap.commit(TxnId(1)).unwrap();
        // T2's snapshot predates the commit: still the old value.
        assert_eq!(heap.read(TxnId(2), o, x), Ok(Value::Int(0)));
        heap.commit(TxnId(2)).unwrap();
        // A fresh snapshot sees the committed value.
        heap.begin(TxnId(3));
        assert_eq!(heap.read(TxnId(3), o, x), Ok(Value::Int(7)));
        heap.abort(TxnId(3));
    }

    #[test]
    fn first_updater_wins_per_field() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(1)).unwrap();
        // Same field: pending conflict.
        let err = heap.write(TxnId(2), o, x, Value::Int(2)).unwrap_err();
        assert_eq!(
            err,
            MvccWriteError::Conflict(MvccConflict {
                oid: o,
                field: x,
                pending_in: Some(TxnId(1)),
            })
        );
        heap.commit(TxnId(1)).unwrap();
        // T2's snapshot is now stale: committed-after-snapshot conflict.
        let err = heap.write(TxnId(2), o, x, Value::Int(2)).unwrap_err();
        assert_eq!(
            err,
            MvccWriteError::Conflict(MvccConflict {
                oid: o,
                field: x,
                pending_in: None,
            })
        );
        heap.abort(TxnId(2));
        assert_eq!(heap.stats.snapshot().write_conflicts, 2);
    }

    #[test]
    fn disjoint_fields_of_one_object_never_conflict() {
        // The multi-version analogue of the paper's P4 fix: writers of
        // disjoint fields of the SAME object both commit, out of install
        // order, and snapshots reconstruct each field independently.
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.begin(TxnId(2));
        heap.write(TxnId(1), o, x, Value::Int(10)).unwrap();
        heap.write(TxnId(2), o, y, Value::Int(20)).unwrap();
        let snap = heap.snapshot();
        // Install order is T1 then T2, commit order T2 then T1.
        let ts2 = heap.commit(TxnId(2)).unwrap();
        let mid = heap.snapshot();
        let ts1 = heap.commit(TxnId(1)).unwrap();
        assert!(ts2 < ts1);
        assert_eq!(heap.stats.snapshot().write_conflicts, 0);
        // Pre-commit snapshot: neither write; mid snapshot: only T2's.
        assert_eq!(snap.read(o, x), Ok(Value::Int(0)));
        assert_eq!(snap.read(o, y), Ok(Value::Int(0)));
        assert_eq!(mid.read(o, x), Ok(Value::Int(0)));
        assert_eq!(mid.read(o, y), Ok(Value::Int(20)));
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(10)));
        assert_eq!(heap.base().read(o, y), Ok(Value::Int(20)));
    }

    #[test]
    fn abort_restores_before_images() {
        let (_, heap, a, x, y) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.write(TxnId(1), o, x, Value::Int(5)).unwrap();
        heap.write(TxnId(1), o, x, Value::Int(6)).unwrap();
        heap.write(TxnId(1), o, y, Value::Int(7)).unwrap();
        assert_eq!(heap.abort(TxnId(1)), 1, "one object rolled back");
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(0)));
        assert_eq!(heap.base().read(o, y), Ok(Value::Int(0)));
        assert_eq!(heap.live_chains(), 0, "aborted chain is removed");
    }

    #[test]
    fn snapshots_are_stable_and_pin_versions() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        // Commit three successive values, snapshotting between commits.
        let mut snaps = Vec::new();
        for (i, v) in [10, 20, 30].into_iter().enumerate() {
            snaps.push(heap.snapshot());
            let t = TxnId(i as u64 + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(v)).unwrap();
            heap.commit(t).unwrap();
        }
        assert_eq!(snaps[0].read(o, x), Ok(Value::Int(0)));
        assert_eq!(snaps[1].read(o, x), Ok(Value::Int(10)));
        assert_eq!(snaps[2].read(o, x), Ok(Value::Int(20)));
        // Nothing at or below the oldest active snapshot can be pruned
        // past it: all three versions stay reachable.
        heap.gc();
        assert_eq!(snaps[0].read(o, x), Ok(Value::Int(0)));
        drop(snaps);
        // With every snapshot released the whole history is reclaimable.
        let reclaimed = heap.gc();
        assert!(reclaimed >= 3, "got {reclaimed}");
        assert_eq!(heap.live_versions(), 0);
        assert_eq!(heap.base().read(o, x), Ok(Value::Int(30)));
    }

    #[test]
    fn commit_is_atomic_across_objects() {
        let (_, heap, a, x, _) = setup();
        let o1 = heap.base().create(a);
        let o2 = heap.base().create(a);
        heap.begin(TxnId(1));
        heap.write(TxnId(1), o1, x, Value::Int(1)).unwrap();
        heap.write(TxnId(1), o2, x, Value::Int(2)).unwrap();
        let snap_before = heap.snapshot();
        let ts = heap.commit(TxnId(1)).unwrap();
        let snap_after = heap.snapshot();
        assert!(snap_after.ts() >= ts);
        // The pre-commit snapshot sees neither write; the post-commit
        // snapshot sees both.
        assert_eq!(snap_before.read(o1, x), Ok(Value::Int(0)));
        assert_eq!(snap_before.read(o2, x), Ok(Value::Int(0)));
        assert_eq!(snap_after.read(o1, x), Ok(Value::Int(1)));
        assert_eq!(snap_after.read(o2, x), Ok(Value::Int(2)));
    }

    #[test]
    fn commit_timestamps_are_monotone_and_unique() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        let mut last = 0;
        for i in 0..10u64 {
            let t = TxnId(i + 1);
            heap.begin(t);
            heap.write(t, o, x, Value::Int(i as i64)).unwrap();
            let ts = heap.commit(t).unwrap();
            assert!(ts > last);
            last = ts;
        }
        assert_eq!(heap.current_ts(), last);
    }

    #[test]
    fn store_errors_pass_through_without_installing_versions() {
        let (_, heap, a, x, _) = setup();
        let o = heap.base().create(a);
        heap.begin(TxnId(1));
        let err = heap.write(TxnId(1), o, x, Value::Bool(true)).unwrap_err();
        assert!(matches!(
            err,
            MvccWriteError::Store(StoreError::TypeMismatch { .. })
        ));
        assert_eq!(heap.live_versions(), 0);
        assert_eq!(heap.write_set_len(TxnId(1)), 0);
        heap.abort(TxnId(1));
    }

    #[test]
    fn concurrent_writers_disjoint_objects_all_commit() {
        let (_, heap, a, x, _) = setup();
        let oids: Vec<Oid> = (0..8).map(|_| heap.base().create(a)).collect();
        std::thread::scope(|s| {
            for (i, &oid) in oids.iter().enumerate() {
                let heap = &heap;
                s.spawn(move || {
                    for round in 0..50u64 {
                        let t = TxnId((i as u64) << 32 | round | 1 << 63);
                        heap.begin(t);
                        heap.write(t, oid, x, Value::Int(round as i64)).unwrap();
                        heap.commit(t).unwrap();
                    }
                });
            }
        });
        for &oid in &oids {
            assert_eq!(heap.base().read(oid, x), Ok(Value::Int(49)));
        }
        assert_eq!(heap.stats.snapshot().commits, 400);
        assert_eq!(heap.stats.snapshot().write_conflicts, 0);
    }
}
