//! The ordered publication watermark, as a **lock-free ring** of
//! in-flight commit slots.
//!
//! Committers draw timestamps from an atomic clock and flip their
//! chains without any global lock, so transaction `T+1` can finish
//! flipping before `T` does. Publishing `T+1` at that moment would let
//! a snapshot at `T+1` miss `T`'s writes. The watermark therefore
//! tracks completed-but-unpublished timestamps and advances `published`
//! (the snapshot source) only across a **contiguous** prefix: every
//! commit at or below the watermark has fully flipped (or was published
//! as a *skip* by an SSI-refused commit — nothing was flipped at it, so
//! the prefix stays dense either way).
//!
//! Earlier revisions guarded the pending set with a mutex — tiny, but
//! every writer commit passed through it. This implementation has **no
//! mutex**:
//!
//! * **Slots.** A fixed ring of `capacity` atomic slots; timestamp `ts`
//!   completes into slot `ts % capacity`. A slot holding `EMPTY` (0) is
//!   free; timestamps start at 1, so the sentinel never collides.
//! * **Claim.** The publisher of `ts` CAS-claims its slot
//!   (`EMPTY → ts`). The claim is attempted only once
//!   `published ≥ ts − capacity`, i.e. once every earlier occupant of
//!   the slot has been published — claiming on emptiness alone would
//!   let `ts` steal the slot from the still-unpublished `ts −
//!   capacity` and deadlock the prefix. Unpublished timestamps are
//!   bounded by the number of in-flight commits (each committer
//!   publishes its own draw before finishing), so with `capacity` far
//!   above any plausible thread count the wait never triggers; the
//!   **overflow fallback** is to spin-then-yield until the slot frees,
//!   counted per publish in the heap's `watermark_waits` statistic.
//! * **Advance.** After claiming, every publisher helps advance: while
//!   slot `published + 1` holds its timestamp, CAS `published` forward
//!   and clear the slot (in that order — clearing first would leave the
//!   prefix undetectable). Whoever wins the CAS clears; losers re-read
//!   and keep helping, so the watermark drains even if the original
//!   publisher of some timestamp stalls right after its claim. ABA is
//!   impossible: slot values are unique timestamps and every CAS
//!   compares against an exact expected value.
//!
//! All operations are `SeqCst`; the slot claim → advance → snapshot
//! read chain is the happens-before edge that carries a committer's
//! chain flips (and its skip decisions) to every snapshot reader at or
//! above its timestamp.

use crate::Ts;
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};

/// Ring capacity of [`Watermark::new`]: bounds *in-flight* commits
/// (committers between timestamp draw and publication), not total
/// commits — 1024 is far above any plausible committer thread count.
pub(crate) const WATERMARK_CAPACITY: usize = 1024;

const EMPTY: u64 = 0;

/// The ordered publication watermark (see the module docs).
#[derive(Debug)]
pub(crate) struct Watermark {
    /// The highest timestamp `t` such that every commit in `1..=t` has
    /// fully flipped (or was skipped). This is `last_committed` — the
    /// snapshot source.
    published: AtomicU64,
    /// In-flight completion slots; `slots[ts % capacity]` holds `ts`
    /// from its completion until the prefix advances past it.
    slots: Box<[AtomicU64]>,
    /// How often publishers had to wait for a slot (ring overflow:
    /// more than `capacity` commits in flight).
    waits: AtomicU64,
}

impl Watermark {
    pub(crate) fn new() -> Watermark {
        Watermark::with_capacity(WATERMARK_CAPACITY)
    }

    /// A watermark whose published prefix starts at `base` instead of
    /// 0 — the recovery path: every timestamp at or below the restored
    /// clock was committed (or skip-filled) by the previous
    /// incarnation, so the prefix resumes dense at `base` and the first
    /// post-recovery commit publishes `base + 1` with no hole to wait
    /// on.
    pub(crate) fn with_base(base: Ts) -> Watermark {
        let w = Watermark::new();
        w.published.store(base, SeqCst);
        w
    }

    /// A watermark with a custom ring capacity — tests use tiny rings
    /// to exercise wraparound and the overflow fallback.
    pub(crate) fn with_capacity(capacity: usize) -> Watermark {
        assert!(capacity >= 2, "ring needs room for two in-flight commits");
        Watermark {
            published: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| AtomicU64::new(EMPTY))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            waits: AtomicU64::new(0),
        }
    }

    /// The latest fully published commit timestamp.
    #[inline]
    pub(crate) fn get(&self) -> Ts {
        self.published.load(SeqCst)
    }

    /// Publishers that hit the overflow fallback (diagnostics).
    pub(crate) fn waits(&self) -> u64 {
        self.waits.load(SeqCst)
    }

    /// Spins until the contiguous prefix reaches `ts`. Used by the
    /// commit path so that a returned commit is *visible*: the
    /// committer's own next transaction (or any other session) is
    /// guaranteed a snapshot at or above it. The wait is bounded by the
    /// in-flight commits below `ts` finishing their own publications —
    /// every drawn timestamp is published (as a commit or a skip)
    /// before its committer returns, so the prefix always drains.
    pub(crate) fn wait_published(&self, ts: Ts) {
        let mut spins = 0u32;
        while self.get() < ts {
            // Under a chaos scheduled session the spinner must hand
            // the token back, or the parked owner of an earlier
            // unpublished timestamp never runs (no-op otherwise).
            finecc_chaos::yield_point(finecc_chaos::Site::WatermarkWait);
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Marks `ts` complete (flipped, or skipped by an SSI-refused
    /// commit) and advances the contiguous published prefix as far as
    /// it now reaches. Lock-free; waits only in the documented ring-
    /// overflow fallback. Returns `true` if this call had to wait.
    pub(crate) fn publish(&self, ts: Ts) -> bool {
        debug_assert!(ts != EMPTY, "timestamps start at 1");
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(ts % cap) as usize];
        // Claim the slot. The occupancy precondition (`published ≥ ts −
        // capacity`) and the CAS are re-checked together: the slot may
        // stay non-empty for a moment after the precondition holds
        // (advancers clear just *after* moving `published`).
        let mut waited = false;
        let mut spins = 0u32;
        while self.published.load(SeqCst) + cap < ts
            || slot.compare_exchange(EMPTY, ts, SeqCst, SeqCst).is_err()
        {
            // Same token hand-back as `wait_published`: the overflow
            // fallback spins on other publishers making progress.
            finecc_chaos::yield_point(finecc_chaos::Site::WatermarkPublish);
            if !waited {
                waited = true;
                self.waits.fetch_add(1, SeqCst);
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Help advance the contiguous prefix. Every publisher drives
        // this loop, so the watermark drains without a dedicated owner.
        loop {
            let head = self.published.load(SeqCst);
            let next = head + 1;
            let next_slot = &self.slots[(next % cap) as usize];
            if next_slot.load(SeqCst) != next {
                break; // prefix ends (or another helper already advanced)
            }
            if self
                .published
                .compare_exchange(head, next, SeqCst, SeqCst)
                .is_ok()
            {
                // Only the winning advancer clears — after the advance,
                // so the contiguity check above never misses `next`.
                let cleared = next_slot.compare_exchange(next, EMPTY, SeqCst, SeqCst);
                debug_assert!(cleared.is_ok(), "slot {next} cleared by non-winner");
            }
            // On CAS failure another helper advanced; loop and re-read.
        }
        waited
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn publishes_contiguous_prefix_out_of_order() {
        let w = Watermark::new();
        assert_eq!(w.get(), 0);
        w.publish(2);
        assert_eq!(w.get(), 0, "2 waits for 1");
        w.publish(3);
        assert_eq!(w.get(), 0);
        w.publish(1);
        assert_eq!(w.get(), 3, "1 unlocks the whole prefix");
        w.publish(4);
        assert_eq!(w.get(), 4);
        assert!(w.slots.iter().all(|s| s.load(SeqCst) == EMPTY));
        assert_eq!(w.waits(), 0);
    }

    #[test]
    fn with_base_resumes_the_prefix() {
        let w = Watermark::with_base(41);
        assert_eq!(w.get(), 41);
        w.publish(43);
        assert_eq!(w.get(), 41, "43 waits for 42");
        w.publish(42);
        assert_eq!(w.get(), 43, "prefix resumes dense above the base");
        assert_eq!(w.waits(), 0);
    }

    #[test]
    fn skip_fill_keeps_the_prefix_dense() {
        // A timestamp drawn by an SSI-refused commit is published
        // through the same path with nothing flipped at it: the prefix
        // must advance straight across the hole.
        let w = Watermark::new();
        w.publish(1);
        w.publish(3); // skip-filled later by 2
        assert_eq!(w.get(), 1);
        w.publish(2); // the "skip": published, nothing flipped
        assert_eq!(w.get(), 3, "skip publication closes the hole");
    }

    #[test]
    fn ring_wraparound_reuses_slots() {
        // Capacity 4: timestamps 1..=20 lap the ring five times, in
        // order and with a small out-of-order window inside each lap.
        let w = Watermark::with_capacity(4);
        for base in (0..20).step_by(4) {
            // Publish each lap shuffled: base+2, base+1, base+3, base+4.
            for off in [2u64, 1, 3, 4] {
                w.publish(base + off);
            }
            assert_eq!(w.get(), base + 4, "lap drained");
        }
        assert_eq!(w.get(), 20);
        assert_eq!(w.waits(), 0, "in-flight never exceeded the capacity");
    }

    #[test]
    fn slot_collision_waits_for_the_earlier_occupant() {
        // Capacity 2: ts 3 maps to the same slot as ts 1. While 1 is
        // unpublished, 3's claim must take the overflow fallback and
        // wait — stealing the slot would deadlock the prefix.
        let w = Arc::new(Watermark::with_capacity(2));
        std::thread::scope(|s| {
            let w2 = Arc::clone(&w);
            let t = s.spawn(move || {
                w2.publish(3); // must wait: published(0) + 2 < 3
            });
            // Let the publisher hit the fallback, then release it.
            while w.waits() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(w.get(), 0, "3 has not been published yet");
            w.publish(1);
            w.publish(2);
            t.join().unwrap();
        });
        assert_eq!(w.get(), 3);
        assert!(w.waits() >= 1, "the collision was counted");
    }

    #[test]
    fn concurrent_publishers_drain_tight() {
        // 8 threads publish disjoint timestamp stripes of 1..=800 in
        // reverse order (maximally out of order); the prefix must drain
        // to exactly 800 with every slot empty.
        let w = Arc::new(Watermark::with_capacity(WATERMARK_CAPACITY));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    for i in (0..100u64).rev() {
                        w.publish(1 + t + 8 * i);
                    }
                });
            }
        });
        assert_eq!(w.get(), 800);
        assert!(w.slots.iter().all(|s| s.load(SeqCst) == EMPTY));
    }
}
