//! Write-ahead-log statistics: the durability counterpart of
//! `MvccStats`/`LockStats` — experiments report all three side by side.
//!
//! Group-commit batch sizes are kept as a full log-bucketed
//! [`Histogram`] rather than a running mean: a cumulative average hides
//! exactly the tail behavior group commit exists to shape (a flood of
//! 1-record batches under low concurrency, rare huge batches under
//! contention). The legacy `group_commit_batches` / `group_commit_records`
//! / `mean_group_commit` snapshot fields are *derived* from the
//! histogram (count / sum), bit-exact with what the old counters held,
//! so bench JSON written against them is unchanged.

use finecc_obs::{Collector, HistSnapshot, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of a [`crate::Wal`].
#[derive(Debug, Default)]
pub struct WalStats {
    appends: AtomicU64,
    log_bytes: AtomicU64,
    log_fsyncs: AtomicU64,
    /// Records per group-commit round, full distribution.
    batch_hist: Histogram,
    /// Records pushed to the flusher but not yet drained — the live
    /// flusher queue depth.
    queue_depth: AtomicU64,
    sync_waits: AtomicU64,
    append_failures: AtomicU64,
    recovery_replayed: AtomicU64,
    recovery_bytes: AtomicU64,
    recovery_peak_reorder: AtomicU64,
    truncations: AtomicU64,
    truncated_bytes: AtomicU64,
    checkpoints_removed: AtomicU64,
}

impl WalStats {
    pub(crate) fn bump_appends(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_log_bytes(&self, n: u64) {
        self.log_bytes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn bump_log_fsyncs(&self) {
        self.log_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sample_batch(&self, records: u64) {
        self.batch_hist.record(records);
    }

    pub(crate) fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn queue_exit(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    pub(crate) fn bump_sync_waits(&self) {
        self.sync_waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_append_failures(&self, n: u64) {
        self.append_failures.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn sample_truncation(&self, bytes_removed: u64) {
        self.truncations.fetch_add(1, Ordering::Relaxed);
        self.truncated_bytes
            .fetch_add(bytes_removed, Ordering::Relaxed);
    }

    pub(crate) fn add_checkpoints_removed(&self, n: u64) {
        self.checkpoints_removed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records how many log records the recovery that produced this
    /// log's owner replayed (set once by `MvccHeap::recover` and the
    /// scheme-level recovery paths).
    pub fn set_recovery_replayed(&self, n: u64) {
        self.recovery_replayed.store(n, Ordering::Relaxed);
    }

    /// Records the full recovery progress facts: frames replayed, log
    /// bytes scanned, and the peak occupancy of the streaming replay's
    /// reorder window.
    pub fn set_recovery_progress(&self, frames: u64, bytes_scanned: u64, peak_reorder: u64) {
        self.recovery_replayed.store(frames, Ordering::Relaxed);
        self.recovery_bytes.store(bytes_scanned, Ordering::Relaxed);
        self.recovery_peak_reorder
            .store(peak_reorder, Ordering::Relaxed);
    }

    /// The full group-commit batch-size distribution (the snapshot's
    /// quantile fields are derived from this).
    pub fn batch_snapshot(&self) -> HistSnapshot {
        self.batch_hist.snapshot()
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> WalStatsSnapshot {
        let batches = self.batch_hist.snapshot();
        WalStatsSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            log_fsyncs: self.log_fsyncs.load(Ordering::Relaxed),
            group_commit_batches: batches.count(),
            group_commit_records: batches.sum(),
            group_commit_max: batches.max(),
            group_commit_p50: batches.value_at_quantile(0.50),
            group_commit_p90: batches.value_at_quantile(0.90),
            group_commit_p99: batches.value_at_quantile(0.99),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            sync_waits: self.sync_waits.load(Ordering::Relaxed),
            append_failures: self.append_failures.load(Ordering::Relaxed),
            recovery_replayed: self.recovery_replayed.load(Ordering::Relaxed),
            recovery_bytes: self.recovery_bytes.load(Ordering::Relaxed),
            recovery_peak_reorder: self.recovery_peak_reorder.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
            checkpoints_removed: self.checkpoints_removed.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.appends.store(0, Ordering::Relaxed);
        self.log_bytes.store(0, Ordering::Relaxed);
        self.log_fsyncs.store(0, Ordering::Relaxed);
        self.batch_hist.reset();
        // queue_depth deliberately survives: it tracks records in
        // flight, which a stats reset does not drain.
        self.sync_waits.store(0, Ordering::Relaxed);
        self.append_failures.store(0, Ordering::Relaxed);
        self.recovery_replayed.store(0, Ordering::Relaxed);
        self.recovery_bytes.store(0, Ordering::Relaxed);
        self.recovery_peak_reorder.store(0, Ordering::Relaxed);
        self.truncations.store(0, Ordering::Relaxed);
        self.truncated_bytes.store(0, Ordering::Relaxed);
        self.checkpoints_removed.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`WalStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Records enqueued (commit + skip + extent records).
    pub appends: u64,
    /// Bytes written to the log file (frame headers included).
    pub log_bytes: u64,
    /// `fsync` calls issued by the flusher.
    pub log_fsyncs: u64,
    /// Group-commit rounds the flusher ran (one write+optional-fsync
    /// cycle each) — the batch histogram's count.
    pub group_commit_batches: u64,
    /// Records drained across all group-commit rounds — the batch
    /// histogram's sum; divided by `group_commit_batches` this is the
    /// mean group-commit size.
    pub group_commit_records: u64,
    /// Largest single group-commit batch (exact).
    pub group_commit_max: u64,
    /// Median group-commit batch size (log-bucketed, never an
    /// overestimate).
    pub group_commit_p50: u64,
    /// 90th-percentile batch size.
    pub group_commit_p90: u64,
    /// 99th-percentile batch size — the tail the mean hides.
    pub group_commit_p99: u64,
    /// Records pushed to the flusher but not yet drained at snapshot
    /// time (a gauge, not a counter).
    pub queue_depth: u64,
    /// Appends that blocked waiting for their durability ack
    /// (`WalSync` only).
    pub sync_waits: u64,
    /// Records whose append or fsync failed (real I/O errors and
    /// injected faults). The waiters saw a retryable error; the log
    /// rewound the failed batch and kept going unless the rewind
    /// itself failed (permanent poison).
    pub append_failures: u64,
    /// Log records replayed by the recovery that produced this log's
    /// heap (0 on a fresh database).
    pub recovery_replayed: u64,
    /// Log bytes the recovery scan walked (tail included).
    pub recovery_bytes: u64,
    /// Peak occupancy of streaming recovery's reorder window.
    pub recovery_peak_reorder: u64,
    /// Log truncations performed (one per post-checkpoint compaction).
    pub truncations: u64,
    /// Bytes the truncations removed from the log file.
    pub truncated_bytes: u64,
    /// Old checkpoint files deleted by the retention policy.
    pub checkpoints_removed: u64,
}

impl WalStatsSnapshot {
    /// Mean records per group-commit round (derived, for bench JSON
    /// compatibility with the pre-histogram counter pair).
    pub fn mean_group_commit(&self) -> f64 {
        if self.group_commit_batches == 0 {
            0.0
        } else {
            self.group_commit_records as f64 / self.group_commit_batches as f64
        }
    }

    /// The difference `self - earlier`, counter-wise (saturating;
    /// `recovery_*`, `queue_depth`, the batch maximum and quantiles
    /// are kept, not differenced — recovery facts, a gauge, and
    /// distribution shapes that cannot be windowed after the fact).
    pub fn since(&self, earlier: &WalStatsSnapshot) -> WalStatsSnapshot {
        WalStatsSnapshot {
            appends: self.appends.saturating_sub(earlier.appends),
            log_bytes: self.log_bytes.saturating_sub(earlier.log_bytes),
            log_fsyncs: self.log_fsyncs.saturating_sub(earlier.log_fsyncs),
            group_commit_batches: self
                .group_commit_batches
                .saturating_sub(earlier.group_commit_batches),
            group_commit_records: self
                .group_commit_records
                .saturating_sub(earlier.group_commit_records),
            group_commit_max: self.group_commit_max,
            group_commit_p50: self.group_commit_p50,
            group_commit_p90: self.group_commit_p90,
            group_commit_p99: self.group_commit_p99,
            queue_depth: self.queue_depth,
            sync_waits: self.sync_waits.saturating_sub(earlier.sync_waits),
            append_failures: self.append_failures.saturating_sub(earlier.append_failures),
            recovery_replayed: self.recovery_replayed,
            recovery_bytes: self.recovery_bytes,
            recovery_peak_reorder: self.recovery_peak_reorder,
            truncations: self.truncations.saturating_sub(earlier.truncations),
            truncated_bytes: self.truncated_bytes.saturating_sub(earlier.truncated_bytes),
            checkpoints_removed: self
                .checkpoints_removed
                .saturating_sub(earlier.checkpoints_removed),
        }
    }

    /// Emits every field under stable `finecc.wal.*` names.
    pub fn collect_metrics(&self, c: &mut Collector) {
        c.counter("finecc.wal.appends", self.appends);
        c.counter("finecc.wal.log_bytes", self.log_bytes);
        c.counter("finecc.wal.log_fsyncs", self.log_fsyncs);
        c.counter("finecc.wal.group_commit.batches", self.group_commit_batches);
        c.counter("finecc.wal.group_commit.records", self.group_commit_records);
        c.gauge("finecc.wal.group_commit.max", self.group_commit_max as f64);
        c.gauge("finecc.wal.group_commit.p50", self.group_commit_p50 as f64);
        c.gauge("finecc.wal.group_commit.p90", self.group_commit_p90 as f64);
        c.gauge("finecc.wal.group_commit.p99", self.group_commit_p99 as f64);
        c.gauge("finecc.wal.group_commit.mean", self.mean_group_commit());
        c.gauge("finecc.wal.queue_depth", self.queue_depth as f64);
        c.counter("finecc.wal.sync_waits", self.sync_waits);
        c.counter("finecc.wal.append_failures", self.append_failures);
        c.counter(
            "finecc.wal.recovery.frames_replayed",
            self.recovery_replayed,
        );
        c.counter("finecc.wal.recovery.bytes_scanned", self.recovery_bytes);
        c.gauge(
            "finecc.wal.recovery.peak_reorder",
            self.recovery_peak_reorder as f64,
        );
        c.counter("finecc.wal.truncations", self.truncations);
        c.counter("finecc.wal.truncated_bytes", self.truncated_bytes);
        c.counter("finecc.wal.checkpoints_removed", self.checkpoints_removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mean_and_reset() {
        let s = WalStats::default();
        s.bump_appends();
        s.sample_batch(3);
        s.sample_batch(5);
        let snap = s.snapshot();
        assert_eq!(snap.appends, 1);
        assert_eq!(snap.mean_group_commit(), 4.0);
        assert_eq!(snap.group_commit_max, 5);
        s.reset();
        assert_eq!(s.snapshot(), WalStatsSnapshot::default());
        assert_eq!(s.snapshot().mean_group_commit(), 0.0);
    }

    #[test]
    fn since_diffs() {
        let a = WalStatsSnapshot {
            appends: 2,
            log_bytes: 100,
            ..Default::default()
        };
        let b = WalStatsSnapshot {
            appends: 5,
            log_bytes: 350,
            group_commit_max: 9,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.appends, 3);
        assert_eq!(d.log_bytes, 250);
        assert_eq!(d.group_commit_max, 9);
    }

    #[test]
    fn batch_histogram_derives_legacy_fields_and_quantiles() {
        let s = WalStats::default();
        // 99 singleton batches and one of 64: the mean hides the tail,
        // the p99 does not.
        for _ in 0..99 {
            s.sample_batch(1);
        }
        s.sample_batch(64);
        let snap = s.snapshot();
        assert_eq!(snap.group_commit_batches, 100);
        assert_eq!(snap.group_commit_records, 99 + 64);
        assert_eq!(snap.group_commit_max, 64);
        assert_eq!(snap.mean_group_commit(), 1.63);
        assert_eq!(snap.group_commit_p50, 1);
        assert_eq!(snap.group_commit_p99, 1);
        // The full distribution is available behind the snapshot.
        let hist = s.batch_snapshot();
        assert_eq!(hist.count(), 100);
        assert_eq!(hist.value_at_quantile(1.0), 64);
    }

    #[test]
    fn queue_depth_tracks_enter_exit() {
        let s = WalStats::default();
        s.queue_enter();
        s.queue_enter();
        s.queue_enter();
        assert_eq!(s.snapshot().queue_depth, 3);
        s.queue_exit(2);
        assert_eq!(s.snapshot().queue_depth, 1);
        s.queue_exit(1);
        assert_eq!(s.snapshot().queue_depth, 0);
    }

    #[test]
    fn recovery_progress_is_a_fact_not_a_counter() {
        let s = WalStats::default();
        s.set_recovery_progress(10, 2048, 4);
        let snap = s.snapshot();
        assert_eq!(snap.recovery_replayed, 10);
        assert_eq!(snap.recovery_bytes, 2048);
        assert_eq!(snap.recovery_peak_reorder, 4);
        // since() keeps recovery facts rather than differencing them.
        let kept = snap.since(&snap);
        assert_eq!(kept.recovery_replayed, 10);
        assert_eq!(kept.recovery_bytes, 2048);
    }
}
