//! Write-ahead-log statistics: the durability counterpart of
//! `MvccStats`/`LockStats` — experiments report all three side by side.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of a [`crate::Wal`].
#[derive(Debug, Default)]
pub struct WalStats {
    appends: AtomicU64,
    log_bytes: AtomicU64,
    log_fsyncs: AtomicU64,
    group_commit_batches: AtomicU64,
    group_commit_records: AtomicU64,
    group_commit_max: AtomicU64,
    sync_waits: AtomicU64,
    append_failures: AtomicU64,
    recovery_replayed: AtomicU64,
    truncations: AtomicU64,
    truncated_bytes: AtomicU64,
    checkpoints_removed: AtomicU64,
}

impl WalStats {
    pub(crate) fn bump_appends(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_log_bytes(&self, n: u64) {
        self.log_bytes.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn bump_log_fsyncs(&self) {
        self.log_fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn sample_batch(&self, records: u64) {
        self.group_commit_batches.fetch_add(1, Ordering::Relaxed);
        self.group_commit_records
            .fetch_add(records, Ordering::Relaxed);
        self.group_commit_max.fetch_max(records, Ordering::Relaxed);
    }

    pub(crate) fn bump_sync_waits(&self) {
        self.sync_waits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_append_failures(&self, n: u64) {
        self.append_failures.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn sample_truncation(&self, bytes_removed: u64) {
        self.truncations.fetch_add(1, Ordering::Relaxed);
        self.truncated_bytes
            .fetch_add(bytes_removed, Ordering::Relaxed);
    }

    pub(crate) fn add_checkpoints_removed(&self, n: u64) {
        self.checkpoints_removed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records how many log records the recovery that produced this
    /// log's owner replayed (set once by `MvccHeap::recover` and the
    /// scheme-level recovery paths).
    pub fn set_recovery_replayed(&self, n: u64) {
        self.recovery_replayed.store(n, Ordering::Relaxed);
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            log_bytes: self.log_bytes.load(Ordering::Relaxed),
            log_fsyncs: self.log_fsyncs.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            group_commit_records: self.group_commit_records.load(Ordering::Relaxed),
            group_commit_max: self.group_commit_max.load(Ordering::Relaxed),
            sync_waits: self.sync_waits.load(Ordering::Relaxed),
            append_failures: self.append_failures.load(Ordering::Relaxed),
            recovery_replayed: self.recovery_replayed.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
            checkpoints_removed: self.checkpoints_removed.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.appends.store(0, Ordering::Relaxed);
        self.log_bytes.store(0, Ordering::Relaxed);
        self.log_fsyncs.store(0, Ordering::Relaxed);
        self.group_commit_batches.store(0, Ordering::Relaxed);
        self.group_commit_records.store(0, Ordering::Relaxed);
        self.group_commit_max.store(0, Ordering::Relaxed);
        self.sync_waits.store(0, Ordering::Relaxed);
        self.append_failures.store(0, Ordering::Relaxed);
        self.recovery_replayed.store(0, Ordering::Relaxed);
        self.truncations.store(0, Ordering::Relaxed);
        self.truncated_bytes.store(0, Ordering::Relaxed);
        self.checkpoints_removed.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`WalStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Records enqueued (commit + skip + extent records).
    pub appends: u64,
    /// Bytes written to the log file (frame headers included).
    pub log_bytes: u64,
    /// `fsync` calls issued by the flusher.
    pub log_fsyncs: u64,
    /// Group-commit rounds the flusher ran (one write+optional-fsync
    /// cycle each).
    pub group_commit_batches: u64,
    /// Records drained across all group-commit rounds; divided by
    /// `group_commit_batches` this is the mean group-commit size.
    pub group_commit_records: u64,
    /// Largest single group-commit batch.
    pub group_commit_max: u64,
    /// Appends that blocked waiting for their durability ack
    /// (`WalSync` only).
    pub sync_waits: u64,
    /// Records whose append or fsync failed (real I/O errors and
    /// injected faults). The waiters saw a retryable error; the log
    /// rewound the failed batch and kept going unless the rewind
    /// itself failed (permanent poison).
    pub append_failures: u64,
    /// Log records replayed by the recovery that produced this log's
    /// heap (0 on a fresh database).
    pub recovery_replayed: u64,
    /// Log truncations performed (one per post-checkpoint compaction).
    pub truncations: u64,
    /// Bytes the truncations removed from the log file.
    pub truncated_bytes: u64,
    /// Old checkpoint files deleted by the retention policy.
    pub checkpoints_removed: u64,
}

impl WalStatsSnapshot {
    /// Mean records per group-commit round.
    pub fn mean_group_commit(&self) -> f64 {
        if self.group_commit_batches == 0 {
            0.0
        } else {
            self.group_commit_records as f64 / self.group_commit_batches as f64
        }
    }

    /// The difference `self - earlier`, counter-wise (saturating;
    /// `recovery_replayed` and `group_commit_max` are kept, not
    /// differenced — one is a recovery fact, the other a maximum).
    pub fn since(&self, earlier: &WalStatsSnapshot) -> WalStatsSnapshot {
        WalStatsSnapshot {
            appends: self.appends.saturating_sub(earlier.appends),
            log_bytes: self.log_bytes.saturating_sub(earlier.log_bytes),
            log_fsyncs: self.log_fsyncs.saturating_sub(earlier.log_fsyncs),
            group_commit_batches: self
                .group_commit_batches
                .saturating_sub(earlier.group_commit_batches),
            group_commit_records: self
                .group_commit_records
                .saturating_sub(earlier.group_commit_records),
            group_commit_max: self.group_commit_max,
            sync_waits: self.sync_waits.saturating_sub(earlier.sync_waits),
            append_failures: self.append_failures.saturating_sub(earlier.append_failures),
            recovery_replayed: self.recovery_replayed,
            truncations: self.truncations.saturating_sub(earlier.truncations),
            truncated_bytes: self.truncated_bytes.saturating_sub(earlier.truncated_bytes),
            checkpoints_removed: self
                .checkpoints_removed
                .saturating_sub(earlier.checkpoints_removed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mean_and_reset() {
        let s = WalStats::default();
        s.bump_appends();
        s.sample_batch(3);
        s.sample_batch(5);
        let snap = s.snapshot();
        assert_eq!(snap.appends, 1);
        assert_eq!(snap.mean_group_commit(), 4.0);
        assert_eq!(snap.group_commit_max, 5);
        s.reset();
        assert_eq!(s.snapshot(), WalStatsSnapshot::default());
        assert_eq!(s.snapshot().mean_group_commit(), 0.0);
    }

    #[test]
    fn since_diffs() {
        let a = WalStatsSnapshot {
            appends: 2,
            log_bytes: 100,
            ..Default::default()
        };
        let b = WalStatsSnapshot {
            appends: 5,
            log_bytes: 350,
            group_commit_max: 9,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.appends, 3);
        assert_eq!(d.log_bytes, 250);
        assert_eq!(d.group_commit_max, 9);
    }
}
