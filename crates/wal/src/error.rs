//! Typed recovery errors: every corruption carries the offending file
//! and, where meaningful, the byte offset — the stringly
//! `io::Error::new(InvalidData, ...)` messages the early recovery code
//! used told a caller *that* a checkpoint or frame was corrupt, but
//! not *which* file or *where*, which is exactly what a repro needs.
//!
//! [`RecoveryError`] converts losslessly into [`io::Error`] (the typed
//! value rides along as the error's source and can be recovered with
//! `get_ref` + downcast), so the existing `io::Result` surfaces —
//! `MvccHeap::recover`, `Env::resume_wal`, the sim — keep compiling
//! while anything that wants the structure can take it apart. The
//! runtime surfaces it to transaction code as `ExecError::Recovery`.

use std::io;
use std::path::PathBuf;

/// Why a recovery attempt (or a checkpoint/log read feeding one)
/// failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// The directory holds no checkpoint that validates. A durable
    /// store writes a genesis checkpoint when the log is attached, so
    /// this means the directory never held a durable store (or every
    /// checkpoint was destroyed).
    NoCheckpoint {
        /// The log directory searched.
        dir: PathBuf,
    },
    /// A checkpoint file failed validation (bad magic, checksum
    /// mismatch, undecodable body). Recovery falls back to the next
    /// older checkpoint; this surfaces only when the failure was
    /// injected or an I/O error interrupted the read itself.
    CorruptCheckpoint {
        /// The offending checkpoint file.
        file: PathBuf,
        /// What failed to validate.
        what: String,
    },
    /// A log frame failed validation mid-stream in a context where a
    /// torn tail is not acceptable (the log *header* is wrong, not a
    /// trailing frame).
    CorruptLog {
        /// The offending log file.
        file: PathBuf,
        /// Byte offset of the frame that failed.
        offset: u64,
        /// What failed to validate.
        what: String,
    },
    /// Streaming replay popped a record whose timestamp sorts below one
    /// already applied: the log's out-of-order distance exceeded the
    /// reorder window, so a bounded-memory replay cannot order it.
    /// (Group commit bounds the distance by the batch structure; this
    /// surfaces only if a log was produced with a larger batch cap than
    /// the window replaying it.)
    ReorderWindowExceeded {
        /// The log file being replayed.
        file: PathBuf,
        /// Byte offset (past the frame) of the unorderable record.
        offset: u64,
        /// The reorder window that proved too small.
        window: usize,
        /// The record's replay timestamp.
        ts: u64,
        /// The highest timestamp already applied.
        applied: u64,
    },
    /// An I/O operation on a recovery input failed (including injected
    /// `finecc_chaos` faults at the recovery sites).
    Io {
        /// The file (or directory) the operation touched.
        file: PathBuf,
        /// The underlying error, stringified (keeps the type `Clone`).
        source: String,
    },
}

impl RecoveryError {
    /// The file (or directory) the error is about.
    pub fn file(&self) -> &std::path::Path {
        match self {
            RecoveryError::NoCheckpoint { dir } => dir,
            RecoveryError::CorruptCheckpoint { file, .. }
            | RecoveryError::CorruptLog { file, .. }
            | RecoveryError::ReorderWindowExceeded { file, .. }
            | RecoveryError::Io { file, .. } => file,
        }
    }

    /// The byte offset of the offence, where one exists.
    pub fn offset(&self) -> Option<u64> {
        match self {
            RecoveryError::CorruptLog { offset, .. }
            | RecoveryError::ReorderWindowExceeded { offset, .. } => Some(*offset),
            _ => None,
        }
    }

    /// The `io::ErrorKind` this error maps to.
    pub fn io_kind(&self) -> io::ErrorKind {
        match self {
            RecoveryError::NoCheckpoint { .. } => io::ErrorKind::NotFound,
            RecoveryError::CorruptCheckpoint { .. }
            | RecoveryError::CorruptLog { .. }
            | RecoveryError::ReorderWindowExceeded { .. } => io::ErrorKind::InvalidData,
            RecoveryError::Io { .. } => io::ErrorKind::Other,
        }
    }

    pub(crate) fn io(file: impl Into<PathBuf>, e: io::Error) -> RecoveryError {
        RecoveryError::Io {
            file: file.into(),
            source: e.to_string(),
        }
    }
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoCheckpoint { dir } => write!(
                f,
                "no usable checkpoint in {} (a durable store writes a genesis checkpoint when \
                 the log is attached)",
                dir.display()
            ),
            RecoveryError::CorruptCheckpoint { file, what } => {
                write!(f, "corrupt checkpoint {}: {what}", file.display())
            }
            RecoveryError::CorruptLog { file, offset, what } => {
                write!(
                    f,
                    "corrupt log {} at offset {offset}: {what}",
                    file.display()
                )
            }
            RecoveryError::ReorderWindowExceeded {
                file,
                offset,
                window,
                ts,
                applied,
            } => write!(
                f,
                "reorder window {window} exceeded replaying {} at offset {offset}: \
                 record ts {ts} after ts {applied} was applied",
                file.display()
            ),
            RecoveryError::Io { file, source } => {
                write!(f, "recovery i/o on {}: {source}", file.display())
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<RecoveryError> for io::Error {
    fn from(e: RecoveryError) -> io::Error {
        io::Error::new(e.io_kind(), e)
    }
}

/// Recovers the typed error from an [`io::Error`] produced by the
/// `From` conversion above (the round trip `ExecError` mapping uses).
pub fn as_recovery_error(e: &io::Error) -> Option<&RecoveryError> {
    e.get_ref().and_then(|s| s.downcast_ref::<RecoveryError>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_round_trip_preserves_the_typed_error() {
        let e = RecoveryError::CorruptLog {
            file: PathBuf::from("/tmp/wal.log"),
            offset: 42,
            what: "checksum".into(),
        };
        let io_err: io::Error = e.clone().into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        let back = as_recovery_error(&io_err).expect("typed error rides along");
        assert_eq!(back, &e);
        assert_eq!(back.offset(), Some(42));
        assert_eq!(back.file(), std::path::Path::new("/tmp/wal.log"));
    }

    #[test]
    fn kinds_and_display() {
        let nf = RecoveryError::NoCheckpoint {
            dir: PathBuf::from("/d"),
        };
        assert_eq!(nf.io_kind(), io::ErrorKind::NotFound);
        assert!(nf.to_string().contains("genesis checkpoint"));
        let re = RecoveryError::ReorderWindowExceeded {
            file: PathBuf::from("/d/wal.log"),
            offset: 9,
            window: 4,
            ts: 2,
            applied: 7,
        };
        assert_eq!(re.offset(), Some(9));
        assert!(re.to_string().contains("reorder window 4"));
    }
}
