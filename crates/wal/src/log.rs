//! The append pipeline: lock-free enqueue, dedicated flusher, group
//! commit.
//!
//! Writers serialize their record, push the frame onto a **lock-free
//! Treiber stack** (one CAS — no mutex anywhere on the enqueue path),
//! and, at [`DurabilityLevel::WalSync`], block until the flusher's ack.
//! A dedicated flusher thread swaps the whole stack out (another single
//! atomic op), restores FIFO order, writes the batch to the log file,
//! issues **one** `fsync` for the entire batch, and wakes every waiting
//! writer — the classic group commit: whatever accumulated while the
//! previous batch was syncing shares the next sync. Batch size is
//! capped by [`WalConfig::max_batch`] (the `wal_bench` sweep knob).
//!
//! At [`DurabilityLevel::Wal`] nothing waits: records still reach the
//! OS promptly (the flusher writes every batch) but commits ack without
//! an fsync — durable on graceful shutdown ([`Wal`]'s drop drains and
//! syncs), best-effort on a crash.
//!
//! Failure model: a write or fsync error fails every record of the
//! affected batch — each waiter gets an error and its transaction
//! rolls back — and the flusher **rewinds** the log file to the
//! batch's start so the on-disk log stays exactly the acked prefix.
//! When the rewind succeeds the failure is transient: later batches
//! proceed normally (graceful, batch-granular degradation). When the
//! rewind itself fails (or a simulated crash fired) the log is
//! poisoned and every in-flight and future append fails. Either way
//! the file stays prefix-consistent: frames are written in order and a
//! torn tail is detected (checksums) and truncated on the next open.
//!
//! Deterministic testing: [`WalConfig::inline`] — forced on while a
//! `finecc_chaos` *scheduled* session is installed — bypasses the
//! flusher and performs the write and (at `WalSync`) the fsync on the
//! appending thread, with fault probes at
//! [`finecc_chaos::Site::WalAppend`] / [`finecc_chaos::Site::WalFsync`].
//! The flusher path probes `WalFlushWrite` / `WalFlushFsync` through a
//! [`finecc_chaos::FaultToken`] captured at open time, so injected
//! flusher faults fire deterministically even though the flusher is a
//! background thread.
//!
//! **Truncation & retention** ([`Wal::truncate_below`],
//! [`Wal::prune_checkpoints`]): after a durable checkpoint at
//! `ckpt_ts`, the heap truncates every log frame whose replay
//! timestamp is strictly below `ckpt_ts` — never at or above it, so no
//! frame a future recovery could replay is ever lost (`recovery_floor`
//! is always ≥ `ckpt_ts + 1`) — and deletes checkpoints beyond the
//! newest [`WalConfig::retain_checkpoints`], both strictly *after* the
//! new checkpoint's rename is directory-fsynced. The truncation itself
//! is atomic (rewrite the retained suffix to a temp file, fsync,
//! rename, directory fsync): a crash anywhere leaves either the old
//! log or the compacted one, both of which replay to the same state on
//! top of the new checkpoint. In flusher mode the truncation rides the
//! group-commit queue, so it serializes with in-flight batches.

use crate::checkpoint::{self, CheckpointData};
use crate::record::{encode_frame, LogRecord, LOG_MAGIC};
use crate::stats::WalStats;
use finecc_model::{ClassId, Oid, TxnId};
use finecc_obs::{EventKind, Obs, Phase};
use finecc_store::FieldImage;
use parking_lot::{Condvar, Mutex};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How durable a scheme's commits are — a first-class scheme parameter
/// like the isolation level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DurabilityLevel {
    /// No logging at all: committed state lives purely in memory (the
    /// pre-WAL behavior; zero overhead, nothing survives a crash).
    #[default]
    None,
    /// Redo logging without commit-time fsync: every commit is appended
    /// to the log and written out by the flusher, but `commit` returns
    /// without waiting for the disk. Survives a graceful shutdown;
    /// after a crash, recovery yields some prefix of the committed
    /// history.
    Wal,
    /// Full write-ahead durability: `commit` returns only after the
    /// flusher's group `fsync` covers its record — durable before
    /// visible.
    WalSync,
}

impl DurabilityLevel {
    /// Stable display name (`none`, `wal`, `wal-sync`).
    pub fn name(self) -> &'static str {
        match self {
            DurabilityLevel::None => "none",
            DurabilityLevel::Wal => "wal",
            DurabilityLevel::WalSync => "wal-sync",
        }
    }
}

impl std::fmt::Display for DurabilityLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`Wal`].
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// The durability level the log enforces on appends.
    /// [`DurabilityLevel::None`] is accepted (callers usually skip
    /// creating a `Wal` entirely at that level) and behaves like
    /// [`DurabilityLevel::Wal`]: records are logged, nothing waits.
    pub level: DurabilityLevel,
    /// Most records one group-commit round writes+syncs (the
    /// `wal_bench` sweep knob). Larger batches amortize the fsync over
    /// more commits at the price of ack latency.
    pub max_batch: usize,
    /// Write (and, at [`DurabilityLevel::WalSync`], fsync) every record
    /// inline on the appending thread instead of handing it to the
    /// flusher. No group commit, so it is slower — but fully
    /// deterministic, which is why a `finecc_chaos` scheduled session
    /// forces it on regardless of this flag: injected faults then land
    /// at exact points of the explored schedule.
    pub inline: bool,
    /// How many checkpoint files [`Wal::prune_checkpoints`] keeps (at
    /// least 1 is always kept). Two by default: the newest plus one
    /// fallback in case the newest is found corrupt at recovery.
    pub retain_checkpoints: usize,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            level: DurabilityLevel::WalSync,
            max_batch: 1024,
            inline: false,
            retain_checkpoints: 2,
        }
    }
}

const STATE_QUEUED: u8 = 0;
const STATE_WRITTEN: u8 = 1;
const STATE_SYNCED: u8 = 2;
const STATE_FAILED: u8 = 3;

/// One enqueued frame, shared between the appending writer (which may
/// wait on `state`) and the flusher (which drives it).
struct Node {
    /// The encoded frame; empty for a pure sync barrier.
    bytes: Vec<u8>,
    /// Forces an fsync for the batch containing this node even at
    /// non-sync levels ([`Wal::sync`]).
    force_sync: bool,
    /// `Some(floor)` for a truncation request riding the queue: the
    /// flusher rewrites the log keeping only frames with
    /// `order_ts >= floor`, serialized against batch writes.
    truncate_below: Option<u64>,
    state: AtomicU8,
    /// Intrusive Treiber-stack link (an `Arc::into_raw` pointer owned
    /// by the list until drained).
    next: AtomicPtr<Node>,
}

impl Node {
    fn new(bytes: Vec<u8>, force_sync: bool) -> Arc<Node> {
        Arc::new(Node {
            bytes,
            force_sync,
            truncate_below: None,
            state: AtomicU8::new(STATE_QUEUED),
            next: AtomicPtr::new(std::ptr::null_mut()),
        })
    }

    fn truncate(floor: u64) -> Arc<Node> {
        Arc::new(Node {
            bytes: Vec::new(),
            force_sync: false,
            truncate_below: Some(floor),
            state: AtomicU8::new(STATE_QUEUED),
            next: AtomicPtr::new(std::ptr::null_mut()),
        })
    }
}

struct Shared {
    /// Pending frames, newest first (drained and reversed by the
    /// flusher).
    head: AtomicPtr<Node>,
    /// Pairs both condvars; holds no data — the queue itself is
    /// lock-free.
    gate: Mutex<()>,
    /// Wakes the flusher when it parked on an empty queue.
    wake: Condvar,
    /// Wakes writers waiting for their ack.
    acked: Condvar,
    /// `true` while the flusher is parked (writers only touch the gate
    /// mutex to wake a parked flusher).
    sleeping: AtomicBool,
    shutdown: AtomicBool,
    /// Poisoned by a flusher I/O error.
    failed: AtomicBool,
    stats: WalStats,
}

impl Shared {
    fn push(&self, node: &Arc<Node>) {
        self.stats.queue_enter();
        let raw = Arc::into_raw(Arc::clone(node)) as *mut Node;
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // Not yet visible to the flusher: plain store is fine.
            unsafe { (*raw).next.store(head, Ordering::Relaxed) };
            match self
                .head
                .compare_exchange_weak(head, raw, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        if self.sleeping.load(Ordering::Acquire) {
            let _g = self.gate.lock();
            self.wake.notify_one();
        }
    }

    /// Pops everything at once and restores FIFO (push) order.
    fn drain(&self) -> Vec<Arc<Node>> {
        let mut raw = self.head.swap(std::ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !raw.is_null() {
            let node = unsafe { Arc::from_raw(raw) };
            raw = node.next.load(Ordering::Relaxed);
            out.push(node);
        }
        if !out.is_empty() {
            self.stats.queue_exit(out.len() as u64);
        }
        out.reverse();
        out
    }
}

/// The write-ahead log: an append-only redo log under `<dir>/wal.log`
/// plus checkpoint files, with the group-commit pipeline of the module
/// docs. Opening an existing directory resumes the log — a torn tail
/// left by a crash is truncated to the last intact frame so new
/// appends stay readable.
pub struct Wal {
    shared: Arc<Shared>,
    dir: PathBuf,
    level: DurabilityLevel,
    /// Checkpoints the retention policy keeps (≥ 1).
    retain: usize,
    /// Highest commit/skip timestamp found in the log at open time.
    max_logged_ts: u64,
    /// Observability sink: group-commit ack waits go into
    /// [`Phase::GroupCommitAck`]; disabled by default.
    obs: Arc<Obs>,
    flusher: Option<std::thread::JoinHandle<()>>,
    /// `Some` in inline mode (no flusher): the log file, written and
    /// synced directly by appending threads.
    inline: Option<Mutex<File>>,
}

fn poisoned() -> io::Error {
    io::Error::other("write-ahead log poisoned by a flusher I/O error")
}

/// Persists a directory's entries (new files, renames). Data fsyncs
/// alone do not persist the *dirent* on ext4/XFS — without this, a
/// power loss after an acked commit could erase the log file or a
/// just-renamed checkpoint from the directory. The open is
/// best-effort (non-POSIX platforms cannot open directories); a
/// failed *sync* on an opened directory is a real error and
/// propagates.
pub(crate) fn fsync_dir(dir: &Path) -> io::Result<()> {
    match std::fs::File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

impl Wal {
    /// The log file path under a directory.
    pub fn log_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    /// Opens (or creates) the log under `dir` and starts the flusher.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> io::Result<Wal> {
        Wal::open_with_obs(dir, config, Arc::new(Obs::disabled()))
    }

    /// [`Wal::open`] with an observability sink: ack waits are recorded
    /// into [`Phase::GroupCommitAck`] and the flusher emits `fsync`
    /// trace spans. The handle must be supplied at open time because
    /// the flusher thread captures it.
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        config: WalConfig,
        obs: Arc<Obs>,
    ) -> io::Result<Wal> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // A crash between a checkpoint's temp-file create and its
        // rename leaves a stale `.tmp` behind; open is the natural
        // sweep point (nothing references temp files across a restart).
        checkpoint::remove_stale_tmp(&dir)?;
        // Ditto a truncation that crashed between temp-file create and
        // rename: the real log is untouched, the temp is garbage.
        let _ = std::fs::remove_file(dir.join("wal.log.tmp"));
        let path = Wal::log_path(&dir);
        let mut max_logged_ts = 0;
        let file = if path.exists() {
            // Resume: stream to the last intact frame (O(1) memory),
            // truncate any torn tail (appending after garbage would
            // hide every later record from replay).
            let end = {
                let mut stream = crate::record::FrameStream::open(&path)?;
                while let Some((_, rec)) = stream.next_record()? {
                    if let LogRecord::Commit { ts, .. } | LogRecord::Skip { ts } = rec {
                        max_logged_ts = max_logged_ts.max(ts);
                    }
                }
                stream.offset()
            };
            let mut f = OpenOptions::new().read(true).write(true).open(&path)?;
            f.set_len(end)?;
            f.seek(SeekFrom::Start(end))?;
            f
        } else {
            let mut f = OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path)?;
            f.write_all(LOG_MAGIC)?;
            f.sync_data()?;
            // Persist the new dirent too: otherwise a power loss could
            // drop the whole log file even after commits were fsynced.
            fsync_dir(&dir)?;
            f
        };
        let shared = Arc::new(Shared {
            head: AtomicPtr::new(std::ptr::null_mut()),
            gate: Mutex::new(()),
            wake: Condvar::new(),
            acked: Condvar::new(),
            sleeping: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            stats: WalStats::default(),
        });
        let (flusher, inline) = if config.inline || finecc_chaos::scheduled_session() {
            (None, Some(Mutex::new(file)))
        } else {
            // Captured here, on the opening (chaos-eligible) thread:
            // the flusher itself is a background thread the harness
            // knows nothing about.
            let token = finecc_chaos::fault_token();
            let shared = Arc::clone(&shared);
            let obs = Arc::clone(&obs);
            let sync_all = config.level == DurabilityLevel::WalSync;
            let max_batch = config.max_batch.max(1);
            let flusher_dir = dir.clone();
            let handle = std::thread::Builder::new()
                .name("finecc-wal-flusher".into())
                .spawn(move || {
                    flusher_loop(shared, file, sync_all, max_batch, flusher_dir, obs, token)
                })?;
            (Some(handle), None)
        };
        Ok(Wal {
            shared,
            dir,
            level: config.level,
            retain: config.retain_checkpoints.max(1),
            max_logged_ts,
            obs,
            flusher,
            inline,
        })
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The durability level appends enforce.
    pub fn level(&self) -> DurabilityLevel {
        self.level
    }

    /// Live counters.
    pub fn stats(&self) -> &WalStats {
        &self.shared.stats
    }

    /// Emits the current WAL counters into a metrics collector under
    /// `finecc.wal.*` names.
    pub fn collect_metrics(&self, c: &mut finecc_obs::Collector) {
        self.shared.stats.snapshot().collect_metrics(c);
    }

    /// Highest commit/skip timestamp that was already in the log when
    /// it was opened (0 for a fresh log). Callers resuming a clock on
    /// top of an existing directory start above this.
    pub fn max_logged_ts(&self) -> u64 {
        self.max_logged_ts
    }

    fn append(&self, rec: &LogRecord, wait_ack: bool) -> io::Result<()> {
        if self.inline.is_some() {
            return self.append_inline(rec, wait_ack);
        }
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(poisoned());
        }
        let node = Node::new(encode_frame(rec), false);
        self.shared.push(&node);
        self.shared.stats.bump_appends();
        if wait_ack && self.level == DurabilityLevel::WalSync {
            self.shared.stats.bump_sync_waits();
            let wait_start = self.obs.clock();
            self.wait_ack(&node, STATE_SYNCED)?;
            self.obs.record_since(Phase::GroupCommitAck, wait_start);
        }
        Ok(())
    }

    /// Inline-mode append: write (and at `WalSync` fsync) directly on
    /// the appending thread. Chaos probes: `WalAppend` faults strike
    /// the frame write, `WalFsync` faults strike the commit fsync; an
    /// injected `Crash` leaves the on-disk log exactly as a real power
    /// cut would (torn tail mid-write, rewound frame at fsync) and
    /// poisons the log.
    fn append_inline(&self, rec: &LogRecord, wait_ack: bool) -> io::Result<()> {
        use finecc_chaos::{FaultKind, Site};
        // Scheduling decision *before* taking the file lock: a
        // scheduled worker must never be preempted while holding a
        // mutex another worker can block on.
        finecc_chaos::yield_point(Site::WalAppend);
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(poisoned());
        }
        let frame = encode_frame(rec);
        let mut file = self.inline.as_ref().expect("inline mode").lock();
        self.shared.stats.bump_appends();
        let start_pos = file.stream_position()?;
        let rewind = |file: &mut File| {
            file.set_len(start_pos).is_ok()
                && file.seek(SeekFrom::Start(start_pos)).is_ok()
                && file.sync_data().is_ok()
        };
        match finecc_chaos::fault_at(Site::WalAppend) {
            Some(FaultKind::IoError) => {
                self.shared.stats.add_append_failures(1);
                return Err(io::Error::other("injected: wal append write error"));
            }
            Some(FaultKind::Crash) => {
                // A mid-append power cut: half the frame reaches disk,
                // the log is dead. Recovery truncates the torn tail.
                let _ = file.write_all(&frame[..frame.len() / 2]);
                let _ = file.sync_data();
                self.shared.failed.store(true, Ordering::Release);
                self.shared.stats.add_append_failures(1);
                finecc_chaos::note_crash();
                return Err(io::Error::other("injected: crash mid-append"));
            }
            _ => {}
        }
        if let Err(e) = file.write_all(&frame) {
            self.shared.stats.add_append_failures(1);
            if !rewind(&mut file) {
                self.shared.failed.store(true, Ordering::Release);
            }
            return Err(e);
        }
        if wait_ack && self.level == DurabilityLevel::WalSync {
            self.shared.stats.bump_sync_waits();
            match finecc_chaos::fault_at(Site::WalFsync) {
                Some(FaultKind::IoError) => {
                    // Transient: rewind the frame so the on-disk log
                    // stays exactly the acked prefix; later appends
                    // proceed.
                    self.shared.stats.add_append_failures(1);
                    if !rewind(&mut file) {
                        self.shared.failed.store(true, Ordering::Release);
                    }
                    return Err(io::Error::other("injected: wal fsync error"));
                }
                Some(FaultKind::Crash) => {
                    // Crash before the fsync: the record was never
                    // acked, so it must not survive into recovery.
                    self.shared.stats.add_append_failures(1);
                    let _ = rewind(&mut file);
                    self.shared.failed.store(true, Ordering::Release);
                    finecc_chaos::note_crash();
                    return Err(io::Error::other("injected: crash at commit fsync"));
                }
                _ => {}
            }
            let wait_start = self.obs.clock();
            if let Err(e) = file.sync_data() {
                self.shared.stats.add_append_failures(1);
                if !rewind(&mut file) {
                    self.shared.failed.store(true, Ordering::Release);
                }
                return Err(e);
            }
            self.shared.stats.bump_log_fsyncs();
            self.shared.stats.sample_batch(1);
            self.obs.record_since(Phase::GroupCommitAck, wait_start);
        }
        self.shared.stats.add_log_bytes(frame.len() as u64);
        Ok(())
    }

    fn wait_ack(&self, node: &Arc<Node>, target: u8) -> io::Result<()> {
        let mut g = self.shared.gate.lock();
        loop {
            match node.state.load(Ordering::Acquire) {
                STATE_FAILED => {
                    // Permanent poison and transient batch failure look
                    // the same to the node; the shared flag tells them
                    // apart.
                    return Err(if self.shared.failed.load(Ordering::Acquire) {
                        poisoned()
                    } else {
                        io::Error::other(
                            "write-ahead log batch failed and was rolled back (retryable)",
                        )
                    });
                }
                s if s >= target => return Ok(()),
                _ => {
                    // Timeout only as a safety net (the flusher
                    // notifies under the gate, so wakeups cannot be
                    // lost).
                    self.shared
                        .acked
                        .wait_for(&mut g, Duration::from_millis(50));
                }
            }
        }
    }

    /// Appends a commit record — the transaction's *Write*-projection
    /// after-images at its commit timestamp — and, at
    /// [`DurabilityLevel::WalSync`], returns only once the record is
    /// fsynced (the group-commit ack).
    pub fn append_commit(&self, ts: u64, txn: TxnId, writes: &[FieldImage]) -> io::Result<()> {
        self.append(
            &LogRecord::Commit {
                ts,
                txn,
                writes: writes.to_vec(),
            },
            true,
        )
    }

    /// Appends a skip record for a drawn-but-refused commit timestamp
    /// (SSI validation failure after the clock draw), so recovery
    /// restores the hole instead of reusing it. Never waits for the
    /// fsync, even at [`DurabilityLevel::WalSync`]: losing an unsynced
    /// skip is harmless — any later durable commit record's fsync
    /// covers the earlier skip frame anyway (frames are written in
    /// order), and if the skip was the highest drawn timestamp,
    /// re-drawing it after recovery reuses a timestamp at which
    /// nothing was ever flipped or logged.
    pub fn append_skip(&self, ts: u64) -> io::Result<()> {
        self.append(&LogRecord::Skip { ts }, false)
    }

    /// Appends an object-creation record.
    pub fn append_create(&self, as_of: u64, oid: Oid, class: ClassId) -> io::Result<()> {
        self.append(&LogRecord::Create { as_of, oid, class }, true)
    }

    /// Appends an object-deletion record.
    pub fn append_delete(&self, as_of: u64, oid: Oid) -> io::Result<()> {
        self.append(&LogRecord::Delete { as_of, oid }, true)
    }

    /// Drains the queue and fsyncs, regardless of level — the graceful
    /// flush (tests and shutdown paths call it; dropping the log does
    /// the same).
    pub fn sync(&self) -> io::Result<()> {
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(poisoned());
        }
        if let Some(file) = &self.inline {
            // Inline mode: nothing is queued, the file is the truth.
            file.lock().sync_data()?;
            self.shared.stats.bump_log_fsyncs();
            return Ok(());
        }
        let node = Node::new(Vec::new(), true);
        self.shared.push(&node);
        self.wait_ack(&node, STATE_SYNCED)
    }

    /// Writes a checkpoint file into the log directory (atomically:
    /// temp file + rename). Returns its path.
    pub fn write_checkpoint(&self, data: &CheckpointData<'_>) -> io::Result<PathBuf> {
        checkpoint::write(&self.dir, data)
    }

    /// `true` if the directory holds at least one checkpoint file.
    pub fn has_checkpoint(&self) -> io::Result<bool> {
        Ok(!checkpoint::list(&self.dir)?.is_empty())
    }

    /// How many checkpoint files the retention policy keeps.
    pub fn retain_checkpoints(&self) -> usize {
        self.retain
    }

    /// Applies the retention policy: deletes all but the newest
    /// [`WalConfig::retain_checkpoints`] checkpoint files. Callers
    /// sequence this after [`Wal::write_checkpoint`] returned — the new
    /// checkpoint's rename is directory-fsynced by then, so a crash
    /// mid-prune still leaves a durable checkpoint. Returns how many
    /// files were removed.
    pub fn prune_checkpoints(&self) -> io::Result<u64> {
        let removed = checkpoint::retain(&self.dir, self.retain)?;
        if removed > 0 {
            self.shared.stats.add_checkpoints_removed(removed);
        }
        Ok(removed)
    }

    /// Truncates the log: atomically rewrites it keeping only frames
    /// whose replay timestamp (`order_ts`) is **at or above** `floor`.
    /// The heap calls this with `floor = ckpt_ts` after a durable
    /// checkpoint: frames *at* the checkpoint timestamp survive (an
    /// extent event racing the fuzzy scan can share it), and recovery's
    /// replay floor is `ckpt_ts + 1`, so truncation never removes a
    /// frame a future recovery could need — property-tested against
    /// [`crate::recovery_floor`] over arbitrary floors.
    ///
    /// Atomicity: the retained suffix is rewritten to `wal.log.tmp`,
    /// fsynced, renamed over the log, and the directory fsynced — a
    /// crash anywhere leaves either the old log or the compacted one,
    /// which replay identically on top of the checkpoint. A pre-rename
    /// failure is transient (log unchanged); a post-rename failure
    /// poisons the log (the open write handle no longer matches the
    /// directory entry). In flusher mode the request rides the
    /// group-commit queue and is serialized against batch writes.
    pub fn truncate_below(&self, floor: u64) -> io::Result<()> {
        if self.shared.failed.load(Ordering::Acquire) {
            return Err(poisoned());
        }
        if let Some(file) = &self.inline {
            let mut guard = file.lock();
            guard.sync_data()?;
            match rewrite_log(&self.dir, floor) {
                Ok(removed) => match reopen_log_end(&self.dir) {
                    Ok(f) => {
                        *guard = f;
                        self.shared.stats.sample_truncation(removed);
                        Ok(())
                    }
                    Err(e) => {
                        self.shared.failed.store(true, Ordering::Release);
                        Err(e)
                    }
                },
                Err((e, poison)) => {
                    if poison {
                        self.shared.failed.store(true, Ordering::Release);
                    }
                    Err(e)
                }
            }
        } else {
            let node = Node::truncate(floor);
            self.shared.push(&node);
            self.wait_ack(&node, STATE_SYNCED)
        }
    }
}

/// Atomically rewrites the log at `dir`, keeping only frames with
/// `order_ts >= floor` (canonical encoding round-trips byte-identically,
/// so re-encoding decoded frames preserves them exactly). Returns the
/// bytes removed. The `bool` in the error marks the point of no
/// return: `false` means the log file is untouched (transient failure),
/// `true` means the rename landed but a later step failed — callers
/// must poison, their write handle no longer matches the dirent.
fn rewrite_log(dir: &Path, floor: u64) -> Result<u64, (io::Error, bool)> {
    let path = Wal::log_path(dir);
    let tmp = dir.join("wal.log.tmp");
    let old_len = std::fs::metadata(&path).map_err(|e| (e, false))?.len();
    let built = (|| -> io::Result<u64> {
        let mut out = io::BufWriter::new(File::create(&tmp)?);
        out.write_all(LOG_MAGIC)?;
        let mut kept = 0u64;
        let mut stream = crate::record::FrameStream::open(&path).map_err(io::Error::from)?;
        while let Some((_, rec)) = stream.next_record().map_err(io::Error::from)? {
            if rec.order_ts() >= floor {
                let frame = encode_frame(&rec);
                kept += frame.len() as u64;
                out.write_all(&frame)?;
            }
        }
        out.flush()?;
        out.get_ref().sync_data()?;
        Ok(kept)
    })();
    let kept = match built {
        Ok(kept) => kept,
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            return Err((e, false));
        }
    };
    if let Err(e) = std::fs::rename(&tmp, &path) {
        let _ = std::fs::remove_file(&tmp);
        return Err((e, false));
    }
    fsync_dir(dir).map_err(|e| (e, true))?;
    Ok(old_len.saturating_sub(LOG_MAGIC.len() as u64 + kept))
}

/// Reopens the log for appending after a truncation swapped the file.
fn reopen_log_end(dir: &Path) -> io::Result<File> {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(Wal::log_path(dir))?;
    f.seek(SeekFrom::End(0))?;
    Ok(f)
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let Some(file) = &self.inline {
            // No flusher to drain; leave the file synced (best-effort
            // — the log may be poisoned by an injected crash).
            let _ = file.lock().sync_data();
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.gate.lock();
            self.shared.wake.notify_one();
        }
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        // Free anything still on the stack (possible only if the
        // flusher died on an I/O error).
        for node in self.shared.drain() {
            node.state.store(STATE_FAILED, Ordering::Release);
        }
    }
}

fn flusher_loop(
    shared: Arc<Shared>,
    mut file: File,
    sync_all: bool,
    max_batch: usize,
    dir: PathBuf,
    obs: Arc<Obs>,
    token: Option<finecc_chaos::FaultToken>,
) {
    loop {
        let batch = shared.drain();
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) {
                // Graceful shutdown: everything drained and written;
                // leave the file synced even at async levels.
                let _ = file.sync_data();
                return;
            }
            shared.sleeping.store(true, Ordering::Release);
            {
                let mut g = shared.gate.lock();
                // Re-check under the gate: a pusher may have raced the
                // sleeping flag. The handshake (pushers notify under
                // the gate whenever `sleeping` is set) makes lost
                // wakeups impossible, so the timeout is only a safety
                // net — long enough that an idle log costs no
                // measurable CPU.
                if shared.head.load(Ordering::Acquire).is_null()
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    shared.wake.wait_for(&mut g, Duration::from_millis(50));
                }
            }
            shared.sleeping.store(false, Ordering::Release);
            continue;
        }
        // Truncation requests split the batch: the frames queued before
        // one are flushed first, then the log is rewritten, then the
        // rest proceeds — FIFO order keeps the on-disk log exactly the
        // acked prefix throughout.
        let mut start = 0;
        for idx in 0..=batch.len() {
            let floor = if idx < batch.len() {
                batch[idx].truncate_below
            } else {
                None
            };
            if idx < batch.len() && floor.is_none() {
                continue;
            }
            for chunk in batch[start..idx].chunks(max_batch) {
                flush_chunk(&shared, &mut file, chunk, sync_all, &obs, token.as_ref());
            }
            if let Some(floor) = floor {
                run_truncation(&shared, &mut file, &dir, floor, &batch[idx]);
            }
            start = idx + 1;
        }
    }
}

/// One group-commit round over `chunk`: write every frame, one fsync,
/// release the acks — or fail the whole chunk and rewind.
fn flush_chunk(
    shared: &Shared,
    file: &mut File,
    chunk: &[Arc<Node>],
    sync_all: bool,
    obs: &Obs,
    token: Option<&finecc_chaos::FaultToken>,
) {
    use finecc_chaos::{FaultKind, Site};
    if shared.failed.load(Ordering::Acquire) {
        fail_nodes(shared, chunk);
        return;
    }
    // The chunk's start offset: on failure the file is rewound
    // here so the on-disk log stays exactly the acked prefix.
    let start_pos = file.stream_position().unwrap_or(u64::MAX);
    let mut records = 0u64;
    let mut bytes_written = 0u64;
    let mut result: io::Result<()> = Ok(());
    let mut crash = false;
    let mut force_sync = false;
    match token.as_ref().and_then(|t| t.fault_at(Site::WalFlushWrite)) {
        Some(FaultKind::IoError) => {
            result = Err(io::Error::other("injected: flusher write error"));
        }
        Some(FaultKind::Crash) => {
            result = Err(io::Error::other("injected: crash in flusher write"));
            crash = true;
        }
        _ => {}
    }
    if result.is_ok() {
        for node in chunk {
            force_sync |= node.force_sync;
            if node.bytes.is_empty() {
                continue;
            }
            if let Err(e) = file.write_all(&node.bytes) {
                result = Err(e);
                break;
            }
            bytes_written += node.bytes.len() as u64;
            records += 1;
        }
    }
    if result.is_ok() && (sync_all || force_sync) {
        match token.as_ref().and_then(|t| t.fault_at(Site::WalFlushFsync)) {
            Some(FaultKind::IoError) => {
                result = Err(io::Error::other("injected: flusher fsync error"));
            }
            Some(FaultKind::Crash) => {
                result = Err(io::Error::other("injected: crash at flusher fsync"));
                crash = true;
            }
            _ => {
                let sync_start = obs.now_ns();
                result = file.sync_data();
                if result.is_ok() {
                    shared.stats.bump_log_fsyncs();
                }
                // Fsync spans are emitted unconditionally when
                // tracing is on (`txn 0` always passes the
                // sampler): there is one flusher, and the fsync
                // cadence is exactly what a group-commit trace
                // is read for. The `oid` slot carries the
                // batch's record count.
                if obs.trace_sampled(0) {
                    let dur = obs.now_ns().saturating_sub(sync_start);
                    obs.emit(EventKind::Fsync, sync_start, dur, 0, records);
                }
            }
        }
    }
    match result {
        Ok(()) => {
            shared.stats.add_log_bytes(bytes_written);
            if records > 0 {
                shared.stats.sample_batch(records);
            }
            let state = if sync_all || force_sync {
                STATE_SYNCED
            } else {
                STATE_WRITTEN
            };
            for node in chunk {
                node.state.store(state, Ordering::Release);
            }
        }
        Err(_) => {
            let failed_records = chunk.iter().filter(|n| !n.bytes.is_empty()).count() as u64;
            shared.stats.add_append_failures(failed_records);
            // Rewind the partially written batch: none of its
            // records was acked, so none may survive into
            // recovery. A clean rewind makes the failure
            // transient — the next batch proceeds normally; a
            // failed rewind (or a simulated crash) poisons the
            // log for good.
            let rolled_back = start_pos != u64::MAX
                && file.set_len(start_pos).is_ok()
                && file.seek(SeekFrom::Start(start_pos)).is_ok()
                && file.sync_data().is_ok();
            if crash || !rolled_back {
                shared.failed.store(true, Ordering::Release);
            }
            if crash {
                if let Some(t) = &token {
                    t.note_crash();
                }
            }
            fail_nodes(shared, chunk);
        }
    }
    let _g = shared.gate.lock();
    shared.acked.notify_all();
}

/// Executes a truncation request on the flusher: sync what is written,
/// rewrite the log atomically, swap the write handle to the new file.
fn run_truncation(shared: &Shared, file: &mut File, dir: &Path, floor: u64, node: &Arc<Node>) {
    if shared.failed.load(Ordering::Acquire) {
        fail_nodes(shared, std::slice::from_ref(node));
        return;
    }
    let result = file
        .sync_data()
        .map_err(|e| (e, false))
        .and_then(|()| rewrite_log(dir, floor));
    match result {
        Ok(removed) => match reopen_log_end(dir) {
            Ok(f) => {
                *file = f;
                shared.stats.sample_truncation(removed);
                node.state.store(STATE_SYNCED, Ordering::Release);
                let _g = shared.gate.lock();
                shared.acked.notify_all();
            }
            Err(_) => {
                // The compacted log landed but the handle swap failed:
                // the old handle points at the unlinked inode, so
                // nothing written through it would survive — poison.
                shared.failed.store(true, Ordering::Release);
                fail_nodes(shared, std::slice::from_ref(node));
            }
        },
        Err((_, poison)) => {
            if poison {
                shared.failed.store(true, Ordering::Release);
            }
            fail_nodes(shared, std::slice::from_ref(node));
        }
    }
}

fn fail_nodes(shared: &Shared, nodes: &[Arc<Node>]) {
    for node in nodes {
        node.state.store(STATE_FAILED, Ordering::Release);
    }
    let _g = shared.gate.lock();
    shared.acked.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogReader;
    use finecc_model::Value;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("finecc-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn image(oid: u64, field: u32, v: i64) -> FieldImage {
        FieldImage {
            oid: Oid(oid),
            field: finecc_model::FieldId(field),
            value: Value::Int(v),
        }
    }

    #[test]
    fn append_sync_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.append_create(0, Oid(1), ClassId(0)).unwrap();
            wal.append_commit(1, TxnId(5), &[image(1, 0, 42)]).unwrap();
            wal.append_skip(2).unwrap();
            let s = wal.stats().snapshot();
            assert_eq!(s.appends, 3);
            assert!(s.log_fsyncs >= 1, "wal-sync appends were fsynced");
            assert!(s.log_bytes > 0);
            assert!(s.group_commit_batches >= 1);
        }
        // Reopen: records intact, max ts found.
        let wal = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.max_logged_ts(), 2);
        drop(wal);
        let bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        let records: Vec<LogRecord> = LogReader::new(&bytes).unwrap().map(|(_, r)| r).collect();
        assert_eq!(records.len(), 3);
        assert!(matches!(records[2], LogRecord::Skip { ts: 2 }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn async_level_flushes_on_drop_and_sync() {
        let dir = tmpdir("async");
        let wal = Wal::open(
            &dir,
            WalConfig {
                level: DurabilityLevel::Wal,
                max_batch: 4,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            wal.append_commit(i + 1, TxnId(i), &[image(1, 0, i as i64)])
                .unwrap();
        }
        wal.sync().unwrap();
        let bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        assert_eq!(LogReader::new(&bytes).unwrap().count(), 10);
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_truncates_torn_tail() {
        let dir = tmpdir("torn");
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.append_commit(1, TxnId(1), &[image(1, 0, 7)]).unwrap();
            wal.append_commit(2, TxnId(2), &[image(1, 1, 8)]).unwrap();
        }
        let path = Wal::log_path(&dir);
        // Simulate a crash mid-append: garbage tail bytes.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF, 0x13, 0x37]).unwrap();
        }
        let wal = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.max_logged_ts(), 2);
        wal.append_commit(3, TxnId(3), &[image(1, 0, 9)]).unwrap();
        drop(wal);
        let bytes = LogReader::read_file(&path).unwrap();
        let mut reader = LogReader::new(&bytes).unwrap();
        let records: Vec<LogRecord> = reader.by_ref().map(|(_, r)| r).collect();
        assert_eq!(records.len(), 3, "torn tail gone, new record readable");
        assert!(!reader.tail_torn());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_mode_roundtrip() {
        let dir = tmpdir("inline");
        {
            let wal = Wal::open(
                &dir,
                WalConfig {
                    inline: true,
                    ..WalConfig::default()
                },
            )
            .unwrap();
            wal.append_commit(1, TxnId(1), &[image(1, 0, 11)]).unwrap();
            wal.append_skip(2).unwrap();
            wal.append_commit(3, TxnId(2), &[image(1, 0, 12)]).unwrap();
            wal.sync().unwrap();
            let s = wal.stats().snapshot();
            assert_eq!(s.appends, 3);
            assert!(s.log_fsyncs >= 2, "one fsync per waited commit");
            assert_eq!(s.append_failures, 0);
            assert!(s.log_bytes > 0);
        }
        let wal = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.max_logged_ts(), 3);
        drop(wal);
        let bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        assert_eq!(LogReader::new(&bytes).unwrap().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flusher_fault_fails_batch_then_recovers() {
        use finecc_chaos::{ChaosConfig, FaultKind, FaultPlan, FaultSpec, Site};
        let dir = tmpdir("flusher-fault");
        let handle = finecc_chaos::install(ChaosConfig {
            faults: FaultPlan::of([FaultSpec::once(Site::WalFlushFsync, 0, FaultKind::IoError)]),
            ..ChaosConfig::default()
        });
        {
            // Fault-only harness: no scheduling, so the flusher path
            // (not inline mode) is exercised through the token.
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            let err = wal
                .append_commit(1, TxnId(1), &[image(1, 0, 1)])
                .expect_err("first batch hits the injected fsync error");
            assert!(err.to_string().contains("rolled back"), "transient: {err}");
            // The log degraded gracefully: the next append succeeds.
            wal.append_commit(2, TxnId(2), &[image(1, 0, 2)]).unwrap();
            let s = wal.stats().snapshot();
            assert_eq!(s.append_failures, 1);
        }
        drop(handle);
        // Only the acked record survived — the failed batch was rewound.
        let bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        let records: Vec<LogRecord> = LogReader::new(&bytes).unwrap().map(|(_, r)| r).collect();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], LogRecord::Commit { ts: 2, .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_crash_mid_append_tears_and_poisons() {
        use finecc_chaos::{ChaosConfig, FaultKind, FaultPlan, FaultSpec, Site};
        let dir = tmpdir("inline-crash");
        let handle = finecc_chaos::install(ChaosConfig {
            faults: FaultPlan::of([FaultSpec::once(Site::WalAppend, 1, FaultKind::Crash)]),
            ..ChaosConfig::default()
        });
        {
            let wal = Wal::open(
                &dir,
                WalConfig {
                    inline: true,
                    ..WalConfig::default()
                },
            )
            .unwrap();
            wal.append_commit(1, TxnId(1), &[image(1, 0, 1)]).unwrap();
            wal.append_commit(2, TxnId(2), &[image(1, 0, 2)])
                .expect_err("second append crashes mid-frame");
            assert!(finecc_chaos::crashed());
            wal.append_commit(3, TxnId(3), &[image(1, 0, 3)])
                .expect_err("log poisoned after the crash");
            // Only the crashed append counts: the third was rejected
            // up front by the poison check, no I/O was attempted.
            assert_eq!(wal.stats().snapshot().append_failures, 1);
        }
        drop(handle);
        // Reopen: the torn half-frame is truncated, the acked prefix
        // survives.
        let wal = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.max_logged_ts(), 1);
        drop(wal);
        let bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        let mut reader = LogReader::new(&bytes).unwrap();
        assert_eq!(reader.by_ref().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn read_log_timestamps(dir: &Path) -> Vec<u64> {
        let bytes = LogReader::read_file(&Wal::log_path(dir)).unwrap();
        LogReader::new(&bytes)
            .unwrap()
            .map(|(_, r)| r.order_ts())
            .collect()
    }

    #[test]
    fn truncate_below_compacts_flusher_and_inline_modes() {
        for inline in [false, true] {
            let dir = tmpdir(if inline {
                "trunc-inline"
            } else {
                "trunc-flush"
            });
            {
                let wal = Wal::open(
                    &dir,
                    WalConfig {
                        inline,
                        ..WalConfig::default()
                    },
                )
                .unwrap();
                for ts in 1..=10u64 {
                    wal.append_commit(ts, TxnId(ts), &[image(1, 0, ts as i64)])
                        .unwrap();
                }
                wal.truncate_below(6).unwrap();
                // The log stays appendable after the handle swap.
                wal.append_commit(11, TxnId(11), &[image(1, 0, 11)])
                    .unwrap();
                let s = wal.stats().snapshot();
                assert_eq!(s.truncations, 1, "inline={inline}");
                assert!(s.truncated_bytes > 0, "inline={inline}");
            }
            assert_eq!(
                read_log_timestamps(&dir),
                vec![6, 7, 8, 9, 10, 11],
                "frames below the floor gone, floor frame kept, inline={inline}"
            );
            // Reopen resumes cleanly on the compacted log.
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            assert_eq!(wal.max_logged_ts(), 11);
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn prune_checkpoints_keeps_newest_and_open_sweeps_stale_tmps() {
        use finecc_model::{FieldType, SchemaBuilder};
        let dir = tmpdir("retain");
        let mut b = SchemaBuilder::new();
        b.class("a").field("x", FieldType::Int);
        let schema = b.finish().unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            for ts in [1u64, 5, 9] {
                wal.write_checkpoint(&CheckpointData {
                    ckpt_ts: ts,
                    replay_from: ts + 1,
                    next_oid: 1,
                    schema: &schema,
                    instances: vec![],
                })
                .unwrap();
            }
            let removed = wal.prune_checkpoints().unwrap();
            assert_eq!(removed, 1, "3 written, retention keeps 2");
            assert_eq!(wal.stats().snapshot().checkpoints_removed, 1);
            let kept: Vec<u64> = checkpoint::list(&dir)
                .unwrap()
                .into_iter()
                .map(|(ts, _)| ts)
                .collect();
            assert_eq!(kept, vec![5, 9], "the newest two survive");
        }
        // A crash between temp-create and rename leaves a stale tmp;
        // the next open sweeps it (and a stale truncation tmp too).
        let stale = dir.join(format!("{}.tmp", checkpoint::file_name(13)));
        std::fs::write(&stale, b"half a checkpoint").unwrap();
        std::fs::write(dir.join("wal.log.tmp"), b"half a truncation").unwrap();
        let wal = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(!stale.exists(), "stale checkpoint tmp swept on open");
        assert!(!dir.join("wal.log.tmp").exists(), "stale log tmp swept");
        assert_eq!(
            checkpoint::list(&dir).unwrap().len(),
            2,
            "real checkpoints untouched"
        );
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_appends() {
        let dir = tmpdir("group");
        let wal = Arc::new(Wal::open(&dir, WalConfig::default()).unwrap());
        let threads = 8;
        let per = 25u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per {
                        let ts = 1 + t * per + i;
                        wal.append_commit(ts, TxnId(t), &[image(t, 0, ts as i64)])
                            .unwrap();
                    }
                });
            }
        });
        let s = wal.stats().snapshot();
        assert_eq!(s.appends, threads * per);
        assert_eq!(s.group_commit_records, threads * per);
        assert!(
            s.log_fsyncs <= s.appends,
            "group commit never syncs more than once per record"
        );
        drop(wal);
        let bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        assert_eq!(
            LogReader::new(&bytes).unwrap().count() as u64,
            threads * per
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
