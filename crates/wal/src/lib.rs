//! # finecc-wal — field-granular write-ahead logging
//!
//! The durability subsystem under the schemes: a binary **redo log**
//! whose record body is the access-vector *Write* projection per field
//! (the paper's recovery remark — before-images are projections through
//! access vectors — applied to the redo side: log records carry exactly
//! the `(oid, field, after-image)` triples a transaction's write
//! projection touched, shared with `finecc_store::UndoLog` through the
//! [`FieldImage`](finecc_store::FieldImage) type, so undo images and
//! log payloads come from one projection path).
//!
//! Three pieces:
//!
//! * **The append pipeline** ([`Wal`]) — writers enqueue serialized
//!   records onto a lock-free stack; a dedicated flusher batches,
//!   writes, fsyncs once per batch, and releases commit acks (**group
//!   commit**). The [`DurabilityLevel`] is a scheme parameter like the
//!   isolation level: `none` (no log), `wal` (logged, async), and
//!   `wal-sync` (commit acks only after its record is fsynced).
//! * **Fuzzy checkpoints** ([`checkpoint`]) — a consistent cut of
//!   schema + base store + live chains at a watermark-consistent
//!   timestamp, produced through the MVCC read path without stopping
//!   writers, written atomically (temp + rename).
//! * **Recovery** ([`recover_database`]) — newest checkpoint + replay
//!   of the log's intact prefix in commit-timestamp order, restoring
//!   extents, field values, the OID allocator, and the clock/watermark
//!   restore point (skip records keep SSI-refused timestamp holes from
//!   being reused).
//!
//! The version heap wires this in *after* the commit timestamp is
//! drawn and *before* watermark publication, so the existing
//! read-your-own-commits guarantee also implies **durable before
//! visible**: no snapshot ever observes a commit the log could lose.

pub mod checkpoint;
pub mod log;
pub mod record;
pub mod recover;
pub mod stats;

pub use checkpoint::{CheckpointData, CheckpointImage, InstanceImage};
pub use log::{DurabilityLevel, Wal, WalConfig};
pub use record::{LogReader, LogRecord};
pub use recover::{recover_database, recover_schema, recovery_floor, RecoveryInfo};
pub use stats::{WalStats, WalStatsSnapshot};
