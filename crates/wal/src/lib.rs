//! # finecc-wal — field-granular write-ahead logging
//!
//! The durability subsystem under the schemes: a binary **redo log**
//! whose record body is the access-vector *Write* projection per field
//! (the paper's recovery remark — before-images are projections through
//! access vectors — applied to the redo side: log records carry exactly
//! the `(oid, field, after-image)` triples a transaction's write
//! projection touched, shared with `finecc_store::UndoLog` through the
//! [`FieldImage`](finecc_store::FieldImage) type, so undo images and
//! log payloads come from one projection path).
//!
//! Three pieces:
//!
//! * **The append pipeline** ([`Wal`]) — writers enqueue serialized
//!   records onto a lock-free stack; a dedicated flusher batches,
//!   writes, fsyncs once per batch, and releases commit acks (**group
//!   commit**). The [`DurabilityLevel`] is a scheme parameter like the
//!   isolation level: `none` (no log), `wal` (logged, async), and
//!   `wal-sync` (commit acks only after its record is fsynced).
//! * **Fuzzy checkpoints** ([`checkpoint`]) — a consistent cut of
//!   schema + base store + live chains at a watermark-consistent
//!   timestamp, produced through the MVCC read path without stopping
//!   writers, written atomically (temp + fsync + rename + directory
//!   fsync), every stage covered by a `finecc_chaos` fault probe.
//! * **Recovery** ([`recover_database`]) — newest checkpoint +
//!   **streaming** replay of the log's intact prefix in
//!   commit-timestamp order through a bounded reorder window (memory
//!   is O(window), not O(log)), restoring extents, field values, the
//!   OID allocator, and the clock/watermark restore point (skip
//!   records keep SSI-refused timestamp holes from being reused).
//!   Recovery is **restartable**: it never writes to the log
//!   directory, so a crash at any of its fault probes followed by a
//!   second recovery yields the same acked-prefix state. Failures are
//!   typed ([`RecoveryError`]) and carry the offending file and byte
//!   offset.
//! * **Truncation & retention** ([`Wal::truncate_below`],
//!   [`Wal::prune_checkpoints`]) — after a durable checkpoint at
//!   `ckpt_ts`, frames strictly below `ckpt_ts` are atomically
//!   rewritten out of the log and checkpoints beyond the newest
//!   [`WalConfig::retain_checkpoints`] (plus any stale `.tmp` files)
//!   are deleted — only ever *after* the newer checkpoint's rename is
//!   directory-fsynced, so log size stays bounded across
//!   checkpoint cycles without ever removing a frame at or above the
//!   recovery floor.
//!
//! The version heap wires this in *after* the commit timestamp is
//! drawn and *before* watermark publication, so the existing
//! read-your-own-commits guarantee also implies **durable before
//! visible**: no snapshot ever observes a commit the log could lose.

pub mod checkpoint;
pub mod error;
pub mod log;
pub mod record;
pub mod recover;
pub mod stats;

pub use checkpoint::{CheckpointData, CheckpointImage, InstanceImage};
pub use error::{as_recovery_error, RecoveryError};
pub use log::{DurabilityLevel, Wal, WalConfig};
pub use record::{FrameStream, LogReader, LogRecord};
pub use recover::{
    recover_database, recover_database_with_window, recover_schema, recovery_floor, RecoveryInfo,
    DEFAULT_REORDER_WINDOW,
};
pub use stats::{WalStats, WalStatsSnapshot};
