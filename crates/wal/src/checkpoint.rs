//! Checkpoint files: a consistent base image the log replays on top of.
//!
//! A checkpoint persists everything the log alone cannot reconstruct:
//! the **schema** (serialized structurally — classes in declaration
//! order with parents, fields and method signatures — and rebuilt
//! through `SchemaBuilder`, whose id assignment is deterministic, so
//! the recovered `ClassId`/`FieldId` spaces are bit-identical to the
//! original and every OID/field reference in the log resolves), the
//! **OID allocator**, and one **instance image** per live object with
//! its field values as of the checkpoint timestamp.
//!
//! The MVCC heap produces these images *fuzzily*: it pins a snapshot
//! and reads every field through the latch-free multi-version read
//! path, so writers keep committing while the checkpoint streams out —
//! the version chains are what make a consistent cut possible without
//! stopping anyone. Lock schemes, which have no time travel, checkpoint
//! only at quiescent points (in practice: the genesis checkpoint
//! written when durability is attached).
//!
//! Files are named `checkpoint-<ts>.ckpt` (zero-padded so lexical order
//! is numeric order), written to a temp file and renamed into place —
//! a checkpoint is either entirely present or absent — and carry a
//! checksum; recovery uses the newest file that validates.

use crate::error::RecoveryError;
use crate::record::{checksum, put_str, put_u32, put_u64, put_value, Cursor};
use finecc_model::{ClassId, FieldType, Oid, Schema, SchemaBuilder, Value};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"FCCKPT1\0";

const TY_INT: u8 = 0;
const TY_BOOL: u8 = 1;
const TY_FLOAT: u8 = 2;
const TY_STR: u8 = 3;
const TY_REF: u8 = 4;

/// One checkpointed object: its identity, proper class, and field
/// values (in the class's `all_fields` order) as of the checkpoint
/// timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceImage {
    /// The object.
    pub oid: Oid,
    /// Its proper class.
    pub class: ClassId,
    /// One value per visible field, in `ClassInfo::all_fields` order.
    pub values: Vec<Value>,
}

/// What a checkpoint writer hands to [`crate::Wal::write_checkpoint`].
pub struct CheckpointData<'a> {
    /// The snapshot timestamp the instance images reflect.
    pub ckpt_ts: u64,
    /// First log timestamp recovery must replay on top of this image
    /// (`ckpt_ts + 1` for the MVCC heap; the commit-sequence floor for
    /// lock schemes).
    pub replay_from: u64,
    /// The OID allocator's next value.
    pub next_oid: u64,
    /// The schema to serialize.
    pub schema: &'a Schema,
    /// The live instances at `ckpt_ts`.
    pub instances: Vec<InstanceImage>,
}

/// A decoded checkpoint.
pub struct CheckpointImage {
    /// The snapshot timestamp the images reflect.
    pub ckpt_ts: u64,
    /// First log timestamp to replay.
    pub replay_from: u64,
    /// The OID allocator's next value.
    pub next_oid: u64,
    /// The rebuilt schema (ids identical to the original's).
    pub schema: Schema,
    /// The instance images.
    pub instances: Vec<InstanceImage>,
}

fn encode_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.class_count() as u32);
    for ci in schema.classes() {
        put_str(out, &ci.name);
        put_u32(out, ci.parents.len() as u32);
        for &p in &ci.parents {
            put_str(out, &schema.class(p).name);
        }
        put_u32(out, ci.own_fields.len() as u32);
        for &f in &ci.own_fields {
            let fi = schema.field(f);
            put_str(out, &fi.name);
            match fi.ty {
                FieldType::Int => out.push(TY_INT),
                FieldType::Bool => out.push(TY_BOOL),
                FieldType::Float => out.push(TY_FLOAT),
                FieldType::Str => out.push(TY_STR),
                FieldType::Ref(c) => {
                    out.push(TY_REF);
                    put_str(out, &schema.class(c).name);
                }
            }
        }
        put_u32(out, ci.own_methods.len() as u32);
        for &m in &ci.own_methods {
            let mi = schema.method(m);
            put_str(out, &mi.sig.name);
            put_u32(out, mi.sig.params.len() as u32);
            for p in &mi.sig.params {
                put_str(out, p);
            }
        }
    }
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt checkpoint: {what}"),
    )
}

fn decode_schema(c: &mut Cursor<'_>) -> io::Result<Schema> {
    let n = c.u32()? as usize;
    let mut b = SchemaBuilder::new();
    for _ in 0..n {
        let name = c.str()?;
        let n_parents = c.u32()? as usize;
        let mut parents = Vec::with_capacity(n_parents);
        for _ in 0..n_parents {
            parents.push(c.str()?);
        }
        let n_fields = c.u32()? as usize;
        let mut fields: Vec<(String, Option<FieldType>, Option<String>)> =
            Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let fname = c.str()?;
            match c.u8()? {
                TY_INT => fields.push((fname, Some(FieldType::Int), None)),
                TY_BOOL => fields.push((fname, Some(FieldType::Bool), None)),
                TY_FLOAT => fields.push((fname, Some(FieldType::Float), None)),
                TY_STR => fields.push((fname, Some(FieldType::Str), None)),
                TY_REF => {
                    let target = c.str()?;
                    fields.push((fname, None, Some(target)));
                }
                _ => return Err(corrupt("field type tag")),
            }
        }
        let n_methods = c.u32()? as usize;
        let mut methods = Vec::with_capacity(n_methods);
        for _ in 0..n_methods {
            let mname = c.str()?;
            let n_params = c.u32()? as usize;
            let mut params = Vec::with_capacity(n_params);
            for _ in 0..n_params {
                params.push(c.str()?);
            }
            methods.push((mname, params));
        }
        let decl = b.class(&name);
        for p in &parents {
            decl.inherits(p);
        }
        for (fname, ty, ref_target) in &fields {
            match (ty, ref_target) {
                (Some(ty), _) => {
                    decl.field(fname, *ty);
                }
                (None, Some(target)) => {
                    decl.ref_field(fname, target);
                }
                (None, None) => unreachable!("field has a type or a ref target"),
            }
        }
        for (mname, params) in &methods {
            let param_refs: Vec<&str> = params.iter().map(String::as_str).collect();
            decl.method(mname, &param_refs);
        }
    }
    b.finish()
        .map_err(|e| corrupt(&format!("schema rebuild: {e}")))
}

fn encode(data: &CheckpointData<'_>) -> Vec<u8> {
    let mut body = Vec::with_capacity(4096);
    put_u64(&mut body, data.ckpt_ts);
    put_u64(&mut body, data.replay_from);
    put_u64(&mut body, data.next_oid);
    encode_schema(&mut body, data.schema);
    put_u64(&mut body, data.instances.len() as u64);
    for inst in &data.instances {
        put_u64(&mut body, inst.oid.raw());
        put_u32(&mut body, inst.class.raw());
        put_u32(&mut body, inst.values.len() as u32);
        for v in &inst.values {
            put_value(&mut body, v);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 20);
    out.extend_from_slice(CKPT_MAGIC);
    put_u64(&mut out, body.len() as u64);
    put_u32(&mut out, checksum(&body));
    out.extend_from_slice(&body);
    out
}

fn decode(bytes: &[u8]) -> io::Result<CheckpointImage> {
    if bytes.len() < CKPT_MAGIC.len() + 12 || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(corrupt("magic"));
    }
    let mut header = Cursor::new(&bytes[CKPT_MAGIC.len()..]);
    let len = header.u64()? as usize;
    let sum = header.u32()?;
    let body = bytes
        .get(CKPT_MAGIC.len() + 12..CKPT_MAGIC.len() + 12 + len)
        .ok_or_else(|| corrupt("short body"))?;
    if checksum(body) != sum {
        return Err(corrupt("checksum"));
    }
    let mut c = Cursor::new(body);
    let ckpt_ts = c.u64()?;
    let replay_from = c.u64()?;
    let next_oid = c.u64()?;
    let schema = decode_schema(&mut c)?;
    let n = c.u64()? as usize;
    let mut instances = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let oid = Oid(c.u64()?);
        let class = ClassId(c.u32()?);
        let n_values = c.u32()? as usize;
        let mut values = Vec::with_capacity(n_values.min(1024));
        for _ in 0..n_values {
            values.push(c.value()?);
        }
        instances.push(InstanceImage { oid, class, values });
    }
    if !c.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(CheckpointImage {
        ckpt_ts,
        replay_from,
        next_oid,
        schema,
        instances,
    })
}

/// The checkpoint file name for a timestamp (zero-padded: lexical order
/// is numeric order).
pub fn file_name(ts: u64) -> String {
    format!("checkpoint-{ts:020}.ckpt")
}

/// An injected checkpoint/recovery fault, file context attached.
fn injected(file: &Path, what: &str) -> RecoveryError {
    RecoveryError::Io {
        file: file.to_path_buf(),
        source: format!("injected: {what}"),
    }
}

/// Writes a checkpoint atomically (temp file, fsync, rename, directory
/// fsync — the rename itself must be persisted, or a power loss could
/// erase the checkpoint dirent after commits were acked against it).
/// Returns the final path.
///
/// Every pipeline stage carries a `finecc_chaos` fault probe
/// ([`Site::CHECKPOINT`](finecc_chaos::Site::CHECKPOINT)): an injected
/// error or crash leaves the directory exactly as a real failure at
/// that stage would — a half-written temp file after `ckpt_tmp_write`,
/// a complete-but-unrenamed temp after `ckpt_fsync`/`ckpt_rename`, and
/// a lost dirent (the renamed file removed again) after a crash at
/// `ckpt_dir_fsync`. A failed `write` never ran retention or
/// truncation, so the previous checkpoint and the full log are still
/// in place and recovery is unaffected.
pub fn write(dir: &Path, data: &CheckpointData<'_>) -> io::Result<PathBuf> {
    use finecc_chaos::{FaultKind, Site};
    let path = dir.join(file_name(data.ckpt_ts));
    let tmp = dir.join(format!("{}.tmp", file_name(data.ckpt_ts)));
    match finecc_chaos::fault_at(Site::CkptEncode) {
        Some(FaultKind::IoError) => return Err(injected(&path, "checkpoint encode error").into()),
        Some(FaultKind::Crash) => {
            finecc_chaos::note_crash();
            return Err(injected(&path, "crash before checkpoint encode").into());
        }
        _ => {}
    }
    let bytes = encode(data);
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| RecoveryError::io(&tmp, e))?;
        match finecc_chaos::fault_at(Site::CkptTmpWrite) {
            Some(FaultKind::IoError) => {
                // A realistic partial write: half the image reaches the
                // temp file and stays there (the stale-tmp cleanup on
                // the next `Wal::open` removes it).
                let _ = f.write_all(&bytes[..bytes.len() / 2]);
                return Err(injected(&tmp, "checkpoint temp write error").into());
            }
            Some(FaultKind::Crash) => {
                let _ = f.write_all(&bytes[..bytes.len() / 2]);
                let _ = f.sync_data();
                finecc_chaos::note_crash();
                return Err(injected(&tmp, "crash mid checkpoint temp write").into());
            }
            _ => {}
        }
        f.write_all(&bytes)
            .map_err(|e| RecoveryError::io(&tmp, e))?;
        match finecc_chaos::fault_at(Site::CkptFsync) {
            Some(FaultKind::IoError) => return Err(injected(&tmp, "checkpoint fsync error").into()),
            Some(FaultKind::Crash) => {
                finecc_chaos::note_crash();
                return Err(injected(&tmp, "crash at checkpoint fsync").into());
            }
            _ => {}
        }
        f.sync_data().map_err(|e| RecoveryError::io(&tmp, e))?;
    }
    match finecc_chaos::fault_at(Site::CkptRename) {
        Some(FaultKind::IoError) => return Err(injected(&path, "checkpoint rename error").into()),
        Some(FaultKind::Crash) => {
            finecc_chaos::note_crash();
            return Err(injected(&path, "crash before checkpoint rename").into());
        }
        _ => {}
    }
    std::fs::rename(&tmp, &path).map_err(|e| RecoveryError::io(&path, e))?;
    match finecc_chaos::fault_at(Site::CkptDirFsync) {
        Some(FaultKind::IoError) => {
            return Err(injected(&path, "checkpoint directory fsync error").into())
        }
        Some(FaultKind::Crash) => {
            // The power cut the directory fsync exists to defend
            // against: the rename reached the page cache but not the
            // disk, so after the "reboot" the dirent is gone.
            let _ = std::fs::remove_file(&path);
            finecc_chaos::note_crash();
            return Err(injected(&path, "crash at checkpoint directory fsync").into());
        }
        _ => {}
    }
    crate::log::fsync_dir(dir).map_err(|e| RecoveryError::io(dir, e))?;
    Ok(path)
}

/// Removes all but the newest `keep` checkpoints (at least one is
/// always kept). Returns how many files were removed. Callers sequence
/// this strictly *after* [`write()`] returns — i.e. after the newer
/// checkpoint's rename is directory-fsynced — so a crash anywhere in
/// between still leaves a durable checkpoint on disk.
pub fn retain(dir: &Path, keep: usize) -> io::Result<u64> {
    let all = list(dir)?;
    let keep = keep.max(1);
    if all.len() <= keep {
        return Ok(0);
    }
    let mut removed = 0;
    for (_, path) in &all[..all.len() - keep] {
        std::fs::remove_file(path).map_err(|e| RecoveryError::io(path, e))?;
        removed += 1;
    }
    crate::log::fsync_dir(dir)?;
    Ok(removed)
}

/// Deletes stale `checkpoint-*.ckpt.tmp` files — a crash between the
/// temp-file create and the rename leaves one behind forever otherwise.
/// Runs on every [`crate::Wal::open`]. Returns how many were removed.
pub fn remove_stale_tmp(dir: &Path) -> io::Result<u64> {
    let mut removed = 0;
    if !dir.exists() {
        return Ok(0);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("checkpoint-") && name.ends_with(".ckpt.tmp") {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    if removed > 0 {
        crate::log::fsync_dir(dir)?;
    }
    Ok(removed)
}

/// Lists checkpoint files in a directory, ascending by timestamp.
pub fn list(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(ts) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((ts, entry.path()));
    }
    out.sort_unstable_by_key(|&(ts, _)| ts);
    Ok(out)
}

/// Loads the newest checkpoint that validates (a torn or corrupt
/// newest file falls back to the one before it). `None` if the
/// directory holds no checkpoint at all; if checkpoints exist but
/// *none* validates, the newest one's corruption is the error.
///
/// Each candidate read carries a fault probe at
/// [`Site::RecoverCkptDecode`](finecc_chaos::Site::RecoverCkptDecode),
/// so chaos scenarios can fail or crash recovery before it has a base
/// image.
pub fn read_latest(dir: &Path) -> Result<Option<CheckpointImage>, RecoveryError> {
    use finecc_chaos::{FaultKind, Site};
    let mut first_corrupt: Option<RecoveryError> = None;
    for (_, path) in list(dir)
        .map_err(|e| RecoveryError::io(dir, e))?
        .into_iter()
        .rev()
    {
        match finecc_chaos::fault_at(Site::RecoverCkptDecode) {
            Some(FaultKind::IoError) => return Err(injected(&path, "checkpoint read error")),
            Some(FaultKind::Crash) => {
                finecc_chaos::note_crash();
                return Err(injected(&path, "crash during checkpoint decode"));
            }
            _ => {}
        }
        let mut bytes = Vec::new();
        std::fs::File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| RecoveryError::io(&path, e))?;
        match decode(&bytes) {
            Ok(img) => return Ok(Some(img)),
            Err(e) => {
                first_corrupt.get_or_insert(RecoveryError::CorruptCheckpoint {
                    file: path,
                    what: e.to_string(),
                });
                continue;
            }
        }
    }
    match first_corrupt {
        Some(e) => Err(e),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::FieldId;

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("base")
            .field("x", FieldType::Int)
            .ref_field("link", "sub")
            .method("m1", &["p1"]);
        b.class("sub")
            .inherits("base")
            .field("s", FieldType::Str)
            .field("f", FieldType::Float)
            .method("m1", &["p1"])
            .method("m2", &[]);
        b.class("other").field("b", FieldType::Bool);
        b.finish().unwrap()
    }

    #[test]
    fn schema_rebuild_preserves_ids() {
        let schema = sample_schema();
        let mut body = Vec::new();
        encode_schema(&mut body, &schema);
        let rebuilt = decode_schema(&mut Cursor::new(&body)).unwrap();
        assert_eq!(rebuilt.class_count(), schema.class_count());
        assert_eq!(rebuilt.field_count(), schema.field_count());
        assert_eq!(rebuilt.method_count(), schema.method_count());
        for ci in schema.classes() {
            let rid = rebuilt.class_by_name(&ci.name).unwrap();
            assert_eq!(rid, ci.id, "class ids deterministic");
            assert_eq!(rebuilt.class(rid).all_fields, ci.all_fields);
            for &f in &ci.own_fields {
                let fi = schema.field(f);
                assert_eq!(rebuilt.resolve_field(rid, &fi.name), Some(f));
                assert_eq!(rebuilt.field(f).ty, fi.ty);
            }
        }
    }

    #[test]
    fn checkpoint_roundtrip_atomic_write() {
        let schema = sample_schema();
        let sub = schema.class_by_name("sub").unwrap();
        let data = CheckpointData {
            ckpt_ts: 17,
            replay_from: 18,
            next_oid: 42,
            schema: &schema,
            instances: vec![InstanceImage {
                oid: Oid(3),
                class: sub,
                values: vec![
                    Value::Int(1),
                    Value::Ref(Oid(3)),
                    Value::str("hey"),
                    Value::Float(2.5),
                ],
            }],
        };
        let dir = std::env::temp_dir().join(format!("finecc-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = write(&dir, &data).unwrap();
        assert!(path.ends_with(file_name(17)));
        assert!(
            std::fs::read_dir(&dir).unwrap().count() == 1,
            "no temp left"
        );
        let img = read_latest(&dir).unwrap().unwrap();
        assert_eq!(img.ckpt_ts, 17);
        assert_eq!(img.replay_from, 18);
        assert_eq!(img.next_oid, 42);
        assert_eq!(img.instances, data.instances);
        assert_eq!(
            img.schema.resolve_field(sub, "s"),
            schema.resolve_field(sub, "s")
        );
        // A corrupt newer checkpoint falls back to the intact one.
        std::fs::write(dir.join(file_name(99)), b"garbage").unwrap();
        let img = read_latest(&dir).unwrap().unwrap();
        assert_eq!(img.ckpt_ts, 17);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn field_id_stability_matters_for_log_replay() {
        // The property recovery rests on: a FieldId recorded in the log
        // resolves to the same declared field after rebuild.
        let schema = sample_schema();
        let mut body = Vec::new();
        encode_schema(&mut body, &schema);
        let rebuilt = decode_schema(&mut Cursor::new(&body)).unwrap();
        let base = schema.class_by_name("base").unwrap();
        let x: FieldId = schema.resolve_field(base, "x").unwrap();
        assert_eq!(rebuilt.field(x).name, "x");
    }
}
