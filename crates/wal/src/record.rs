//! The binary log-record format.
//!
//! A log file is a magic header followed by a sequence of *frames*:
//!
//! ```text
//! [body_len: u32 LE] [checksum: u32 LE] [body: body_len bytes]
//! ```
//!
//! The checksum is FNV-1a/64 of the body, folded to 32 bits, so a torn
//! final frame — short body, garbage length, bit rot — is detected and
//! replay stops cleanly at the last intact record. The body starts with
//! a kind tag:
//!
//! * **Commit** — one committed transaction: commit timestamp, writer
//!   id, and the access-vector *Write* projection as a list of
//!   [`FieldImage`] after-images. This is the paper's recovery remark
//!   turned into the redo format: the record body is *per-field*, not
//!   per-page or per-object, so the log carries exactly what the
//!   transaction's write projection touched.
//! * **Skip** — a commit timestamp drawn from the clock but refused by
//!   SSI validation after the draw. Nothing was flipped at it; recovery
//!   must still account for it so the restored clock never reuses the
//!   hole and the restored watermark prefix stays dense.
//! * **Create** / **Delete** — extent events (object birth/death bypass
//!   the version chains; see the ROADMAP's versioned-extents item).
//!   They carry the publication watermark observed at the event
//!   (`as_of`) purely to order them against commit records at replay.
//!
//! Values are encoded tag-prefixed; strings are length-prefixed UTF-8.

use crate::error::RecoveryError;
use finecc_model::{ClassId, FieldId, Oid, TxnId, Value};
use finecc_store::FieldImage;
use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening every log file.
pub const LOG_MAGIC: &[u8; 8] = b"FCWAL01\0";

const KIND_COMMIT: u8 = 1;
const KIND_SKIP: u8 = 2;
const KIND_CREATE: u8 = 3;
const KIND_DELETE: u8 = 4;

const TAG_NIL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_REF: u8 = 5;

/// One decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// A committed transaction's redo images.
    Commit {
        /// The commit timestamp (mvcc) or commit sequence (lock
        /// schemes) that serializes this transaction.
        ts: u64,
        /// The committing transaction.
        txn: TxnId,
        /// After-images of every field the transaction wrote — the
        /// *Write* part of its access-vector projection.
        writes: Vec<FieldImage>,
    },
    /// A drawn-but-refused commit timestamp (SSI validation failure
    /// after the clock draw). Keeps the recovered clock/watermark free
    /// of reusable holes.
    Skip {
        /// The refused timestamp.
        ts: u64,
    },
    /// An object was created.
    Create {
        /// Publication watermark observed at creation (replay ordering
        /// against commit records only).
        as_of: u64,
        /// The new object's identifier.
        oid: Oid,
        /// Its proper class.
        class: ClassId,
    },
    /// An object was deleted.
    Delete {
        /// Publication watermark observed at deletion.
        as_of: u64,
        /// The deleted object.
        oid: Oid,
    },
}

impl LogRecord {
    /// The replay ordering key: commit records sort by their commit
    /// timestamp, extent records by the watermark they observed.
    pub fn order_ts(&self) -> u64 {
        match self {
            LogRecord::Commit { ts, .. } | LogRecord::Skip { ts } => *ts,
            LogRecord::Create { as_of, .. } | LogRecord::Delete { as_of, .. } => *as_of,
        }
    }
}

/// FNV-1a/64 folded to 32 bits.
pub(crate) fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ((h >> 32) ^ h) as u32
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Nil => out.push(TAG_NIL),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_u64(out, *i as u64);
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Ref(o) => {
            out.push(TAG_REF);
            put_u64(out, o.raw());
        }
    }
}

/// A bounds-checked little-endian cursor over a decoded body.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt record: {what}"),
    )
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| corrupt("u8"))?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        let end = self.pos.checked_add(4).ok_or_else(|| corrupt("u32"))?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| corrupt("u32"))?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        let end = self.pos.checked_add(8).ok_or_else(|| corrupt("u64"))?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| corrupt("u64"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    pub(crate) fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or_else(|| corrupt("string"))?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| corrupt("string"))?;
        self.pos = end;
        String::from_utf8(s.to_vec()).map_err(|_| corrupt("utf8"))
    }

    pub(crate) fn value(&mut self) -> io::Result<Value> {
        Ok(match self.u8()? {
            TAG_NIL => Value::Nil,
            TAG_INT => Value::Int(self.u64()? as i64),
            TAG_BOOL => Value::Bool(self.u8()? != 0),
            TAG_FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            TAG_STR => Value::Str(Arc::from(self.str()?.as_str())),
            TAG_REF => Value::Ref(Oid(self.u64()?)),
            _ => return Err(corrupt("value tag")),
        })
    }
}

/// Encodes a record body (no frame header).
pub(crate) fn encode_body(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match rec {
        LogRecord::Commit { ts, txn, writes } => {
            out.push(KIND_COMMIT);
            put_u64(&mut out, *ts);
            put_u64(&mut out, txn.raw());
            put_u32(&mut out, writes.len() as u32);
            for w in writes {
                put_u64(&mut out, w.oid.raw());
                put_u32(&mut out, w.field.raw());
                put_value(&mut out, &w.value);
            }
        }
        LogRecord::Skip { ts } => {
            out.push(KIND_SKIP);
            put_u64(&mut out, *ts);
        }
        LogRecord::Create { as_of, oid, class } => {
            out.push(KIND_CREATE);
            put_u64(&mut out, *as_of);
            put_u64(&mut out, oid.raw());
            put_u32(&mut out, class.raw());
        }
        LogRecord::Delete { as_of, oid } => {
            out.push(KIND_DELETE);
            put_u64(&mut out, *as_of);
            put_u64(&mut out, oid.raw());
        }
    }
    out
}

/// Frames a record: `[len][checksum][body]`.
pub(crate) fn encode_frame(rec: &LogRecord) -> Vec<u8> {
    let body = encode_body(rec);
    let mut out = Vec::with_capacity(body.len() + 8);
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, checksum(&body));
    out.extend_from_slice(&body);
    out
}

/// Decodes one record body.
pub(crate) fn decode_body(body: &[u8]) -> io::Result<LogRecord> {
    let mut c = Cursor::new(body);
    let rec = match c.u8()? {
        KIND_COMMIT => {
            let ts = c.u64()?;
            let txn = TxnId(c.u64()?);
            let n = c.u32()? as usize;
            let mut writes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let oid = Oid(c.u64()?);
                let field = FieldId(c.u32()?);
                let value = c.value()?;
                writes.push(FieldImage { oid, field, value });
            }
            LogRecord::Commit { ts, txn, writes }
        }
        KIND_SKIP => LogRecord::Skip { ts: c.u64()? },
        KIND_CREATE => LogRecord::Create {
            as_of: c.u64()?,
            oid: Oid(c.u64()?),
            class: ClassId(c.u32()?),
        },
        KIND_DELETE => LogRecord::Delete {
            as_of: c.u64()?,
            oid: Oid(c.u64()?),
        },
        _ => return Err(corrupt("record kind")),
    };
    if !c.is_empty() {
        return Err(corrupt("trailing bytes in body"));
    }
    Ok(rec)
}

/// Iterates the intact records of a log byte stream, stopping cleanly
/// at the first torn or corrupt frame. Each item carries the byte
/// offset just *past* its frame — the crash-point tests truncate the
/// log at every such boundary.
pub struct LogReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// `true` once a torn/corrupt frame ended the iteration with bytes
    /// left over.
    torn: bool,
}

impl<'a> LogReader<'a> {
    /// A reader over a full log file image (header included). Returns
    /// `None` if the magic does not match.
    pub fn new(bytes: &'a [u8]) -> Option<LogReader<'a>> {
        if bytes.len() < LOG_MAGIC.len() || &bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
            return None;
        }
        Some(LogReader {
            bytes,
            pos: LOG_MAGIC.len(),
            torn: false,
        })
    }

    /// Reads a whole log file into memory and returns a reader-owning
    /// buffer. Recovery streams frames through [`FrameStream`] instead;
    /// this stays for tests and tools that want the raw image (the
    /// crash-point matrix cuts it at every byte).
    pub fn read_file(path: &std::path::Path) -> io::Result<Vec<u8>> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    /// Byte offset of the last intact frame boundary seen so far.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// `true` if iteration stopped on a torn/corrupt frame rather than
    /// a clean end of file.
    pub fn tail_torn(&self) -> bool {
        self.torn
    }
}

impl Iterator for LogReader<'_> {
    type Item = (usize, LogRecord);

    fn next(&mut self) -> Option<(usize, LogRecord)> {
        if self.torn || self.pos >= self.bytes.len() {
            return None;
        }
        let remaining = &self.bytes[self.pos..];
        if remaining.len() < 8 {
            self.torn = true;
            return None;
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes")) as usize;
        let sum = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        let Some(body) = remaining.get(8..8 + len) else {
            self.torn = true;
            return None;
        };
        if checksum(body) != sum {
            self.torn = true;
            return None;
        }
        match decode_body(body) {
            Ok(rec) => {
                self.pos += 8 + len;
                Some((self.pos, rec))
            }
            Err(_) => {
                self.torn = true;
                None
            }
        }
    }
}

/// Streams the intact records of a log *file*, one frame at a time —
/// the bounded-memory counterpart of [`LogReader`]. Recovery iterates
/// this instead of slurping the file: resident memory is one frame
/// body plus the replay reorder window, O(window) rather than O(log).
///
/// Torn-tail semantics match [`LogReader`]: a short, bit-rotten, or
/// undecodable frame ends the stream cleanly ([`FrameStream::tail_torn`]
/// reports it); only a bad *header* (wrong magic) or a real I/O error
/// is an error. The file length is captured at open, so a corrupt
/// frame length can never drive an allocation past the bytes actually
/// on disk.
pub struct FrameStream {
    reader: BufReader<std::fs::File>,
    path: PathBuf,
    /// File length at open (bounds every body allocation).
    len: u64,
    /// Byte offset just past the last intact frame.
    pos: u64,
    torn: bool,
}

impl FrameStream {
    /// Opens a log file and validates its magic header.
    pub fn open(path: &Path) -> Result<FrameStream, RecoveryError> {
        let file = std::fs::File::open(path).map_err(|e| RecoveryError::io(path, e))?;
        let len = file
            .metadata()
            .map_err(|e| RecoveryError::io(path, e))?
            .len();
        let mut reader = BufReader::new(file);
        let mut magic = [0u8; 8];
        let header_ok = len >= LOG_MAGIC.len() as u64
            && match reader.read_exact(&mut magic) {
                Ok(()) => &magic == LOG_MAGIC,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => false,
                Err(e) => return Err(RecoveryError::io(path, e)),
            };
        if !header_ok {
            return Err(RecoveryError::CorruptLog {
                file: path.to_path_buf(),
                offset: 0,
                what: "bad log magic".into(),
            });
        }
        Ok(FrameStream {
            reader,
            path: path.to_path_buf(),
            len,
            pos: LOG_MAGIC.len() as u64,
            torn: false,
        })
    }

    /// The next intact record and the offset just past its frame, or
    /// `None` at a clean end of file *or* a torn tail (distinguish with
    /// [`FrameStream::tail_torn`]). Errors are real I/O failures only.
    pub fn next_record(&mut self) -> Result<Option<(u64, LogRecord)>, RecoveryError> {
        if self.torn || self.pos >= self.len {
            return Ok(None);
        }
        if self.len - self.pos < 8 {
            self.torn = true;
            return Ok(None);
        }
        let mut header = [0u8; 8];
        self.reader
            .read_exact(&mut header)
            .map_err(|e| RecoveryError::io(&self.path, e))?;
        let body_len = u64::from(u32::from_le_bytes(
            header[0..4].try_into().expect("4 bytes"),
        ));
        let sum = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if self.len - self.pos - 8 < body_len {
            self.torn = true;
            return Ok(None);
        }
        let mut body = vec![0u8; body_len as usize];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| RecoveryError::io(&self.path, e))?;
        if checksum(&body) != sum {
            self.torn = true;
            return Ok(None);
        }
        match decode_body(&body) {
            Ok(rec) => {
                self.pos += 8 + body_len;
                Ok(Some((self.pos, rec)))
            }
            Err(_) => {
                self.torn = true;
                Ok(None)
            }
        }
    }

    /// The file being streamed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset just past the last intact frame returned so far.
    pub fn offset(&self) -> u64 {
        self.pos
    }

    /// `true` if the stream ended on a torn/corrupt frame rather than a
    /// clean end of file.
    pub fn tail_torn(&self) -> bool {
        self.torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Create {
                as_of: 0,
                oid: Oid(1),
                class: ClassId(0),
            },
            LogRecord::Commit {
                ts: 1,
                txn: TxnId(7),
                writes: vec![
                    FieldImage {
                        oid: Oid(1),
                        field: FieldId(0),
                        value: Value::Int(-3),
                    },
                    FieldImage {
                        oid: Oid(1),
                        field: FieldId(1),
                        value: Value::str("héllo\nworld"),
                    },
                ],
            },
            LogRecord::Skip { ts: 2 },
            LogRecord::Commit {
                ts: 3,
                txn: TxnId(9),
                writes: vec![FieldImage {
                    oid: Oid(1),
                    field: FieldId(2),
                    value: Value::Float(f64::NAN),
                }],
            },
            LogRecord::Delete {
                as_of: 3,
                oid: Oid(1),
            },
        ]
    }

    fn log_bytes(records: &[LogRecord]) -> Vec<u8> {
        let mut bytes = LOG_MAGIC.to_vec();
        for r in records {
            bytes.extend_from_slice(&encode_frame(r));
        }
        bytes
    }

    #[test]
    fn roundtrip_all_kinds_and_values() {
        let records = sample_records();
        let bytes = log_bytes(&records);
        let reader = LogReader::new(&bytes).unwrap();
        let decoded: Vec<LogRecord> = reader.map(|(_, r)| r).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_cut() {
        let records = sample_records();
        let bytes = log_bytes(&records);
        let mut boundaries: Vec<usize> = vec![LOG_MAGIC.len()];
        boundaries.extend(LogReader::new(&bytes).unwrap().map(|(off, _)| off));
        // Cutting anywhere yields exactly the records whose frames fit.
        for cut in LOG_MAGIC.len()..=bytes.len() {
            let mut reader = LogReader::new(&bytes[..cut]).unwrap();
            let got: Vec<LogRecord> = reader.by_ref().map(|(_, r)| r).collect();
            // The start boundary is not a frame end: subtract it.
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(got.len(), expect, "cut at {cut}");
            assert_eq!(
                reader.tail_torn(),
                cut != bytes.len() && !boundaries.contains(&cut)
            );
        }
    }

    #[test]
    fn bitrot_is_detected() {
        let records = sample_records();
        let mut bytes = log_bytes(&records);
        // Flip one byte inside the second frame's body.
        let first_end = LogReader::new(&bytes).unwrap().next().unwrap().0;
        bytes[first_end + 12] ^= 0x40;
        let mut reader = LogReader::new(&bytes).unwrap();
        let got: Vec<LogRecord> = reader.by_ref().map(|(_, r)| r).collect();
        assert_eq!(got.len(), 1, "only the intact prefix survives");
        assert!(reader.tail_torn());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(LogReader::new(b"NOTALOG\0rest").is_none());
        assert!(LogReader::new(b"").is_none());
    }

    #[test]
    fn frame_stream_matches_log_reader_at_every_cut() {
        let records = sample_records();
        let bytes = log_bytes(&records);
        let dir = std::env::temp_dir().join(format!("finecc-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        for cut in LOG_MAGIC.len()..=bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let mut reader = LogReader::new(&bytes[..cut]).unwrap();
            let want: Vec<(usize, LogRecord)> = reader.by_ref().collect();
            let mut stream = FrameStream::open(&path).unwrap();
            let mut got = Vec::new();
            while let Some((off, rec)) = stream.next_record().unwrap() {
                got.push((off as usize, rec));
            }
            assert_eq!(got, want, "cut at {cut}");
            assert_eq!(stream.tail_torn(), reader.tail_torn(), "cut at {cut}");
            assert_eq!(stream.offset() as usize, reader.offset(), "cut at {cut}");
        }
        // Bad magic is an error, not a torn tail.
        std::fs::write(&path, b"NOTALOG\0rest").unwrap();
        let Err(err) = FrameStream::open(&path) else {
            panic!("bad magic accepted")
        };
        assert_eq!(err.offset(), Some(0));
        // So is a file too short to hold the magic.
        std::fs::write(&path, b"FC").unwrap();
        assert!(FrameStream::open(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
