//! Crash recovery: newest checkpoint + streaming log replay in
//! commit-timestamp order, restartable at any point.
//!
//! The protocol:
//!
//! 1. Load the newest checkpoint that validates; rebuild the schema
//!    (deterministic ids — see [`crate::checkpoint`]) and the base
//!    store image, and restore the OID allocator.
//! 2. **Stream** the log one frame at a time ([`FrameStream`]) up to
//!    the last intact frame (a torn final record — a crash mid-append —
//!    ends replay cleanly; nothing after it was acked as durable).
//! 3. Apply records in `(timestamp, log position)` order through a
//!    **bounded reorder window**: frames enter a min-heap keyed by
//!    `(order_ts, seq)`, and whenever the heap exceeds the window the
//!    smallest record is applied. Group commit bounds how far a record
//!    can sit behind its timestamp order in the file (at most a batch),
//!    so a window ≥ the writer's `max_batch` reorders everything —
//!    resident memory is O(window), not O(log). If the bound is ever
//!    violated (a log written with a larger batch than the window),
//!    replay fails loudly with
//!    [`RecoveryError::ReorderWindowExceeded`] rather than applying
//!    records out of order. Commit records below the checkpoint's
//!    `replay_from` are skipped (already inside the image); creates and
//!    deletes replay unconditionally (both are idempotent — OIDs are
//!    never reused, so a create already in the checkpoint is skipped
//!    and a delete of an absent object is a no-op).
//! 4. The highest timestamp seen — commit or skip, checkpoint included
//!    — is the clock restore point: the recovered heap's clock and
//!    watermark both resume there, so post-recovery commits continue
//!    with no timestamp reuse and no watermark hole, exactly as if the
//!    skip-filled history had run in-process.
//!
//! **Restartability.** Recovery never writes to the log directory: the
//! checkpoint files and the log are read-only inputs, and all mutation
//! lands in the fresh in-memory [`Database`]. A crash at *any* point
//! during recovery — checkpoint decode, frame scan, record apply
//! (the [`Site::RECOVERY`](finecc_chaos::Site::RECOVERY) fault probes
//! land at each) — therefore leaves the directory byte-identical, and
//! a second recovery replays the same acked prefix to the same state.
//! The chaos harness proves this by crashing recovery at every probe
//! site and diffing the re-recovered state against an uncrashed run.

use crate::checkpoint;
use crate::error::RecoveryError;
use crate::log::Wal;
use crate::record::{FrameStream, LogRecord};
use finecc_model::Schema;
use finecc_store::Database;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::Path;
use std::sync::Arc;

/// Default replay reorder window, matching the default
/// [`crate::WalConfig::max_batch`]: group commit never reorders a
/// record across more than one batch, so window ≥ batch cap suffices.
pub const DEFAULT_REORDER_WINDOW: usize = 1024;

/// What recovery found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The checkpoint the base image came from.
    pub checkpoint_ts: u64,
    /// First log timestamp that was eligible for replay.
    pub replay_from: u64,
    /// Log records applied (commit records replayed + creates/deletes
    /// that changed the store).
    pub replayed: u64,
    /// Skip records accounted (timestamp holes restored, nothing
    /// applied).
    pub skips: u64,
    /// The clock restore point: highest commit/skip timestamp seen
    /// (checkpoint included). The recovered clock and watermark resume
    /// here.
    pub max_ts: u64,
    /// `true` if the log ended in a torn record (crash mid-append);
    /// replay stopped at the last intact frame.
    pub tail_torn: bool,
    /// High-water mark of the replay reorder window: the most records
    /// streaming replay ever held in memory at once. Bounded by the
    /// window (+1 transiently), never by the log length — the
    /// log-growth test asserts exactly that.
    pub peak_reorder: u64,
    /// Log bytes the recovery scan walked (the offset just past the
    /// last intact frame; 0 when no log file existed).
    pub bytes_scanned: u64,
}

/// A frame parked in the reorder window: ordered by `(ts, seq)` so
/// equal timestamps apply in log order, exactly like the old
/// sort-everything replay.
struct Keyed {
    ts: u64,
    seq: u64,
    offset: u64,
    rec: LogRecord,
}

impl PartialEq for Keyed {
    fn eq(&self, other: &Keyed) -> bool {
        (self.ts, self.seq) == (other.ts, other.seq)
    }
}
impl Eq for Keyed {}
impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Keyed) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Keyed {
    fn cmp(&self, other: &Keyed) -> std::cmp::Ordering {
        (self.ts, self.seq).cmp(&(other.ts, other.seq))
    }
}

/// Rebuilds a [`Database`] from a log directory: newest checkpoint +
/// streaming replay with the [`DEFAULT_REORDER_WINDOW`]. The returned
/// database holds the recovered schema, extents, instances and OID
/// allocator; the [`RecoveryInfo`] carries the clock restore point for
/// version-heap callers.
pub fn recover_database(dir: &Path) -> Result<(Database, RecoveryInfo), RecoveryError> {
    recover_database_with_window(dir, DEFAULT_REORDER_WINDOW)
}

/// [`recover_database`] with an explicit reorder window (tests size it
/// down to prove the memory bound; a writer with a larger `max_batch`
/// sizes it up to match).
pub fn recover_database_with_window(
    dir: &Path,
    window: usize,
) -> Result<(Database, RecoveryInfo), RecoveryError> {
    use finecc_chaos::{FaultKind, Site};
    let window = window.max(1);
    let ckpt = checkpoint::read_latest(dir)?.ok_or_else(|| RecoveryError::NoCheckpoint {
        dir: dir.to_path_buf(),
    })?;
    let schema = Arc::new(ckpt.schema);
    let db = Database::new(Arc::clone(&schema));
    for inst in &ckpt.instances {
        db.insert_instance(inst.oid, inst.class, inst.values.clone());
    }
    db.set_next_oid(ckpt.next_oid);

    let mut info = RecoveryInfo {
        checkpoint_ts: ckpt.ckpt_ts,
        replay_from: ckpt.replay_from,
        max_ts: ckpt.ckpt_ts,
        ..RecoveryInfo::default()
    };

    let log_path = Wal::log_path(dir);
    if !log_path.exists() {
        return Ok((db, info));
    }
    let mut stream = FrameStream::open(&log_path)?;
    let mut pending: BinaryHeap<Reverse<Keyed>> = BinaryHeap::new();
    let mut seq = 0u64;
    // Tracks the highest order_ts already applied (None before the
    // first apply): the window-violation detector.
    let mut applied_ts: Option<u64> = None;

    let mut apply = |k: Keyed, info: &mut RecoveryInfo| -> Result<(), RecoveryError> {
        match finecc_chaos::fault_at(Site::RecoverApply) {
            Some(FaultKind::IoError) => {
                return Err(RecoveryError::Io {
                    file: log_path.clone(),
                    source: "injected: recovery apply error".into(),
                })
            }
            Some(FaultKind::Crash) => {
                finecc_chaos::note_crash();
                return Err(RecoveryError::Io {
                    file: log_path.clone(),
                    source: "injected: crash during recovery apply".into(),
                });
            }
            _ => {}
        }
        if applied_ts.is_some_and(|a| k.ts < a) {
            return Err(RecoveryError::ReorderWindowExceeded {
                file: log_path.clone(),
                offset: k.offset,
                window,
                ts: k.ts,
                applied: applied_ts.unwrap_or(0),
            });
        }
        applied_ts = Some(k.ts);
        match k.rec {
            LogRecord::Commit { ts, writes, .. } => {
                info.max_ts = info.max_ts.max(ts);
                if ts < info.replay_from {
                    return Ok(()); // already inside the checkpoint image
                }
                for w in writes {
                    // An image of a later-deleted object (or of a field
                    // the rebuilt class cannot see — impossible with a
                    // deterministic schema, but defended) is skipped,
                    // like undo rollback does.
                    let _ = db.write_unchecked(w.oid, w.field, w.value);
                }
                info.replayed += 1;
            }
            LogRecord::Skip { ts } => {
                info.max_ts = info.max_ts.max(ts);
                if ts >= info.replay_from {
                    info.skips += 1;
                }
            }
            LogRecord::Create { oid, class, .. } => {
                if (class.index()) < schema.class_count() {
                    let values: Vec<_> = schema
                        .class(class)
                        .all_fields
                        .iter()
                        .map(|&f| schema.field(f).ty.default_value())
                        .collect();
                    if db.insert_instance(oid, class, values) {
                        info.replayed += 1;
                    }
                }
            }
            LogRecord::Delete { oid, .. } => {
                if db.delete(oid).is_ok() {
                    info.replayed += 1;
                }
            }
        }
        Ok(())
    };

    loop {
        match finecc_chaos::fault_at(Site::RecoverScan) {
            Some(FaultKind::IoError) => {
                return Err(RecoveryError::Io {
                    file: log_path.clone(),
                    source: "injected: recovery scan error".into(),
                })
            }
            Some(FaultKind::Crash) => {
                finecc_chaos::note_crash();
                return Err(RecoveryError::Io {
                    file: log_path.clone(),
                    source: "injected: crash during recovery scan".into(),
                });
            }
            _ => {}
        }
        let Some((offset, rec)) = stream.next_record()? else {
            break;
        };
        info.bytes_scanned = info.bytes_scanned.max(offset);
        pending.push(Reverse(Keyed {
            ts: rec.order_ts(),
            seq,
            offset,
            rec,
        }));
        seq += 1;
        info.peak_reorder = info.peak_reorder.max(pending.len() as u64);
        while pending.len() > window {
            let Reverse(k) = pending.pop().expect("len > window > 0");
            apply(k, &mut info)?;
        }
    }
    info.tail_torn = stream.tail_torn();
    while let Some(Reverse(k)) = pending.pop() {
        apply(k, &mut info)?;
    }
    Ok((db, info))
}

/// The timestamp floor a writer resuming on `dir` must start above:
/// `max(newest checkpoint's replay_from, highest logged timestamp + 1)`.
/// Lock schemes bump their commit-sequence clock here when durability
/// is attached to a directory with history, so recovered and new
/// commits never share a timestamp. Streams the log — O(1) memory.
pub fn recovery_floor(dir: &Path) -> Result<u64, RecoveryError> {
    let mut floor = match checkpoint::read_latest(dir)? {
        Some(ckpt) => ckpt.replay_from,
        None => 0,
    };
    let log_path = Wal::log_path(dir);
    if log_path.exists() {
        let mut stream = FrameStream::open(&log_path)?;
        while let Some((_, rec)) = stream.next_record()? {
            if let LogRecord::Commit { ts, .. } | LogRecord::Skip { ts } = rec {
                floor = floor.max(ts + 1);
            }
        }
    }
    Ok(floor)
}

/// Rebuilds a schema-aware [`Schema`] handle from the newest checkpoint
/// without replaying the log (introspection/tooling).
pub fn recover_schema(dir: &Path) -> Result<Schema, RecoveryError> {
    Ok(checkpoint::read_latest(dir)?
        .ok_or_else(|| RecoveryError::NoCheckpoint {
            dir: dir.to_path_buf(),
        })?
        .schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointData, InstanceImage};
    use crate::log::WalConfig;
    use finecc_model::{FieldType, Oid, SchemaBuilder, TxnId, Value};
    use finecc_store::FieldImage;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("finecc-rec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Str);
        b.finish().unwrap()
    }

    #[test]
    fn checkpoint_plus_replay_rebuilds_the_store() {
        let dir = tmpdir("basic");
        let schema = sample_schema();
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let y = schema.resolve_field(a, "y").unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.write_checkpoint(&CheckpointData {
                ckpt_ts: 0,
                replay_from: 1,
                next_oid: 2,
                schema: &schema,
                instances: vec![InstanceImage {
                    oid: Oid(1),
                    class: a,
                    values: vec![Value::Int(10), Value::str("ten")],
                }],
            })
            .unwrap();
            // A commit below replay_from must NOT re-apply (already in
            // the checkpoint).
            wal.append_commit(
                1,
                TxnId(1),
                &[FieldImage {
                    oid: Oid(1),
                    field: x,
                    value: Value::Int(11),
                }],
            )
            .unwrap();
            wal.append_skip(2).unwrap();
            wal.append_create(2, Oid(2), a).unwrap();
            wal.append_commit(
                3,
                TxnId(2),
                &[
                    FieldImage {
                        oid: Oid(2),
                        field: y,
                        value: Value::str("two"),
                    },
                    FieldImage {
                        oid: Oid(1),
                        field: x,
                        value: Value::Int(12),
                    },
                ],
            )
            .unwrap();
        }
        let (db, info) = recover_database(&dir).unwrap();
        assert_eq!(info.checkpoint_ts, 0);
        assert_eq!(info.replayed, 3, "two commits + one create");
        assert_eq!(info.skips, 1);
        assert_eq!(info.max_ts, 3);
        assert!(!info.tail_torn);
        assert!(info.peak_reorder >= 1 && info.peak_reorder <= 4);
        assert_eq!(db.read(Oid(1), x), Ok(Value::Int(12)));
        assert_eq!(db.read(Oid(1), y), Ok(Value::str("ten")));
        assert_eq!(db.read(Oid(2), y), Ok(Value::str("two")));
        assert_eq!(db.read(Oid(2), x), Ok(Value::Int(0)), "created defaulted");
        assert_eq!(db.len(), 2);
        assert!(db.next_oid_hint() >= 3);
        assert_eq!(db.extent(a).len(), 2, "extents rebuilt");
        assert_eq!(recovery_floor(&dir).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_replays_and_out_of_order_timestamps_sort() {
        let dir = tmpdir("delete");
        let schema = sample_schema();
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.write_checkpoint(&CheckpointData {
                ckpt_ts: 0,
                replay_from: 1,
                next_oid: 3,
                schema: &schema,
                instances: vec![
                    InstanceImage {
                        oid: Oid(1),
                        class: a,
                        values: vec![Value::Int(0), Value::str("")],
                    },
                    InstanceImage {
                        oid: Oid(2),
                        class: a,
                        values: vec![Value::Int(0), Value::str("")],
                    },
                ],
            })
            .unwrap();
            // Appended out of timestamp order (concurrent group
            // commit); replay must apply ts 1 before ts 2.
            wal.append_commit(
                2,
                TxnId(2),
                &[FieldImage {
                    oid: Oid(1),
                    field: x,
                    value: Value::Int(22),
                }],
            )
            .unwrap();
            wal.append_commit(
                1,
                TxnId(1),
                &[FieldImage {
                    oid: Oid(1),
                    field: x,
                    value: Value::Int(11),
                }],
            )
            .unwrap();
            wal.append_delete(2, Oid(2)).unwrap();
        }
        let (db, info) = recover_database(&dir).unwrap();
        assert_eq!(db.read(Oid(1), x), Ok(Value::Int(22)), "ts order wins");
        assert!(db.read(Oid(2), x).is_err(), "deleted object stays dead");
        assert_eq!(db.len(), 1);
        assert_eq!(info.replayed, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_window_still_orders_within_its_bound() {
        // The out-of-order pair above sits 1 frame apart; a window of 1
        // can still reorder it (one record parked while the next
        // streams in), and the violation detector stays quiet.
        let dir = tmpdir("tinywin");
        let schema = sample_schema();
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.write_checkpoint(&CheckpointData {
                ckpt_ts: 0,
                replay_from: 1,
                next_oid: 2,
                schema: &schema,
                instances: vec![InstanceImage {
                    oid: Oid(1),
                    class: a,
                    values: vec![Value::Int(0), Value::str("")],
                }],
            })
            .unwrap();
            for pair in 0..8u64 {
                let hi = 2 + pair * 2;
                let lo = 1 + pair * 2;
                wal.append_commit(hi, TxnId(hi), &[img(x, hi)]).unwrap();
                wal.append_commit(lo, TxnId(lo), &[img(x, lo)]).unwrap();
            }
        }
        let (db, info) = recover_database_with_window(&dir, 1).unwrap();
        assert_eq!(db.read(Oid(1), x), Ok(Value::Int(16)), "highest ts wins");
        assert_eq!(info.replayed, 16);
        assert!(
            info.peak_reorder <= 2,
            "window 1 holds at most window+1 transiently: {}",
            info.peak_reorder
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn img(field: finecc_model::FieldId, v: u64) -> FieldImage {
        FieldImage {
            oid: Oid(1),
            field,
            value: Value::Int(v as i64),
        }
    }

    #[test]
    fn exceeded_window_fails_loudly_not_silently() {
        // Three records, the *first* two frames hold the two highest
        // timestamps: a window of 1 must evict one of them before the
        // lowest arrives — out-of-order apply, detected and refused.
        let dir = tmpdir("exceed");
        let schema = sample_schema();
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.write_checkpoint(&CheckpointData {
                ckpt_ts: 0,
                replay_from: 1,
                next_oid: 2,
                schema: &schema,
                instances: vec![InstanceImage {
                    oid: Oid(1),
                    class: a,
                    values: vec![Value::Int(0), Value::str("")],
                }],
            })
            .unwrap();
            for ts in [3u64, 2, 1] {
                wal.append_commit(ts, TxnId(ts), &[img(x, ts)]).unwrap();
            }
        }
        let Err(err) = recover_database_with_window(&dir, 1) else {
            panic!("window 1 cannot order this log")
        };
        assert!(
            matches!(err, RecoveryError::ReorderWindowExceeded { window: 1, .. }),
            "got {err}"
        );
        // A window covering the distance succeeds.
        let (db, _) = recover_database_with_window(&dir, 2).unwrap();
        assert_eq!(db.read(Oid(1), x), Ok(Value::Int(3)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_an_error() {
        let dir = tmpdir("nockpt");
        std::fs::create_dir_all(&dir).unwrap();
        let Err(err) = recover_database(&dir) else {
            panic!("recovered with no checkpoint")
        };
        assert!(matches!(err, RecoveryError::NoCheckpoint { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
