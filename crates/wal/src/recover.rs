//! Crash recovery: newest checkpoint + log replay in commit-timestamp
//! order.
//!
//! The protocol:
//!
//! 1. Load the newest checkpoint that validates; rebuild the schema
//!    (deterministic ids — see [`crate::checkpoint`]) and the base
//!    store image, and restore the OID allocator.
//! 2. Read the log up to the last intact frame (a torn final record —
//!    a crash mid-append — ends replay cleanly; nothing after it was
//!    acked as durable).
//! 3. Sort the records by `(timestamp, log position)` and apply them:
//!    commit records at or above the checkpoint's `replay_from` rewrite
//!    their after-images field by field; creates and deletes replay
//!    unconditionally (both are idempotent — OIDs are never reused, so
//!    a create that is already in the checkpoint is skipped and a
//!    delete of an absent object is a no-op). Skip records contribute
//!    only to the timestamp accounting.
//! 4. The highest timestamp seen — commit or skip, checkpoint included
//!    — is the clock restore point: the recovered heap's clock and
//!    watermark both resume there, so post-recovery commits continue
//!    with no timestamp reuse and no watermark hole, exactly as if the
//!    skip-filled history had run in-process.

use crate::checkpoint;
use crate::log::Wal;
use crate::record::{LogReader, LogRecord};
use finecc_model::Schema;
use finecc_store::Database;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// What recovery found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The checkpoint the base image came from.
    pub checkpoint_ts: u64,
    /// First log timestamp that was eligible for replay.
    pub replay_from: u64,
    /// Log records applied (commit records replayed + creates/deletes
    /// that changed the store).
    pub replayed: u64,
    /// Skip records accounted (timestamp holes restored, nothing
    /// applied).
    pub skips: u64,
    /// The clock restore point: highest commit/skip timestamp seen
    /// (checkpoint included). The recovered clock and watermark resume
    /// here.
    pub max_ts: u64,
    /// `true` if the log ended in a torn record (crash mid-append);
    /// replay stopped at the last intact frame.
    pub tail_torn: bool,
}

fn no_checkpoint() -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        "no usable checkpoint in the log directory (a durable store writes a genesis checkpoint \
         when the log is attached)",
    )
}

/// Rebuilds a [`Database`] from a log directory: newest checkpoint +
/// replay. The returned database holds the recovered schema, extents,
/// instances and OID allocator; the [`RecoveryInfo`] carries the clock
/// restore point for version-heap callers.
pub fn recover_database(dir: &Path) -> io::Result<(Database, RecoveryInfo)> {
    let ckpt = checkpoint::read_latest(dir)?.ok_or_else(no_checkpoint)?;
    let schema = Arc::new(ckpt.schema);
    let db = Database::new(Arc::clone(&schema));
    for inst in &ckpt.instances {
        db.insert_instance(inst.oid, inst.class, inst.values.clone());
    }
    db.set_next_oid(ckpt.next_oid);

    let mut info = RecoveryInfo {
        checkpoint_ts: ckpt.ckpt_ts,
        replay_from: ckpt.replay_from,
        max_ts: ckpt.ckpt_ts,
        ..RecoveryInfo::default()
    };

    let log_path = Wal::log_path(dir);
    if !log_path.exists() {
        return Ok((db, info));
    }
    let bytes = LogReader::read_file(&log_path)?;
    let mut reader = LogReader::new(&bytes)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "not a finecc wal file"))?;
    let mut records: Vec<(usize, LogRecord)> = Vec::new();
    for (idx, (_, rec)) in reader.by_ref().enumerate() {
        records.push((idx, rec));
    }
    info.tail_torn = reader.tail_torn();
    // Commit-timestamp order, log order within a timestamp (extent
    // records share the timestamp domain through the watermark they
    // observed).
    records.sort_by_key(|(idx, rec)| (rec.order_ts(), *idx));

    for (_, rec) in records {
        match rec {
            LogRecord::Commit { ts, writes, .. } => {
                info.max_ts = info.max_ts.max(ts);
                if ts < info.replay_from {
                    continue; // already inside the checkpoint image
                }
                for w in writes {
                    // An image of a later-deleted object (or of a field
                    // the rebuilt class cannot see — impossible with a
                    // deterministic schema, but defended) is skipped,
                    // like undo rollback does.
                    let _ = db.write_unchecked(w.oid, w.field, w.value);
                }
                info.replayed += 1;
            }
            LogRecord::Skip { ts } => {
                info.max_ts = info.max_ts.max(ts);
                if ts >= info.replay_from {
                    info.skips += 1;
                }
            }
            LogRecord::Create { oid, class, .. } => {
                if (class.index()) < schema.class_count() {
                    let values: Vec<_> = schema
                        .class(class)
                        .all_fields
                        .iter()
                        .map(|&f| schema.field(f).ty.default_value())
                        .collect();
                    if db.insert_instance(oid, class, values) {
                        info.replayed += 1;
                    }
                }
            }
            LogRecord::Delete { oid, .. } => {
                if db.delete(oid).is_ok() {
                    info.replayed += 1;
                }
            }
        }
    }
    Ok((db, info))
}

/// The timestamp floor a writer resuming on `dir` must start above:
/// `max(newest checkpoint's replay_from, highest logged timestamp + 1)`.
/// Lock schemes bump their commit-sequence clock here when durability
/// is attached to a directory with history, so recovered and new
/// commits never share a timestamp.
pub fn recovery_floor(dir: &Path) -> io::Result<u64> {
    let mut floor = match checkpoint::read_latest(dir)? {
        Some(ckpt) => ckpt.replay_from,
        None => 0,
    };
    let log_path = Wal::log_path(dir);
    if log_path.exists() {
        let bytes = LogReader::read_file(&log_path)?;
        if let Some(reader) = LogReader::new(&bytes) {
            for (_, rec) in reader {
                if let LogRecord::Commit { ts, .. } | LogRecord::Skip { ts } = rec {
                    floor = floor.max(ts + 1);
                }
            }
        }
    }
    Ok(floor)
}

/// Rebuilds a schema-aware [`Schema`] handle from the newest checkpoint
/// without replaying the log (introspection/tooling).
pub fn recover_schema(dir: &Path) -> io::Result<Schema> {
    Ok(checkpoint::read_latest(dir)?
        .ok_or_else(no_checkpoint)?
        .schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointData, InstanceImage};
    use crate::log::WalConfig;
    use finecc_model::{FieldType, Oid, SchemaBuilder, TxnId, Value};
    use finecc_store::FieldImage;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("finecc-rec-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Str);
        b.finish().unwrap()
    }

    #[test]
    fn checkpoint_plus_replay_rebuilds_the_store() {
        let dir = tmpdir("basic");
        let schema = sample_schema();
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        let y = schema.resolve_field(a, "y").unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.write_checkpoint(&CheckpointData {
                ckpt_ts: 0,
                replay_from: 1,
                next_oid: 2,
                schema: &schema,
                instances: vec![InstanceImage {
                    oid: Oid(1),
                    class: a,
                    values: vec![Value::Int(10), Value::str("ten")],
                }],
            })
            .unwrap();
            // A commit below replay_from must NOT re-apply (already in
            // the checkpoint).
            wal.append_commit(
                1,
                TxnId(1),
                &[FieldImage {
                    oid: Oid(1),
                    field: x,
                    value: Value::Int(11),
                }],
            )
            .unwrap();
            wal.append_skip(2).unwrap();
            wal.append_create(2, Oid(2), a).unwrap();
            wal.append_commit(
                3,
                TxnId(2),
                &[
                    FieldImage {
                        oid: Oid(2),
                        field: y,
                        value: Value::str("two"),
                    },
                    FieldImage {
                        oid: Oid(1),
                        field: x,
                        value: Value::Int(12),
                    },
                ],
            )
            .unwrap();
        }
        let (db, info) = recover_database(&dir).unwrap();
        assert_eq!(info.checkpoint_ts, 0);
        assert_eq!(info.replayed, 3, "two commits + one create");
        assert_eq!(info.skips, 1);
        assert_eq!(info.max_ts, 3);
        assert!(!info.tail_torn);
        assert_eq!(db.read(Oid(1), x), Ok(Value::Int(12)));
        assert_eq!(db.read(Oid(1), y), Ok(Value::str("ten")));
        assert_eq!(db.read(Oid(2), y), Ok(Value::str("two")));
        assert_eq!(db.read(Oid(2), x), Ok(Value::Int(0)), "created defaulted");
        assert_eq!(db.len(), 2);
        assert!(db.next_oid_hint() >= 3);
        assert_eq!(db.extent(a).len(), 2, "extents rebuilt");
        assert_eq!(recovery_floor(&dir).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_replays_and_out_of_order_timestamps_sort() {
        let dir = tmpdir("delete");
        let schema = sample_schema();
        let a = schema.class_by_name("a").unwrap();
        let x = schema.resolve_field(a, "x").unwrap();
        {
            let wal = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.write_checkpoint(&CheckpointData {
                ckpt_ts: 0,
                replay_from: 1,
                next_oid: 3,
                schema: &schema,
                instances: vec![
                    InstanceImage {
                        oid: Oid(1),
                        class: a,
                        values: vec![Value::Int(0), Value::str("")],
                    },
                    InstanceImage {
                        oid: Oid(2),
                        class: a,
                        values: vec![Value::Int(0), Value::str("")],
                    },
                ],
            })
            .unwrap();
            // Appended out of timestamp order (concurrent group
            // commit); replay must apply ts 1 before ts 2.
            wal.append_commit(
                2,
                TxnId(2),
                &[FieldImage {
                    oid: Oid(1),
                    field: x,
                    value: Value::Int(22),
                }],
            )
            .unwrap();
            wal.append_commit(
                1,
                TxnId(1),
                &[FieldImage {
                    oid: Oid(1),
                    field: x,
                    value: Value::Int(11),
                }],
            )
            .unwrap();
            wal.append_delete(2, Oid(2)).unwrap();
        }
        let (db, info) = recover_database(&dir).unwrap();
        assert_eq!(db.read(Oid(1), x), Ok(Value::Int(22)), "ts order wins");
        assert!(db.read(Oid(2), x).is_err(), "deleted object stays dead");
        assert_eq!(db.len(), 1);
        assert_eq!(info.replayed, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_an_error() {
        let dir = tmpdir("nockpt");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(recover_database(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
