//! Per-resource lock state: granted set and FIFO wait queue.

use crate::modes::{LockMode, ModeSource};
use crate::resource::ResourceId;
use finecc_model::TxnId;
use std::collections::VecDeque;

/// The lock state of one resource.
#[derive(Clone, Debug, Default)]
pub struct LockEntry {
    /// Granted locks: a transaction may hold several modes (conversions).
    pub granted: Vec<(TxnId, LockMode)>,
    /// FIFO wait queue; conversions are pushed to the *front*.
    pub queue: VecDeque<(TxnId, LockMode)>,
}

impl LockEntry {
    /// `true` when nothing is granted and nobody waits.
    pub fn is_idle(&self) -> bool {
        self.granted.is_empty() && self.queue.is_empty()
    }

    /// `true` if `txn` holds any mode on this resource.
    pub fn holds_any(&self, txn: TxnId) -> bool {
        self.granted.iter().any(|&(t, _)| t == txn)
    }

    /// `true` if `txn` holds specifically `mode`.
    pub fn holds(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted.iter().any(|&(t, m)| t == txn && m == mode)
    }

    /// Whether `(txn, mode)` can be granted now:
    ///
    /// * it must be compatible with every mode granted to *other*
    ///   transactions (own locks never conflict with themselves);
    /// * a brand-new request (txn holds nothing here) must additionally
    ///   not overtake waiting strangers — strict FIFO fairness. A
    ///   *conversion* (txn already holds a mode) bypasses the queue, the
    ///   standard upgrade rule.
    pub fn can_grant(
        &self,
        src: &dyn ModeSource,
        res: &ResourceId,
        txn: TxnId,
        mode: LockMode,
    ) -> bool {
        let compatible_with_granted = self
            .granted
            .iter()
            .all(|&(t, m)| t == txn || src.compatible(res, mode, m));
        if !compatible_with_granted {
            return false;
        }
        if self.holds_any(txn) {
            return true; // conversion
        }
        // New request: don't jump over other waiting transactions.
        self.queue.iter().all(|&(t, _)| t == txn)
    }

    /// Whether a *queued* `(txn, mode)` request can be granted now: it
    /// must be compatible with every mode granted to other transactions,
    /// and every entry **ahead** of it in the queue must belong to the
    /// same transaction or be compatible with it (FIFO with concurrent
    /// grants of mutually compatible waiters).
    pub fn can_grant_queued(
        &self,
        src: &dyn ModeSource,
        res: &ResourceId,
        txn: TxnId,
        mode: LockMode,
    ) -> bool {
        let compatible_with_granted = self
            .granted
            .iter()
            .all(|&(t, m)| t == txn || src.compatible(res, mode, m));
        if !compatible_with_granted {
            return false;
        }
        for &(t, m) in &self.queue {
            if t == txn && m == mode {
                return true;
            }
            if t != txn && !src.compatible(res, mode, m) {
                return false;
            }
        }
        // Not queued at all: treat as a fresh request.
        self.can_grant(src, res, txn, mode)
    }

    /// Records a grant (idempotent per `(txn, mode)`).
    pub fn grant(&mut self, txn: TxnId, mode: LockMode) {
        if !self.holds(txn, mode) {
            self.granted.push((txn, mode));
        }
    }

    /// Enqueues a waiter (conversions at the front, new requests at the
    /// back). Idempotent per `(txn, mode)`.
    pub fn enqueue(&mut self, txn: TxnId, mode: LockMode) {
        if self.queue.iter().any(|&(t, m)| t == txn && m == mode) {
            return;
        }
        if self.holds_any(txn) {
            self.queue.push_front((txn, mode));
        } else {
            self.queue.push_back((txn, mode));
        }
    }

    /// Removes every trace of `txn` (grants and queued requests).
    /// Returns `true` if anything was removed.
    pub fn purge(&mut self, txn: TxnId) -> bool {
        let before = self.granted.len() + self.queue.len();
        self.granted.retain(|&(t, _)| t != txn);
        self.queue.retain(|&(t, _)| t != txn);
        before != self.granted.len() + self.queue.len()
    }

    /// Removes a specific queued request.
    pub fn dequeue(&mut self, txn: TxnId, mode: LockMode) {
        self.queue.retain(|&(t, m)| !(t == txn && m == mode));
    }

    /// The transactions a queued `(txn, mode)` request is waiting on:
    /// holders of incompatible modes plus incompatible waiters *ahead* of
    /// it in the queue. This is the waits-for edge set used by deadlock
    /// detection.
    pub fn blockers(
        &self,
        src: &dyn ModeSource,
        res: &ResourceId,
        txn: TxnId,
        mode: LockMode,
    ) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .granted
            .iter()
            .filter(|&&(t, m)| t != txn && !src.compatible(res, mode, m))
            .map(|&(t, _)| t)
            .collect();
        for &(t, m) in &self.queue {
            if t == txn && m == mode {
                break;
            }
            if t != txn && !src.compatible(res, mode, m) {
                out.push(t);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{RwSource, READ, WRITE};
    use finecc_model::{ClassId, Oid};

    fn res() -> ResourceId {
        ResourceId::Instance(Oid(1), ClassId(0))
    }

    fn r(m: u16) -> LockMode {
        LockMode::plain(m)
    }

    #[test]
    fn shared_reads_grant() {
        let src = RwSource;
        let mut e = LockEntry::default();
        assert!(e.can_grant(&src, &res(), TxnId(1), r(READ)));
        e.grant(TxnId(1), r(READ));
        assert!(e.can_grant(&src, &res(), TxnId(2), r(READ)));
        e.grant(TxnId(2), r(READ));
        assert!(!e.can_grant(&src, &res(), TxnId(3), r(WRITE)));
    }

    #[test]
    fn own_locks_never_conflict() {
        let src = RwSource;
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(WRITE));
        assert!(e.can_grant(&src, &res(), TxnId(1), r(READ)));
        assert!(e.can_grant(&src, &res(), TxnId(1), r(WRITE)));
        assert!(!e.can_grant(&src, &res(), TxnId(2), r(READ)));
    }

    #[test]
    fn fifo_no_overtaking() {
        let src = RwSource;
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(WRITE));
        e.enqueue(TxnId(2), r(READ));
        // Txn 3's read is compatible with nothing granted? No — conflicts
        // with 1's write anyway. Release 1:
        e.purge(TxnId(1));
        // 3 must not overtake 2.
        assert!(!e.can_grant(&src, &res(), TxnId(3), r(READ)));
        assert!(e.can_grant(&src, &res(), TxnId(2), r(READ)));
    }

    #[test]
    fn conversion_bypasses_queue() {
        let src = RwSource;
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(READ));
        e.enqueue(TxnId(9), r(WRITE)); // stranger waits
                                       // Txn 1 upgrading read→write: queue does not block it, but 9's
                                       // *grant* does not exist yet, so only granted set matters — and
                                       // the only granted lock is its own. Conversion allowed.
        assert!(e.can_grant(&src, &res(), TxnId(1), r(WRITE)));
    }

    #[test]
    fn conversion_blocked_by_other_reader() {
        let src = RwSource;
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(READ));
        e.grant(TxnId(2), r(READ));
        assert!(!e.can_grant(&src, &res(), TxnId(1), r(WRITE)));
        e.enqueue(TxnId(1), r(WRITE));
        // The conversion goes to the queue front.
        assert_eq!(e.queue.front(), Some(&(TxnId(1), r(WRITE))));
        // Blockers of the conversion: the other reader only.
        assert_eq!(e.blockers(&src, &res(), TxnId(1), r(WRITE)), vec![TxnId(2)]);
    }

    #[test]
    fn blockers_include_waiters_ahead() {
        let src = RwSource;
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(WRITE));
        e.enqueue(TxnId(2), r(WRITE));
        e.enqueue(TxnId(3), r(READ));
        let b = e.blockers(&src, &res(), TxnId(3), r(READ));
        assert_eq!(b, vec![TxnId(1), TxnId(2)]);
        // Txn 2 only waits on the holder.
        assert_eq!(e.blockers(&src, &res(), TxnId(2), r(WRITE)), vec![TxnId(1)]);
    }

    #[test]
    fn purge_and_idle() {
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(READ));
        e.enqueue(TxnId(2), r(WRITE));
        assert!(!e.is_idle());
        assert!(e.purge(TxnId(1)));
        assert!(e.purge(TxnId(2)));
        assert!(!e.purge(TxnId(3)));
        assert!(e.is_idle());
    }

    #[test]
    fn grant_and_enqueue_idempotent() {
        let mut e = LockEntry::default();
        e.grant(TxnId(1), r(READ));
        e.grant(TxnId(1), r(READ));
        assert_eq!(e.granted.len(), 1);
        e.enqueue(TxnId(2), r(WRITE));
        e.enqueue(TxnId(2), r(WRITE));
        assert_eq!(e.queue.len(), 1);
        e.dequeue(TxnId(2), r(WRITE));
        assert!(e.queue.is_empty());
    }
}
