//! Lockable resources.

use finecc_model::{ClassId, FieldId, Oid};
use std::fmt;

/// Identifies one lockable resource.
///
/// Instance resources carry the instance's class so the
/// [`crate::ModeSource`] can pick the right per-class commutativity
/// matrix without a store lookup; an instance has exactly one class for
/// its lifetime, so all requesters agree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ResourceId {
    /// One instance, under its proper class's mode table.
    Instance(Oid, ClassId),
    /// One class (the explicit class locks of §5).
    Class(ClassId),
    /// One field of one instance — the granule of the Agrawal–El Abbadi
    /// run-time field-locking baseline.
    Field(Oid, FieldId),
    /// A whole relation of the relational-decomposition baseline
    /// (identified by the class whose local fields it holds).
    Relation(ClassId),
    /// One tuple of one relation (`(relation, key)`); the key is the OID
    /// the tuple projects.
    Tuple(ClassId, Oid),
}

impl ResourceId {
    /// The class whose mode table governs this resource, when any.
    pub fn class(&self) -> Option<ClassId> {
        match self {
            ResourceId::Instance(_, c) | ResourceId::Class(c) => Some(*c),
            _ => None,
        }
    }

    /// `true` for class-level resources (the ones that may carry
    /// hierarchical/intentional locks).
    pub fn is_class(&self) -> bool {
        matches!(self, ResourceId::Class(_))
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Instance(o, c) => write!(f, "inst({o} of {c})"),
            ResourceId::Class(c) => write!(f, "class({c})"),
            ResourceId::Field(o, fld) => write!(f, "field({o}.{fld})"),
            ResourceId::Relation(c) => write!(f, "rel({c})"),
            ResourceId::Tuple(c, o) => write!(f, "tuple({c}[{o}])"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_extraction() {
        let r = ResourceId::Instance(Oid(1), ClassId(2));
        assert_eq!(r.class(), Some(ClassId(2)));
        assert!(!r.is_class());
        assert!(ResourceId::Class(ClassId(0)).is_class());
        assert_eq!(ResourceId::Field(Oid(1), FieldId(2)).class(), None);
    }

    #[test]
    fn distinct_resources_hash_distinct() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ResourceId::Instance(Oid(1), ClassId(0)));
        s.insert(ResourceId::Class(ClassId(0)));
        s.insert(ResourceId::Tuple(ClassId(0), Oid(1)));
        s.insert(ResourceId::Relation(ClassId(0)));
        s.insert(ResourceId::Field(Oid(1), FieldId(0)));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn display() {
        assert_eq!(
            ResourceId::Tuple(ClassId(1), Oid(9)).to_string(),
            "tuple(c#1[oid:9])"
        );
    }
}
