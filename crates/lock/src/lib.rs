//! # finecc-lock — the generic lock manager
//!
//! A strict-2PL lock manager whose compatibility function is *pluggable*
//! per resource ([`ModeSource`]). This realizes the paper's claim (5):
//! classical read/write locking ([`RwSource`]) and the generated per-class
//! commutativity matrices ([`CommutSource`]) are two instances of the same
//! machinery — "relational and object-oriented concurrency control schemes
//! with read and write access modes are subsumed under this proposition."
//!
//! Features:
//!
//! * instance, class, field, relation and tuple resources ([`ResourceId`]),
//! * class locks as `(access mode, hierarchical?)` pairs with the §5.2
//!   semantics: intentional locks are mutually compatible, any
//!   hierarchical participant falls back to the mode matrix
//!   ([`LockKind`]),
//! * multiple modes per transaction per resource (lock conversion /
//!   upgrade, the mechanism behind the paper's problem P3),
//! * FIFO wait queues with upgrades served first,
//! * blocking acquisition with **waits-for-graph deadlock detection** and
//!   a configurable victim policy, plus a non-blocking `try_acquire` for
//!   deterministic simulation,
//! * full statistics (requests, blocks, deadlocks, upgrades, …).

pub mod deadlock;
pub mod entry;
pub mod manager;
pub mod modes;
pub mod resource;
pub mod stats;

pub use manager::{AcquireError, LockManager, TryAcquire, VictimPolicy};
pub use modes::{CommutSource, LockKind, LockMode, ModeSource, RwSource, READ, WRITE};
pub use resource::ResourceId;
pub use stats::{LockStats, StatsSnapshot};
