//! Waits-for-graph cycle detection.
//!
//! The graph is rebuilt from the lock table on demand (only when a request
//! actually blocks, which is the rare path). An edge `t → u` means
//! transaction `t` waits for a lock that `u` holds or that `u` requested
//! ahead of `t`.

use finecc_model::TxnId;
use std::collections::{HashMap, HashSet};

/// A waits-for graph.
#[derive(Clone, Debug, Default)]
pub struct WaitsFor {
    edges: HashMap<TxnId, Vec<TxnId>>,
}

impl WaitsFor {
    /// An empty graph.
    pub fn new() -> WaitsFor {
        WaitsFor::default()
    }

    /// Adds edges `from → each of to`.
    pub fn add_edges(&mut self, from: TxnId, to: impl IntoIterator<Item = TxnId>) {
        let e = self.edges.entry(from).or_default();
        for t in to {
            if t != from && !e.contains(&t) {
                e.push(t);
            }
        }
    }

    /// Successors of a node.
    pub fn successors(&self, t: TxnId) -> &[TxnId] {
        self.edges.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Finds a cycle reachable from `start`, returned as the list of
    /// transactions on the cycle (in edge order, starting anywhere on the
    /// cycle). `None` if `start` cannot reach a cycle through itself.
    ///
    /// Only cycles **through `start`** matter to the caller: `start` is
    /// the transaction that just blocked, and any pre-existing cycle not
    /// involving it was already handled when its own last edge appeared.
    pub fn cycle_through(&self, start: TxnId) -> Option<Vec<TxnId>> {
        // Iterative DFS tracking the path.
        let mut path: Vec<TxnId> = vec![start];
        let mut iters: Vec<usize> = vec![0];
        let mut on_path: HashSet<TxnId> = HashSet::from([start]);
        let mut done: HashSet<TxnId> = HashSet::new();

        while let Some(&node) = path.last() {
            let i = *iters.last().expect("parallel stacks");
            let succs = self.successors(node);
            if i < succs.len() {
                *iters.last_mut().expect("parallel stacks") += 1;
                let next = succs[i];
                if next == start {
                    return Some(path.clone());
                }
                if on_path.contains(&next) || done.contains(&next) {
                    // A cycle not through `start`, or an exhausted branch.
                    continue;
                }
                on_path.insert(next);
                path.push(next);
                iters.push(0);
            } else {
                done.insert(node);
                on_path.remove(&node);
                path.pop();
                iters.pop();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u64) -> TxnId {
        TxnId(i)
    }

    #[test]
    fn no_cycle_in_dag() {
        let mut g = WaitsFor::new();
        g.add_edges(t(1), [t(2)]);
        g.add_edges(t(2), [t(3)]);
        assert!(g.cycle_through(t(1)).is_none());
        assert!(g.cycle_through(t(3)).is_none());
    }

    #[test]
    fn two_cycle() {
        let mut g = WaitsFor::new();
        g.add_edges(t(1), [t(2)]);
        g.add_edges(t(2), [t(1)]);
        let c = g.cycle_through(t(1)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.contains(&t(1)) && c.contains(&t(2)));
    }

    #[test]
    fn three_cycle_with_branches() {
        let mut g = WaitsFor::new();
        g.add_edges(t(1), [t(5), t(2)]);
        g.add_edges(t(2), [t(6), t(3)]);
        g.add_edges(t(3), [t(1)]);
        g.add_edges(t(5), [t(6)]);
        let c = g.cycle_through(t(1)).unwrap();
        assert_eq!(c, vec![t(1), t(2), t(3)]);
    }

    #[test]
    fn cycle_not_through_start_ignored() {
        let mut g = WaitsFor::new();
        g.add_edges(t(1), [t(2)]);
        g.add_edges(t(2), [t(3)]);
        g.add_edges(t(3), [t(2)]); // 2↔3 cycle, not through 1
        assert!(g.cycle_through(t(1)).is_none());
        assert!(g.cycle_through(t(2)).is_some());
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = WaitsFor::new();
        g.add_edges(t(1), [t(1)]);
        assert!(g.cycle_through(t(1)).is_none());
    }

    #[test]
    fn dedup_edges() {
        let mut g = WaitsFor::new();
        g.add_edges(t(1), [t(2), t(2), t(2)]);
        assert_eq!(g.successors(t(1)).len(), 1);
    }

    #[test]
    fn long_cycle() {
        let mut g = WaitsFor::new();
        let n = 1000u64;
        for i in 0..n {
            g.add_edges(t(i), [t((i + 1) % n)]);
        }
        let c = g.cycle_through(t(0)).unwrap();
        assert_eq!(c.len(), n as usize);
    }
}
