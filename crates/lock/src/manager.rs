//! The lock manager: blocking acquisition, strict-2PL release, deadlock
//! detection, and a non-blocking mode for deterministic simulation.

use crate::deadlock::WaitsFor;
use crate::entry::LockEntry;
use crate::modes::{LockMode, ModeSource};
use crate::resource::ResourceId;
use crate::stats::LockStats;
use finecc_model::TxnId;
use finecc_obs::{ContentionKind, EventKind, ObjKey, Obs, Phase};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The observability key a lockable resource's contention is
/// attributed to: instances and tuples by OID (a tuple *is* the
/// projection of one instance, so both granularities heat the same
/// object), fields by `(oid, field)`, class-level resources by class.
fn obj_key(res: &ResourceId) -> ObjKey {
    match res {
        ResourceId::Instance(o, _) => ObjKey::Instance(o.0),
        ResourceId::Tuple(_, o) => ObjKey::Instance(o.0),
        ResourceId::Field(o, f) => ObjKey::Field(o.0, f.0),
        ResourceId::Class(c) | ResourceId::Relation(c) => ObjKey::Class(c.0),
    }
}

/// Why a blocking acquisition failed. Both cases mean the transaction
/// should abort (release everything, undo, optionally retry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// The request closed a waits-for cycle and this transaction was
    /// chosen as the victim, or another detector flagged it.
    Deadlock,
    /// The request waited longer than the configured timeout.
    Timeout,
}

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcquireError::Deadlock => write!(f, "deadlock victim"),
            AcquireError::Timeout => write!(f, "lock wait timeout"),
        }
    }
}

impl std::error::Error for AcquireError {}

/// Result of a non-blocking [`LockManager::try_acquire`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryAcquire {
    /// The lock was granted (or already held).
    Granted,
    /// The lock conflicts with granted or queued requests.
    WouldBlock,
}

/// Which transaction dies when a deadlock cycle is found.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Abort the requester that closed the cycle (deterministic, cheap).
    #[default]
    Requester,
    /// Abort the youngest transaction (largest [`TxnId`]) on the cycle.
    Youngest,
}

#[derive(Default)]
struct State {
    entries: HashMap<ResourceId, LockEntry>,
    held: HashMap<TxnId, HashSet<ResourceId>>,
    victims: HashSet<TxnId>,
}

/// The lock manager. `S` supplies per-resource mode compatibility.
pub struct LockManager<S> {
    src: S,
    state: Mutex<State>,
    cv: Condvar,
    next_txn: AtomicU64,
    /// Live counters, shared so metrics-registry sources can hold them
    /// beyond the manager's borrow.
    pub stats: Arc<LockStats>,
    victim_policy: VictimPolicy,
    wait_timeout: Duration,
    obs: Arc<Obs>,
}

impl<S: ModeSource> LockManager<S> {
    /// Creates a manager with the default victim policy (requester dies)
    /// and a 10-second wait timeout.
    pub fn new(src: S) -> LockManager<S> {
        LockManager {
            src,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            next_txn: AtomicU64::new(1),
            stats: Arc::new(LockStats::default()),
            victim_policy: VictimPolicy::Requester,
            wait_timeout: Duration::from_secs(10),
            obs: Arc::new(Obs::disabled()),
        }
    }

    /// Sets the deadlock victim policy.
    pub fn with_victim_policy(mut self, p: VictimPolicy) -> Self {
        self.victim_policy = p;
        self
    }

    /// Sets the blocking-wait timeout.
    pub fn with_timeout(mut self, d: Duration) -> Self {
        self.wait_timeout = d;
        self
    }

    /// Attaches an observability handle: blocked requests are timed
    /// into [`Phase::LockWait`] and attributed to the blocking
    /// resource's object. Disabled handles cost one branch per block.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }

    /// Records a *granted* blocked wait: the wait histogram, plus a
    /// trace `block` span when the transaction is sampled.
    fn note_granted_wait(&self, txn: TxnId, res: &ResourceId, started: Option<Instant>) {
        let Some(t0) = started else { return };
        let ns = t0.elapsed().as_nanos() as u64;
        self.obs.record_phase_ns(Phase::LockWait, ns);
        if self.obs.trace_sampled(txn.0) {
            let oid = match res {
                ResourceId::Instance(o, _) | ResourceId::Tuple(_, o) | ResourceId::Field(o, _) => {
                    o.0
                }
                _ => 0,
            };
            let now = self.obs.now_ns();
            self.obs
                .emit(EventKind::Block, now.saturating_sub(ns), ns, txn.0, oid);
        }
    }

    /// The mode source.
    pub fn source(&self) -> &S {
        &self.src
    }

    /// Starts a new transaction (monotonically increasing ids; the id
    /// doubles as the age for [`VictimPolicy::Youngest`]).
    pub fn begin(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Blocking acquisition under strict 2PL. Returns when granted, the
    /// transaction is chosen as a deadlock victim, or the wait times out.
    pub fn acquire(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> Result<(), AcquireError> {
        // Chaos scheduling decision strictly before the table lock (a
        // parked holder of `state` would deadlock the token scheduler).
        finecc_chaos::yield_point(finecc_chaos::Site::LockAcquire);
        LockStats::bump(&self.stats.requests);
        let mut st = self.state.lock();
        if st.victims.remove(&txn) {
            return Err(AcquireError::Deadlock);
        }
        {
            let entry = st.entries.entry(res).or_default();
            if entry.holds(txn, mode) {
                LockStats::bump(&self.stats.immediate);
                return Ok(());
            }
            if entry.can_grant(&self.src, &res, txn, mode) {
                let conversion = entry.holds_any(txn);
                entry.grant(txn, mode);
                if conversion {
                    LockStats::bump(&self.stats.upgrades);
                }
                st.held.entry(txn).or_default().insert(res);
                LockStats::bump(&self.stats.immediate);
                return Ok(());
            }
            LockStats::bump(&self.stats.blocks);
            if entry.holds_any(txn) {
                LockStats::bump(&self.stats.upgrades);
            }
            entry.enqueue(txn, mode);
        }
        // Attribute exactly one contention event per bump of
        // `stats.blocks`, so the registry's lock_blocks total equals
        // the scheme-level blocks counter.
        self.obs.contend(obj_key(&res), ContentionKind::LockBlock);
        let wait_start = self.obs.is_enabled().then(Instant::now);

        // Under a chaos scheduled session the condvar wait is replaced
        // by a cooperative drop-yield-relock cycle (no other worker can
        // run while this one sleeps on a condvar), and this budget of
        // cycles plays the wall-clock timeout's role in virtual time.
        const CHAOS_WAIT_BUDGET: u32 = 1_000;
        let mut chaos_waits = 0u32;

        loop {
            // Deadlock check: this request may have closed a cycle.
            let wf = self.build_waits_for(&st);
            if let Some(cycle) = wf.cycle_through(txn) {
                LockStats::bump(&self.stats.deadlocks);
                let victim = match self.victim_policy {
                    VictimPolicy::Requester => txn,
                    VictimPolicy::Youngest => *cycle.iter().max().expect("cycle is non-empty"),
                };
                if victim == txn {
                    if let Some(e) = st.entries.get_mut(&res) {
                        e.dequeue(txn, mode);
                    }
                    self.cv.notify_all();
                    return Err(AcquireError::Deadlock);
                }
                st.victims.insert(victim);
                self.cv.notify_all();
            }

            let timed_out = if finecc_chaos::scheduled_session() {
                drop(st);
                finecc_chaos::yield_point(finecc_chaos::Site::LockWait);
                st = self.state.lock();
                chaos_waits += 1;
                chaos_waits >= CHAOS_WAIT_BUDGET
            } else {
                self.cv.wait_for(&mut st, self.wait_timeout).timed_out()
            };

            if st.victims.remove(&txn) {
                if let Some(e) = st.entries.get_mut(&res) {
                    e.dequeue(txn, mode);
                }
                self.cv.notify_all();
                return Err(AcquireError::Deadlock);
            }
            let entry = st.entries.entry(res).or_default();
            if entry.can_grant_queued(&self.src, &res, txn, mode) {
                entry.dequeue(txn, mode);
                entry.grant(txn, mode);
                st.held.entry(txn).or_default().insert(res);
                self.note_granted_wait(txn, &res, wait_start);
                // Compatible waiters behind us may now also be grantable.
                self.cv.notify_all();
                return Ok(());
            }
            if timed_out {
                entry.dequeue(txn, mode);
                LockStats::bump(&self.stats.timeouts);
                self.cv.notify_all();
                return Err(AcquireError::Timeout);
            }
        }
    }

    /// Non-blocking acquisition: grants immediately or reports
    /// `WouldBlock` without queueing. Used by the deterministic simulator.
    pub fn try_acquire(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> TryAcquire {
        LockStats::bump(&self.stats.requests);
        let mut st = self.state.lock();
        let entry = st.entries.entry(res).or_default();
        if entry.holds(txn, mode) {
            LockStats::bump(&self.stats.immediate);
            return TryAcquire::Granted;
        }
        if entry.can_grant(&self.src, &res, txn, mode) {
            let conversion = entry.holds_any(txn);
            entry.grant(txn, mode);
            if conversion {
                LockStats::bump(&self.stats.upgrades);
            }
            st.held.entry(txn).or_default().insert(res);
            LockStats::bump(&self.stats.immediate);
            TryAcquire::Granted
        } else {
            LockStats::bump(&self.stats.would_blocks);
            TryAcquire::WouldBlock
        }
    }

    /// Strict-2PL release: drops every lock (granted and queued) of `txn`
    /// and wakes waiters. Called exactly once at commit/abort.
    pub fn release_all(&self, txn: TxnId) {
        LockStats::bump(&self.stats.releases);
        let mut st = self.state.lock();
        st.victims.remove(&txn);
        if let Some(resources) = st.held.remove(&txn) {
            for res in resources {
                if let Some(e) = st.entries.get_mut(&res) {
                    e.purge(txn);
                    if e.is_idle() {
                        st.entries.remove(&res);
                    }
                }
            }
        }
        // Queued-only requests (blocked acquire in another thread) are
        // also purged so the waiter sees itself gone and re-queues or
        // errors; in practice acquire() owns its queue entry, so this is
        // only for crashed callers.
        self.cv.notify_all();
    }

    /// `true` if `txn` currently holds `mode` on `res`.
    pub fn holds(&self, txn: TxnId, res: ResourceId, mode: LockMode) -> bool {
        self.state
            .lock()
            .entries
            .get(&res)
            .is_some_and(|e| e.holds(txn, mode))
    }

    /// The resources `txn` holds locks on.
    pub fn held_resources(&self, txn: TxnId) -> Vec<ResourceId> {
        self.state
            .lock()
            .held
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of resources with live lock state.
    pub fn entry_count(&self) -> usize {
        self.state.lock().entries.len()
    }

    fn build_waits_for(&self, st: &State) -> WaitsFor {
        let mut wf = WaitsFor::new();
        for (res, entry) in &st.entries {
            for &(t, m) in &entry.queue {
                wf.add_edges(t, entry.blockers(&self.src, res, t, m));
            }
        }
        wf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::{RwSource, READ, WRITE};
    use finecc_model::{ClassId, Oid};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn res(i: u64) -> ResourceId {
        ResourceId::Instance(Oid(i), ClassId(0))
    }

    fn rd() -> LockMode {
        LockMode::plain(READ)
    }

    fn wr() -> LockMode {
        LockMode::plain(WRITE)
    }

    fn mk() -> Arc<LockManager<RwSource>> {
        Arc::new(LockManager::new(RwSource).with_timeout(Duration::from_secs(5)))
    }

    #[test]
    fn shared_reads_exclusive_writes() {
        let lm = mk();
        let (t1, t2) = (lm.begin(), lm.begin());
        lm.acquire(t1, res(1), rd()).unwrap();
        lm.acquire(t2, res(1), rd()).unwrap();
        assert_eq!(
            lm.try_acquire(lm.begin(), res(1), wr()),
            TryAcquire::WouldBlock
        );
        lm.release_all(t1);
        lm.release_all(t2);
        assert_eq!(
            lm.try_acquire(lm.begin(), res(1), wr()),
            TryAcquire::Granted
        );
    }

    #[test]
    fn reacquire_held_mode_is_noop() {
        let lm = mk();
        let t = lm.begin();
        lm.acquire(t, res(1), rd()).unwrap();
        lm.acquire(t, res(1), rd()).unwrap();
        assert!(lm.holds(t, res(1), rd()));
        assert_eq!(lm.held_resources(t), vec![res(1)]);
    }

    #[test]
    fn blocking_handoff_across_threads() {
        let lm = mk();
        let t1 = lm.begin();
        lm.acquire(t1, res(1), wr()).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            let t2 = lm2.begin();
            lm2.acquire(t2, res(1), wr()).unwrap();
            lm2.release_all(t2);
            true
        });
        thread::sleep(Duration::from_millis(50));
        lm.release_all(t1);
        assert!(h.join().unwrap());
    }

    #[test]
    fn classic_two_resource_deadlock_detected() {
        let lm = mk();
        let t1 = lm.begin();
        let t2 = lm.begin();
        lm.acquire(t1, res(1), wr()).unwrap();
        lm.acquire(t2, res(2), wr()).unwrap();

        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            // t2 waits for res 1 (held by t1).
            lm2.acquire(t2, res(1), wr())
        });
        thread::sleep(Duration::from_millis(50));
        // t1 now closes the cycle: waits for res 2 (held by t2) → victim.
        let r1 = lm.acquire(t1, res(2), wr());
        assert_eq!(r1, Err(AcquireError::Deadlock));
        lm.release_all(t1);
        // t2 proceeds once t1 released.
        assert_eq!(h.join().unwrap(), Ok(()));
        lm.release_all(t2);
        assert!(lm.stats.snapshot().deadlocks >= 1);
    }

    #[test]
    fn upgrade_deadlock_two_readers() {
        // The System R escalation scenario (problem P3): both read, both
        // try to upgrade — guaranteed deadlock; one must die.
        let lm = mk();
        let t1 = lm.begin();
        let t2 = lm.begin();
        lm.acquire(t1, res(1), rd()).unwrap();
        lm.acquire(t2, res(1), rd()).unwrap();

        let upgrade = |txn: TxnId| {
            let lm = Arc::clone(&lm);
            thread::spawn(move || {
                let r = lm.acquire(txn, res(1), wr());
                // Victim or winner, release immediately so the peer can
                // make progress (strict 2PL end-of-transaction).
                lm.release_all(txn);
                r
            })
        };
        let h1 = upgrade(t1);
        let h2 = upgrade(t2);
        let (r1, r2) = (h1.join().unwrap(), h2.join().unwrap());
        // No timeout allowed; at least one must be a deadlock victim, and
        // if exactly one dies the other must have won the write.
        match (r1, r2) {
            (Ok(()), Err(AcquireError::Deadlock)) => {}
            (Err(AcquireError::Deadlock), Ok(())) => {}
            // Both deadlocked is also a safe (if pessimistic) outcome
            // under the Requester policy if timing interleaves detection.
            (Err(AcquireError::Deadlock), Err(AcquireError::Deadlock)) => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        assert!(lm.stats.snapshot().deadlocks >= 1);
    }

    #[test]
    fn youngest_victim_policy() {
        let lm = Arc::new(
            LockManager::new(RwSource)
                .with_victim_policy(VictimPolicy::Youngest)
                .with_timeout(Duration::from_secs(5)),
        );
        let t1 = lm.begin(); // older
        let t2 = lm.begin(); // younger
        lm.acquire(t1, res(1), wr()).unwrap();
        lm.acquire(t2, res(2), wr()).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            let r = lm2.acquire(t2, res(1), wr());
            if r.is_err() {
                lm2.release_all(t2);
            }
            r
        });
        thread::sleep(Duration::from_millis(50));
        // t1 closes the cycle; youngest (t2) must die, t1 proceeds.
        let r1 = lm.acquire(t1, res(2), wr());
        assert_eq!(r1, Ok(()));
        assert_eq!(h.join().unwrap(), Err(AcquireError::Deadlock));
        lm.release_all(t1);
    }

    #[test]
    fn timeout_fires() {
        let lm = Arc::new(LockManager::new(RwSource).with_timeout(Duration::from_millis(100)));
        let t1 = lm.begin();
        let t2 = lm.begin();
        lm.acquire(t1, res(1), wr()).unwrap();
        let r = lm.acquire(t2, res(1), wr());
        assert_eq!(r, Err(AcquireError::Timeout));
        assert_eq!(lm.stats.snapshot().timeouts, 1);
        lm.release_all(t1);
        lm.release_all(t2);
    }

    #[test]
    fn fifo_fairness_no_overtaking() {
        let lm = mk();
        let t1 = lm.begin();
        lm.acquire(t1, res(1), wr()).unwrap();
        // t2 queues a write.
        let lm2 = Arc::clone(&lm);
        let t2 = lm.begin();
        let h2 = thread::spawn(move || lm2.acquire(t2, res(1), wr()).map(|()| t2));
        thread::sleep(Duration::from_millis(30));
        // t3's read must not overtake t2.
        assert_eq!(
            lm.try_acquire(lm.begin(), res(1), rd()),
            TryAcquire::WouldBlock
        );
        lm.release_all(t1);
        let got = h2.join().unwrap().unwrap();
        assert_eq!(got, t2);
        lm.release_all(t2);
    }

    #[test]
    fn release_all_cleans_entries() {
        let lm = mk();
        let t = lm.begin();
        lm.acquire(t, res(1), rd()).unwrap();
        lm.acquire(t, res(2), rd()).unwrap();
        assert_eq!(lm.entry_count(), 2);
        lm.release_all(t);
        assert_eq!(lm.entry_count(), 0);
        assert!(lm.held_resources(t).is_empty());
    }

    #[test]
    fn stress_many_threads_no_lost_grants() {
        let lm = Arc::new(LockManager::new(RwSource).with_timeout(Duration::from_secs(30)));
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut hs = Vec::new();
        for _ in 0..8 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            hs.push(thread::spawn(move || {
                for _ in 0..200 {
                    let t = lm.begin();
                    lm.acquire(t, res(42), wr()).unwrap();
                    // Critical section: non-atomic read-modify-write made
                    // safe by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    thread::yield_now();
                    counter.store(v + 1, Ordering::Relaxed);
                    lm.release_all(t);
                }
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 1600);
    }

    #[test]
    fn concurrent_readers_dont_block_each_other() {
        let lm = mk();
        let mut hs = Vec::new();
        for _ in 0..4 {
            let lm = Arc::clone(&lm);
            hs.push(thread::spawn(move || {
                let t = lm.begin();
                lm.acquire(t, res(7), rd()).unwrap();
                thread::sleep(Duration::from_millis(20));
                lm.release_all(t);
            }));
        }
        for h in hs {
            h.join().unwrap();
        }
        let s = lm.stats.snapshot();
        assert_eq!(s.blocks, 0, "readers must all be immediate");
    }
}
