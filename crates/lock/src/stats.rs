//! Lock-manager statistics.
//!
//! Every counter is a relaxed atomic: the numbers feed experiment reports
//! (E4–E7), not control flow.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters of a [`crate::LockManager`].
#[derive(Debug, Default)]
pub struct LockStats {
    /// Lock requests (acquire + try_acquire).
    pub requests: AtomicU64,
    /// Requests granted without waiting.
    pub immediate: AtomicU64,
    /// Requests that blocked at least once.
    pub blocks: AtomicU64,
    /// Deadlocks detected (victims aborted).
    pub deadlocks: AtomicU64,
    /// Requests that timed out while waiting.
    pub timeouts: AtomicU64,
    /// Lock conversions (a transaction adding a mode on a resource it
    /// already holds) — the escalations of problem P3.
    pub upgrades: AtomicU64,
    /// `release_all` calls (transaction ends).
    pub releases: AtomicU64,
    /// try_acquire calls that returned `WouldBlock`.
    pub would_blocks: AtomicU64,
}

/// A point-in-time copy of [`LockStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub requests: u64,
    pub immediate: u64,
    pub blocks: u64,
    pub deadlocks: u64,
    pub timeouts: u64,
    pub upgrades: u64,
    pub releases: u64,
    pub would_blocks: u64,
}

impl LockStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            immediate: self.immediate.load(Ordering::Relaxed),
            blocks: self.blocks.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            would_blocks: self.would_blocks.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.immediate.store(0, Ordering::Relaxed);
        self.blocks.store(0, Ordering::Relaxed);
        self.deadlocks.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.upgrades.store(0, Ordering::Relaxed);
        self.releases.store(0, Ordering::Relaxed);
        self.would_blocks.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Emits every counter under stable `finecc.lock.*` names.
    pub fn collect_metrics(&self, c: &mut finecc_obs::Collector) {
        c.counter("finecc.lock.requests", self.requests);
        c.counter("finecc.lock.immediate", self.immediate);
        c.counter("finecc.lock.blocks", self.blocks);
        c.counter("finecc.lock.deadlocks", self.deadlocks);
        c.counter("finecc.lock.timeouts", self.timeouts);
        c.counter("finecc.lock.upgrades", self.upgrades);
        c.counter("finecc.lock.releases", self.releases);
        c.counter("finecc.lock.would_blocks", self.would_blocks);
    }

    /// The difference `self - earlier`, counter-wise (saturating).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.saturating_sub(earlier.requests),
            immediate: self.immediate.saturating_sub(earlier.immediate),
            blocks: self.blocks.saturating_sub(earlier.blocks),
            deadlocks: self.deadlocks.saturating_sub(earlier.deadlocks),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            upgrades: self.upgrades.saturating_sub(earlier.upgrades),
            releases: self.releases.saturating_sub(earlier.releases),
            would_blocks: self.would_blocks.saturating_sub(earlier.would_blocks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset() {
        let s = LockStats::default();
        LockStats::bump(&s.requests);
        LockStats::bump(&s.requests);
        LockStats::bump(&s.deadlocks);
        let snap = s.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.deadlocks, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_diffs() {
        let a = StatsSnapshot {
            requests: 10,
            blocks: 3,
            ..Default::default()
        };
        let b = StatsSnapshot {
            requests: 15,
            blocks: 4,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.requests, 5);
        assert_eq!(d.blocks, 1);
    }
}
