//! Lock modes and pluggable compatibility sources.

use crate::resource::ResourceId;
use finecc_core::CompiledSchema;
use std::fmt;
use std::sync::Arc;

/// The read mode of the classical 2-mode table.
pub const READ: u16 = 0;
/// The write mode of the classical 2-mode table.
pub const WRITE: u16 = 1;

/// How a lock covers its resource (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LockKind {
    /// An ordinary lock on a non-class resource (instance, field, tuple…).
    Plain,
    /// A class lock with `hierarchical = false`: the transaction will lock
    /// the individual instances it uses. Intentional locks are mutually
    /// compatible — conflicts surface at instance granularity.
    Intentional,
    /// A class lock with `hierarchical = true`: implicitly locks **all**
    /// instances of the class; compatibility falls back to the access-mode
    /// matrix against any other class lock.
    Hierarchical,
}

/// A lock mode: an access-mode index into the resource's mode table, plus
/// the coverage kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LockMode {
    /// Index into the governing mode table (a method's access mode for
    /// commutativity tables; [`READ`]/[`WRITE`] for RW tables).
    pub mode: u16,
    /// Coverage kind.
    pub kind: LockKind,
}

impl LockMode {
    /// An ordinary (instance/field/tuple) lock.
    pub fn plain(mode: u16) -> LockMode {
        LockMode {
            mode,
            kind: LockKind::Plain,
        }
    }

    /// A class lock: `(mode, hierarchical)` as in §5.2.
    pub fn class(mode: u16, hierarchical: bool) -> LockMode {
        LockMode {
            mode,
            kind: if hierarchical {
                LockKind::Hierarchical
            } else {
                LockKind::Intentional
            },
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LockKind::Plain => write!(f, "m{}", self.mode),
            LockKind::Intentional => write!(f, "(m{},false)", self.mode),
            LockKind::Hierarchical => write!(f, "(m{},true)", self.mode),
        }
    }
}

/// Per-resource access-mode compatibility: the seam that lets one lock
/// manager serve the paper's commutativity matrices, classical RW tables,
/// and the relational baseline.
pub trait ModeSource: Send + Sync {
    /// Whether raw modes `a` and `b` are compatible on `res`.
    fn modes_compatible(&self, res: &ResourceId, a: u16, b: u16) -> bool;

    /// Full lock-mode compatibility: layers the §5.2 kind semantics over
    /// the raw matrix. Intentional↔intentional is always compatible; any
    /// hierarchical participant (and plain locks) consult the matrix.
    fn compatible(&self, res: &ResourceId, a: LockMode, b: LockMode) -> bool {
        match (a.kind, b.kind) {
            (LockKind::Intentional, LockKind::Intentional) => true,
            _ => self.modes_compatible(res, a.mode, b.mode),
        }
    }
}

/// The classical 2-mode read/write table, for every resource.
/// Read–read is the only compatible pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct RwSource;

impl ModeSource for RwSource {
    #[inline]
    fn modes_compatible(&self, _res: &ResourceId, a: u16, b: u16) -> bool {
        a == READ && b == READ
    }
}

/// The paper's scheme: per-class generated commutativity matrices for
/// instance and class resources; RW for anything else (not used by the
/// TAV scheme, but keeps the source total).
#[derive(Clone)]
pub struct CommutSource {
    compiled: Arc<CompiledSchema>,
}

impl CommutSource {
    /// Wraps a compiled schema.
    pub fn new(compiled: Arc<CompiledSchema>) -> CommutSource {
        CommutSource { compiled }
    }

    /// The compiled schema backing this source.
    pub fn compiled(&self) -> &CompiledSchema {
        &self.compiled
    }
}

impl ModeSource for CommutSource {
    #[inline]
    fn modes_compatible(&self, res: &ResourceId, a: u16, b: u16) -> bool {
        match res.class() {
            Some(c) => self.compiled.class(c).commute(a as usize, b as usize),
            None => a == READ && b == READ,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::{build_schema, FIGURE1_SOURCE};
    use finecc_model::{ClassId, Oid};

    #[test]
    fn rw_table() {
        let s = RwSource;
        let r = ResourceId::Field(Oid(1), finecc_model::FieldId(0));
        assert!(s.modes_compatible(&r, READ, READ));
        assert!(!s.modes_compatible(&r, READ, WRITE));
        assert!(!s.modes_compatible(&r, WRITE, READ));
        assert!(!s.modes_compatible(&r, WRITE, WRITE));
    }

    #[test]
    fn kind_semantics() {
        let s = RwSource;
        let c = ResourceId::Class(ClassId(0));
        let iw = LockMode::class(WRITE, false);
        let ir = LockMode::class(READ, false);
        let hw = LockMode::class(WRITE, true);
        let hr = LockMode::class(READ, true);
        // Intentional ↔ intentional: always compatible.
        assert!(s.compatible(&c, iw, ir));
        assert!(s.compatible(&c, iw, iw));
        // Hierarchical participant: matrix decides.
        assert!(!s.compatible(&c, hw, ir));
        assert!(!s.compatible(&c, iw, hr));
        assert!(s.compatible(&c, hr, ir));
        assert!(s.compatible(&c, hr, hr));
        assert!(!s.compatible(&c, hw, hr));
        // Plain locks: matrix.
        let i = ResourceId::Instance(Oid(1), ClassId(0));
        assert!(!s.compatible(&i, LockMode::plain(WRITE), LockMode::plain(READ)));
        assert!(s.compatible(&i, LockMode::plain(READ), LockMode::plain(READ)));
    }

    #[test]
    fn commut_source_uses_class_matrix() {
        let (schema, bodies) = build_schema(FIGURE1_SOURCE).unwrap();
        let compiled = Arc::new(finecc_core::compile(&schema, &bodies).unwrap());
        let c2 = schema.class_by_name("c2").unwrap();
        let t = compiled.class(c2);
        let (m1, m2, m3, m4) = (
            t.index_of("m1").unwrap() as u16,
            t.index_of("m2").unwrap() as u16,
            t.index_of("m3").unwrap() as u16,
            t.index_of("m4").unwrap() as u16,
        );
        let src = CommutSource::new(compiled);
        let inst = ResourceId::Instance(Oid(7), c2);
        // Table 2 semantics through the lock layer.
        assert!(!src.modes_compatible(&inst, m1, m2));
        assert!(src.modes_compatible(&inst, m2, m4));
        assert!(src.modes_compatible(&inst, m3, m3));
        assert!(!src.modes_compatible(&inst, m4, m4));
        // Class-resource uses the same matrix.
        let cls = ResourceId::Class(c2);
        assert!(src.modes_compatible(&cls, m2, m3));
    }

    #[test]
    fn lockmode_display() {
        assert_eq!(LockMode::plain(3).to_string(), "m3");
        assert_eq!(LockMode::class(1, true).to_string(), "(m1,true)");
        assert_eq!(LockMode::class(1, false).to_string(), "(m1,false)");
    }
}
