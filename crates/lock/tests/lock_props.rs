//! Property tests over the lock manager: on random acquire/release
//! scripts, the granted sets must never contain an incompatible pair,
//! strict-FIFO must hold for non-conversions, and release must free
//! resources completely.

use finecc_lock::{
    LockManager, LockMode, ModeSource, ResourceId, RwSource, TryAcquire, READ, WRITE,
};
use finecc_model::{ClassId, Oid, TxnId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Step {
    /// Try to acquire (txn slot, resource index, write?).
    Acquire(usize, u64, bool),
    /// Release everything a txn slot holds.
    Release(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..6, 0u64..4, any::<bool>()).prop_map(|(t, r, w)| Step::Acquire(t, r, w)),
        (0usize..6).prop_map(Step::Release),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Safety: at no point do two different transactions hold
    /// incompatible modes on the same resource.
    #[test]
    fn granted_sets_stay_compatible(steps in proptest::collection::vec(step_strategy(), 1..80)) {
        let lm = LockManager::new(RwSource);
        // Model state: per slot, the txn id; per resource, granted modes.
        let mut slots: Vec<TxnId> = (0..6).map(|_| lm.begin()).collect();
        let mut model: HashMap<(u64, TxnId), u16> = HashMap::new();

        for step in steps {
            match step {
                Step::Acquire(slot, r, write) => {
                    let txn = slots[slot];
                    let res = ResourceId::Instance(Oid(r), ClassId(0));
                    let mode = if write { WRITE } else { READ };
                    let granted = lm.try_acquire(txn, res, LockMode::plain(mode))
                        == TryAcquire::Granted;
                    if granted {
                        let e = model.entry((r, txn)).or_insert(READ);
                        *e = (*e).max(mode);
                        // Check the model: every other holder on r must be
                        // compatible with what we just got.
                        for ((mr, mt), mm) in &model {
                            if *mr == r && *mt != txn {
                                prop_assert!(
                                    RwSource.modes_compatible(&res, mode, *mm),
                                    "incompatible co-grant: {mode} with {mm}"
                                );
                            }
                        }
                    } else {
                        // A refusal must be justified: some other holder
                        // conflicts, or the txn would jump a queue (no
                        // queue exists under try_acquire, so: conflict).
                        let conflict = model.iter().any(|((mr, mt), mm)| {
                            *mr == r && *mt != txn
                                && !RwSource.modes_compatible(&res, mode, *mm)
                        });
                        prop_assert!(conflict, "spurious WouldBlock");
                    }
                }
                Step::Release(slot) => {
                    let txn = slots[slot];
                    lm.release_all(txn);
                    model.retain(|(_, mt), _| *mt != txn);
                    // Fresh txn id for the slot (strict 2PL: one
                    // release per transaction).
                    slots[slot] = lm.begin();
                }
            }
        }
    }

    /// Liveness: after releasing everything, every resource is free.
    #[test]
    fn full_release_frees_everything(ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..40)) {
        let lm = LockManager::new(RwSource);
        let txn = lm.begin();
        for (r, w) in &ops {
            let res = ResourceId::Instance(Oid(*r), ClassId(0));
            let mode = if *w { WRITE } else { READ };
            // Single txn: everything must be granted (self-compatible).
            prop_assert_eq!(
                lm.try_acquire(txn, res, LockMode::plain(mode)),
                TryAcquire::Granted
            );
        }
        lm.release_all(txn);
        prop_assert_eq!(lm.entry_count(), 0);
        let probe = lm.begin();
        for (r, _) in &ops {
            let res = ResourceId::Instance(Oid(*r), ClassId(0));
            prop_assert_eq!(
                lm.try_acquire(probe, res, LockMode::plain(WRITE)),
                TryAcquire::Granted
            );
            lm.release_all(probe);
        }
    }

    /// Class-lock kind semantics: intentional locks of any modes always
    /// co-exist; a hierarchical lock enforces the matrix.
    #[test]
    fn intentional_locks_always_coexist(modes in proptest::collection::vec(any::<bool>(), 2..12)) {
        let lm = LockManager::new(RwSource);
        let res = ResourceId::Class(ClassId(0));
        let mut txns = Vec::new();
        for w in &modes {
            let t = lm.begin();
            let m = if *w { WRITE } else { READ };
            prop_assert_eq!(
                lm.try_acquire(t, res, LockMode::class(m, false)),
                TryAcquire::Granted,
                "intentional locks are mutually compatible"
            );
            txns.push(t);
        }
        // A hierarchical write cannot join any non-empty intentional set.
        let h = lm.begin();
        prop_assert_eq!(
            lm.try_acquire(h, res, LockMode::class(WRITE, true)),
            TryAcquire::WouldBlock
        );
        for t in txns {
            lm.release_all(t);
        }
        prop_assert_eq!(
            lm.try_acquire(h, res, LockMode::class(WRITE, true)),
            TryAcquire::Granted
        );
    }
}
