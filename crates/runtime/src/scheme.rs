//! The scheme trait: one interface, six concurrency-control policies.

use crate::env::Env;
use crate::txn::Txn;
use finecc_lang::ExecError;
use finecc_lock::StatsSnapshot;
use finecc_model::{ClassId, Oid, Value};
use finecc_mvcc::{IsolationLevel, MvccStatsSnapshot};
use finecc_obs::Obs;
use finecc_wal::{DurabilityLevel, Wal, WalConfig, WalStatsSnapshot};
use std::path::Path;
use std::sync::Arc;

/// A complete concurrency-control scheme: transaction lifecycle plus the
/// four §5.2 access patterns.
///
/// * [`CcScheme::send`] — pattern (i): a message to **one instance**.
/// * [`CcScheme::send_all`] — patterns (ii)/(iv): a message to **all**
///   instances of the domain rooted at a class (the paper's T2 locks the
///   whole domain hierarchically even for "all instances of class c1",
///   because the deep extent spans the subclasses).
/// * [`CcScheme::send_some`] — pattern (iii): a message to **selected**
///   instances of a domain (intentional class locks + per-instance locks).
///
/// The four lock schemes are strict 2PL: locks accumulate during the
/// transaction and are released only by [`CcScheme::commit`] /
/// [`CcScheme::abort`]. The two mvcc schemes take no locks at all —
/// their admission control is optimistic (versioned reads,
/// first-updater-wins writes; at [`IsolationLevel::Serializable`] also
/// commit-time SSI validation), so their lock statistics are
/// identically zero and conflicts surface as retryable aborts instead
/// of blocking.
pub trait CcScheme: Send + Sync {
    /// Scheme name for reports ("tav", "rw", "fieldlock", "relational",
    /// "mvcc", "mvcc-ssi").
    fn name(&self) -> &'static str;

    /// The shared environment.
    fn env(&self) -> &Env;

    /// Starts a transaction.
    fn begin(&self) -> Txn;

    /// Pattern (i): sends `method(args)` to one instance under this
    /// scheme's locking policy, running the method to completion.
    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError>;

    /// Patterns (ii)/(iv): sends `method(args)` to every instance of the
    /// domain rooted at `root` (deep extent), under hierarchical locks.
    /// Returns the per-instance results in OID order.
    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError>;

    /// Pattern (iii): sends `method(args)` to the given instances of the
    /// domain rooted at `root`, under intentional class locks plus
    /// per-instance locks.
    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError>;

    /// Commits the transaction and returns a commit sequence number that
    /// serializes conflicting transactions. Lock schemes draw it while
    /// locks are still held (strict 2PL), then release all locks; the
    /// mvcc schemes return the commit timestamp that flipped their
    /// versions (read-only mvcc transactions serialize at — and return —
    /// their snapshot timestamp, which is unique only among writers).
    ///
    /// Commit can *fail*: `mvcc-ssi` runs dangerous-structure validation
    /// here and refuses serializability-violating transactions. On `Err`
    /// the transaction has already been fully rolled back — the caller
    /// must NOT call [`CcScheme::abort`]; when the error is retryable
    /// ([`ExecError::is_deadlock`]) the standard response is to re-run
    /// on a fresh snapshot, exactly like a deadlock victim (see
    /// [`crate::run_txn`]). The four lock schemes and plain `mvcc` are
    /// infallible here and always return `Ok`.
    fn commit(&self, txn: Txn) -> Result<u64, ExecError>;

    /// Aborts: rolls the undo log back, then releases all locks.
    fn abort(&self, txn: Txn);

    /// Lock-manager statistics snapshot.
    fn stats(&self) -> StatsSnapshot;

    /// Resets the statistics counters.
    fn reset_stats(&self);

    /// Multi-version statistics, for schemes backed by a version heap
    /// (`None` for the pure locking schemes).
    fn mvcc_stats(&self) -> Option<MvccStatsSnapshot> {
        None
    }

    /// Write-ahead-log statistics, when durability is attached (`None`
    /// at [`DurabilityLevel::None`]). Every scheme logs through the
    /// environment's shared handle — the mvcc schemes via their heap's
    /// commit path, the lock schemes via their undo-projection redo
    /// images — so this default covers all six.
    fn wal_stats(&self) -> Option<WalStatsSnapshot> {
        self.env().wal.as_ref().map(|w| w.stats().snapshot())
    }

    /// The observability sink this scheme records into — the
    /// environment's handle, which the lock managers / mvcc heap / WAL
    /// cloned at construction. Disabled (every probe one branch)
    /// unless [`Env::with_obs`] installed an enabled one.
    fn obs(&self) -> &Arc<Obs> {
        &self.env().obs
    }

    /// The scheme's durability level — a scheme parameter like the
    /// isolation level.
    fn durability(&self) -> DurabilityLevel {
        self.env()
            .wal
            .as_ref()
            .map_or(DurabilityLevel::None, |w| w.level())
    }

    /// Registers this scheme's live metric sources on a
    /// [`finecc_obs::MetricsRegistry`] under `labels` (conventionally
    /// at least `scheme="<name>"`). The default wires the
    /// environment-level sources — the observability plane and, when
    /// durability is attached, the WAL counters. Schemes override to
    /// *add* their own (lock-manager stats, version-heap stats) on top
    /// of the same environment wiring.
    fn register_metrics(&self, reg: &finecc_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        crate::metrics::register_env_metrics(reg, self.env(), labels);
    }

    /// Takes a fuzzy checkpoint and runs the log-maintenance pipeline
    /// (checkpoint retention, log truncation), returning the checkpoint
    /// timestamp. `None` when the scheme has no online checkpoint
    /// support — the default for the lock schemes, whose genesis
    /// checkpoint is written at attach and whose stores only quiesce
    /// between transactions. The mvcc schemes checkpoint concurrently
    /// with live writers (the image pins a snapshot like any reader).
    fn checkpoint(&self) -> Option<Result<u64, ExecError>> {
        None
    }
}

/// The six schemes, for configuration surfaces (CLI flags, workload
/// matrices).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The paper's TAV/commutativity scheme.
    Tav,
    /// Per-message read/write instance locking.
    Rw,
    /// Run-time field locking.
    FieldLock,
    /// Relational decomposition with tuple locking.
    Relational,
    /// Multi-version snapshot reads with optimistic write validation
    /// (snapshot isolation).
    Mvcc,
    /// [`SchemeKind::Mvcc`] plus commit-time SSI validation
    /// (serializable).
    MvccSsi,
}

impl SchemeKind {
    /// All kinds, in comparison order.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::Tav,
        SchemeKind::Rw,
        SchemeKind::FieldLock,
        SchemeKind::Relational,
        SchemeKind::Mvcc,
        SchemeKind::MvccSsi,
    ];

    /// Constructs the scheme over an environment.
    pub fn build(self, env: Env) -> Box<dyn CcScheme> {
        match self {
            SchemeKind::Tav => Box::new(crate::schemes::tav::TavScheme::new(env)),
            SchemeKind::Rw => Box::new(crate::schemes::rw::RwScheme::new(env)),
            SchemeKind::FieldLock => Box::new(crate::schemes::fieldlock::FieldLockScheme::new(env)),
            SchemeKind::Relational => {
                Box::new(crate::schemes::relational::RelationalScheme::new(env))
            }
            SchemeKind::Mvcc | SchemeKind::MvccSsi => {
                Box::new(crate::schemes::mvcc::MvccScheme::with_isolation(
                    env,
                    self.isolation().expect("mvcc kinds have a level"),
                ))
            }
        }
    }

    /// Constructs the scheme over an environment with write-ahead
    /// durability at `level`, logging into `dir`
    /// ([`DurabilityLevel::None`] simply builds the plain scheme). The
    /// mvcc kinds wire the log into their heap's commit path (durable
    /// before visible, fuzzy checkpoints); the lock kinds log their
    /// undo-projection redo images at commit while still holding their
    /// 2PL locks, with a quiescent genesis checkpoint written at
    /// attach. Either way a fresh directory becomes recoverable
    /// (`finecc_wal::recover_database` / `MvccHeap::recover`) from the
    /// first commit on. For the lock kinds the directory must be
    /// fresh — a directory with history belongs to a previous
    /// incarnation of the store and is rejected (recover it into the
    /// environment and use [`Env::resume_wal`] instead); the mvcc
    /// kinds resume through [`finecc_mvcc::MvccHeap::recover`].
    pub fn build_durable(
        self,
        env: Env,
        level: DurabilityLevel,
        dir: impl AsRef<Path>,
    ) -> std::io::Result<Box<dyn CcScheme>> {
        if level == DurabilityLevel::None {
            return Ok(self.build(env));
        }
        match self {
            SchemeKind::Mvcc | SchemeKind::MvccSsi => {
                Ok(Box::new(crate::schemes::mvcc::MvccScheme::with_durability(
                    env,
                    self.isolation().expect("mvcc kinds have a level"),
                    level,
                    dir,
                )?))
            }
            _ => {
                let wal = Arc::new(Wal::open_with_obs(
                    dir,
                    WalConfig {
                        level,
                        ..WalConfig::default()
                    },
                    Arc::clone(&env.obs),
                )?);
                let mut env = env;
                env.attach_wal(wal)?;
                Ok(self.build(env))
            }
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Tav => "tav",
            SchemeKind::Rw => "rw",
            SchemeKind::FieldLock => "fieldlock",
            SchemeKind::Relational => "relational",
            SchemeKind::Mvcc => "mvcc",
            SchemeKind::MvccSsi => "mvcc-ssi",
        }
    }

    /// The isolation level of the multi-version kinds; `None` for the
    /// (serializable-by-locking) lock schemes.
    pub fn isolation(self) -> Option<IsolationLevel> {
        match self {
            SchemeKind::Mvcc => Some(IsolationLevel::Snapshot),
            SchemeKind::MvccSsi => Some(IsolationLevel::Serializable),
            _ => None,
        }
    }

    /// `true` when every admitted execution is serializable: the lock
    /// schemes by strict 2PL, `mvcc-ssi` by commit-time validation;
    /// plain `mvcc` gives snapshot isolation only.
    pub fn serializable(self) -> bool {
        self.isolation() != Some(IsolationLevel::Snapshot)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_enumerate_and_name() {
        assert_eq!(SchemeKind::ALL.len(), 6);
        assert_eq!(SchemeKind::Tav.to_string(), "tav");
        assert_eq!(SchemeKind::Relational.name(), "relational");
        assert_eq!(SchemeKind::Mvcc.name(), "mvcc");
        assert_eq!(SchemeKind::MvccSsi.name(), "mvcc-ssi");
    }

    #[test]
    fn isolation_is_a_scheme_parameter() {
        assert_eq!(SchemeKind::Mvcc.isolation(), Some(IsolationLevel::Snapshot));
        assert_eq!(
            SchemeKind::MvccSsi.isolation(),
            Some(IsolationLevel::Serializable)
        );
        assert_eq!(SchemeKind::Tav.isolation(), None);
        // Serializability: everyone but plain mvcc.
        for kind in SchemeKind::ALL {
            assert_eq!(kind.serializable(), kind != SchemeKind::Mvcc, "{kind}");
        }
    }
}
