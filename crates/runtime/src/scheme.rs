//! The scheme trait: one interface, four concurrency-control policies.

use crate::env::Env;
use crate::txn::Txn;
use finecc_lang::ExecError;
use finecc_lock::StatsSnapshot;
use finecc_model::{ClassId, Oid, Value};
use finecc_mvcc::MvccStatsSnapshot;

/// A complete concurrency-control scheme: transaction lifecycle plus the
/// four §5.2 access patterns.
///
/// * [`CcScheme::send`] — pattern (i): a message to **one instance**.
/// * [`CcScheme::send_all`] — patterns (ii)/(iv): a message to **all**
///   instances of the domain rooted at a class (the paper's T2 locks the
///   whole domain hierarchically even for "all instances of class c1",
///   because the deep extent spans the subclasses).
/// * [`CcScheme::send_some`] — pattern (iii): a message to **selected**
///   instances of a domain (intentional class locks + per-instance locks).
///
/// The four lock schemes are strict 2PL: locks accumulate during the
/// transaction and are released only by [`CcScheme::commit`] /
/// [`CcScheme::abort`]. The mvcc scheme takes no locks at all — its
/// admission control is optimistic (versioned reads, first-updater-wins
/// writes), so its lock statistics are identically zero and conflicts
/// surface as retryable aborts instead of blocking.
pub trait CcScheme: Send + Sync {
    /// Scheme name for reports ("tav", "rw", "fieldlock", "relational",
    /// "mvcc").
    fn name(&self) -> &'static str;

    /// The shared environment.
    fn env(&self) -> &Env;

    /// Starts a transaction.
    fn begin(&self) -> Txn;

    /// Pattern (i): sends `method(args)` to one instance under this
    /// scheme's locking policy, running the method to completion.
    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError>;

    /// Patterns (ii)/(iv): sends `method(args)` to every instance of the
    /// domain rooted at `root` (deep extent), under hierarchical locks.
    /// Returns the per-instance results in OID order.
    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError>;

    /// Pattern (iii): sends `method(args)` to the given instances of the
    /// domain rooted at `root`, under intentional class locks plus
    /// per-instance locks.
    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError>;

    /// Commits the transaction and returns a commit sequence number that
    /// serializes conflicting transactions. Lock schemes draw it while
    /// locks are still held (strict 2PL), then release all locks; the
    /// mvcc scheme returns the commit timestamp that flipped its
    /// versions (read-only mvcc transactions serialize at — and return —
    /// their snapshot timestamp, which is unique only among writers).
    fn commit(&self, txn: Txn) -> u64;

    /// Aborts: rolls the undo log back, then releases all locks.
    fn abort(&self, txn: Txn);

    /// Lock-manager statistics snapshot.
    fn stats(&self) -> StatsSnapshot;

    /// Resets the statistics counters.
    fn reset_stats(&self);

    /// Multi-version statistics, for schemes backed by a version heap
    /// (`None` for the pure locking schemes).
    fn mvcc_stats(&self) -> Option<MvccStatsSnapshot> {
        None
    }
}

/// The five schemes, for configuration surfaces (CLI flags, workload
/// matrices).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The paper's TAV/commutativity scheme.
    Tav,
    /// Per-message read/write instance locking.
    Rw,
    /// Run-time field locking.
    FieldLock,
    /// Relational decomposition with tuple locking.
    Relational,
    /// Multi-version snapshot reads with optimistic write validation.
    Mvcc,
}

impl SchemeKind {
    /// All kinds, in comparison order.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::Tav,
        SchemeKind::Rw,
        SchemeKind::FieldLock,
        SchemeKind::Relational,
        SchemeKind::Mvcc,
    ];

    /// Constructs the scheme over an environment.
    pub fn build(self, env: Env) -> Box<dyn CcScheme> {
        match self {
            SchemeKind::Tav => Box::new(crate::schemes::tav::TavScheme::new(env)),
            SchemeKind::Rw => Box::new(crate::schemes::rw::RwScheme::new(env)),
            SchemeKind::FieldLock => {
                Box::new(crate::schemes::fieldlock::FieldLockScheme::new(env))
            }
            SchemeKind::Relational => {
                Box::new(crate::schemes::relational::RelationalScheme::new(env))
            }
            SchemeKind::Mvcc => Box::new(crate::schemes::mvcc::MvccScheme::new(env)),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Tav => "tav",
            SchemeKind::Rw => "rw",
            SchemeKind::FieldLock => "fieldlock",
            SchemeKind::Relational => "relational",
            SchemeKind::Mvcc => "mvcc",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_enumerate_and_name() {
        assert_eq!(SchemeKind::ALL.len(), 5);
        assert_eq!(SchemeKind::Tav.to_string(), "tav");
        assert_eq!(SchemeKind::Relational.name(), "relational");
        assert_eq!(SchemeKind::Mvcc.name(), "mvcc");
    }
}
