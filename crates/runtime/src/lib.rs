//! # finecc-runtime — executable concurrency-control schemes
//!
//! Glues the method interpreter (`finecc-lang`), the object store
//! (`finecc-store`), the lock manager (`finecc-lock`) and the version
//! heap (`finecc-mvcc`) into six complete, interchangeable
//! concurrency-control schemes behind one trait ([`CcScheme`]):
//!
//! * [`TavScheme`] — **the paper**: one lock per *top* message, mode =
//!   the method's access-mode index in the receiver class's generated
//!   commutativity matrix; class locks `(mode, hierarchical?)` per §5.2;
//!   undo logging by TAV write-projection.
//! * [`RwScheme`] — the read/write baseline the paper criticizes
//!   (ORION-style): every message (self-directed included) classifies its
//!   *own* code as reader or writer and acquires instance locks
//!   per message — exhibiting P2 (repeated controls), P3 (read→write
//!   escalation deadlocks) and P4 (pseudo-conflicts).
//! * [`FieldLockScheme`] — run-time field locking after Agrawal–El
//!   Abbadi \[1\]: locks individual `(instance, field)` resources at each
//!   access; less conservative than TAVs, much higher lock traffic (§6).
//! * [`RelationalScheme`] — the §3/§5.2 relational decomposition: each
//!   class's local fields form a relation, instances span tuples across
//!   the join; tuple RW locks with IS/IX-style relation intents and
//!   primary/foreign-key write propagation.
//! * [`MvccScheme`] — the optimistic/multi-version point of comparison
//!   (not in the paper): snapshot reads take no locks at all, writes are
//!   validated first-updater-wins against per-OID version chains, and
//!   superseded versions are garbage-collected by epoch. Its
//!   [`IsolationLevel`] is a first-class scheme parameter with one
//!   matrix entry per level: `mvcc` (snapshot isolation — write skew
//!   possible) and `mvcc-ssi` (serializable — commit-time
//!   rw-antidependency validation after Cahill et al., surfacing as a
//!   distinct validation-abort class in the statistics).
//!
//! The four lock schemes implement strict two-phase locking with
//! deadlock-victim abort and undo-log rollback; the MVCC schemes abort
//! and retry write-write conflicts (and, under `mvcc-ssi`, dangerous
//! structures at commit) instead. All expose lock-manager (and, where
//! applicable, version-heap) statistics so the experiments can compare
//! them mechanically.

pub mod env;
pub mod metrics;
pub mod scheme;
pub mod schemes;
pub mod txn;

pub use env::Env;
pub use finecc_mvcc::IsolationLevel;
pub use finecc_wal::{DurabilityLevel, WalConfig, WalStatsSnapshot};
pub use metrics::register_env_metrics;
pub use scheme::{CcScheme, SchemeKind};
pub use schemes::fieldlock::FieldLockScheme;
pub use schemes::mvcc::MvccScheme;
pub use schemes::relational::RelationalScheme;
pub use schemes::rw::RwScheme;
pub use schemes::tav::TavScheme;
pub use txn::{run_txn, run_txn_with, RetryPolicy, Txn, TxnOutcome};
