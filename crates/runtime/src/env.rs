//! The shared execution environment: schema, compiled artifacts, store,
//! bodies and builtins, bundled for cheap cloning into schemes and
//! worker threads.

use crate::txn::Txn;
use finecc_core::CompiledSchema;
use finecc_lang::{Builtins, ExecError, MethodBodies};
use finecc_model::{Oid, Schema, Value};
use finecc_obs::Obs;
use finecc_store::{Database, StoreError};
use finecc_wal::{CheckpointData, InstanceImage, Wal};
use std::sync::Arc;

/// Everything a concurrency-control scheme needs to execute methods.
#[derive(Clone)]
pub struct Env {
    /// The schema.
    pub schema: Arc<Schema>,
    /// Compiled access vectors, graphs, and commutativity matrices.
    pub compiled: Arc<CompiledSchema>,
    /// The object store.
    pub db: Arc<Database>,
    /// Parsed method bodies.
    pub bodies: Arc<MethodBodies>,
    /// Builtin functions.
    pub builtins: Arc<Builtins>,
    /// Interpreter limits.
    pub max_depth: usize,
    /// Interpreter loop fuel.
    pub max_fuel: u64,
    /// Lock-wait timeout for the schemes' lock managers. Short timeouts
    /// turn "would block forever" into an error, which the scenario
    /// machinery uses to probe conflicts.
    pub lock_timeout: std::time::Duration,
    /// Global commit-sequence counter. A scheme draws the next number
    /// *while still holding its locks*, so the sequence is a valid
    /// serialization order for conflicting transactions (used by the
    /// serializability checker in `tests/`).
    pub commit_seq: Arc<std::sync::atomic::AtomicU64>,
    /// The attached write-ahead log (`None` at
    /// `DurabilityLevel::None`). The lock schemes append their
    /// undo-projection redo images here at commit while still holding
    /// their 2PL locks; the mvcc schemes share the same handle with
    /// their heap so statistics surface uniformly through
    /// [`crate::CcScheme::wal_stats`].
    pub wal: Option<Arc<Wal>>,
    /// The observability sink every scheme built over this environment
    /// records into: latency histograms, per-object contention, and
    /// (optionally) a sampled event trace. Disabled by default — each
    /// probe is then a single branch; install an enabled handle with
    /// [`Env::with_obs`] **before** building schemes or opening a log,
    /// because the lock managers, the mvcc heap and the WAL flusher all
    /// clone it at construction.
    pub obs: Arc<Obs>,
}

impl Env {
    /// Builds an environment from a parsed and compiled program, with an
    /// empty database and standard builtins.
    pub fn new(schema: Schema, bodies: MethodBodies, compiled: CompiledSchema) -> Env {
        let schema = Arc::new(schema);
        Env {
            db: Arc::new(Database::new(Arc::clone(&schema))),
            schema,
            compiled: Arc::new(compiled),
            bodies: Arc::new(bodies),
            builtins: Arc::new(Builtins::standard()),
            max_depth: 128,
            max_fuel: 1_000_000,
            lock_timeout: std::time::Duration::from_secs(10),
            commit_seq: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            wal: None,
            obs: Arc::new(Obs::disabled()),
        }
    }

    /// Draws the next commit sequence number.
    pub fn next_commit_seq(&self) -> u64 {
        self.commit_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns the environment with a different lock-wait timeout.
    pub fn with_lock_timeout(mut self, d: std::time::Duration) -> Env {
        self.lock_timeout = d;
        self
    }

    /// Returns the environment with an observability sink. Must be set
    /// before schemes are built (they clone the handle at
    /// construction).
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Env {
        self.obs = obs;
        self
    }

    /// Attaches a **fresh** write-ahead log for the lock schemes'
    /// undo-path durability, writing a quiescent genesis checkpoint of
    /// the base store — the recovery base every later commit record
    /// replays onto. Call before any transaction runs; lock schemes
    /// have no version chains to time-travel through, so their
    /// checkpoints are only consistent at quiescent points (the mvcc
    /// schemes checkpoint fuzzily through their heap instead).
    ///
    /// A directory with prior history is **rejected**: this
    /// environment's store was not built from that history, so
    /// appending to it would interleave two unrelated incarnations
    /// (colliding OIDs, a checkpoint that contradicts the live state).
    /// To resume a directory, rebuild the store from it first
    /// (`finecc_wal::recover_database`), install it as [`Env::db`],
    /// and call [`Env::resume_wal`].
    pub fn attach_wal(&mut self, wal: Arc<Wal>) -> std::io::Result<()> {
        if wal.max_logged_ts() > 0 || wal.has_checkpoint()? {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "log directory has prior history; recover it into the environment \
                 (finecc_wal::recover_database + Env::resume_wal) or use a fresh directory",
            ));
        }
        self.wal = Some(wal);
        self.write_quiescent_checkpoint()?;
        Ok(())
    }

    /// Attaches a write-ahead log whose directory's history this
    /// environment's store was **recovered from**: resumes the
    /// commit-sequence clock above everything logged or checkpointed
    /// (so recovered and new commits never share a sequence number)
    /// and leaves the existing checkpoints in place. The caller is
    /// responsible for [`Env::db`] actually holding the recovered
    /// state — see [`Env::attach_wal`] for why attaching a mismatched
    /// store is rejected there.
    pub fn resume_wal(&mut self, wal: Arc<Wal>) -> std::io::Result<()> {
        let floor = finecc_wal::recovery_floor(wal.dir())?;
        self.commit_seq
            .fetch_max(floor, std::sync::atomic::Ordering::Relaxed);
        self.wal = Some(wal);
        Ok(())
    }

    /// Writes a point-in-time checkpoint of the base store to the
    /// attached log (quiescent-only: grabs the store's shard locks for
    /// a consistent copy — see [`Env::attach_wal`]). Returns the
    /// commit-sequence floor the checkpoint replays from.
    pub fn write_quiescent_checkpoint(&self) -> std::io::Result<u64> {
        let wal = self
            .wal
            .as_ref()
            .expect("checkpoint requires an attached write-ahead log");
        let ckpt_start = self.obs.clock();
        let seq = self.commit_seq.load(std::sync::atomic::Ordering::Relaxed);
        let instances = self
            .db
            .snapshot()
            .into_iter()
            .map(|(oid, inst)| InstanceImage {
                oid,
                class: inst.class,
                values: inst.values,
            })
            .collect();
        wal.write_checkpoint(&CheckpointData {
            ckpt_ts: seq,
            replay_from: seq,
            next_oid: self.db.next_oid_hint(),
            schema: &self.schema,
            instances,
        })?;
        self.obs
            .record_since(finecc_obs::Phase::Checkpoint, ckpt_start);
        Ok(seq)
    }

    /// Appends the transaction's redo images — the current values of
    /// every field its undo log projected, read while the 2PL locks
    /// are still held — to the attached log under commit sequence
    /// `seq`, then discards the undo log. A no-op (beyond the discard)
    /// without an attached log or for read-only transactions.
    ///
    /// A commit that cannot be made durable must not be acked: when the
    /// log refuses the record, the transaction is rolled back right
    /// here — before any lock is released, so nothing of it was ever
    /// visible — and a retryable [`ExecError::LogIo`] is returned (the
    /// log degrades batch by batch; the failure may be transient).
    pub fn log_commit_redo(&self, txn: &mut Txn, seq: u64) -> Result<(), ExecError> {
        if let Some(wal) = &self.wal {
            if !txn.undo.is_empty() {
                let writes = txn.undo.redo_projection(&self.db);
                if let Err(e) = wal.append_commit(seq, txn.id, &writes) {
                    txn.undo.rollback(&self.db);
                    return Err(ExecError::LogIo(e.to_string()));
                }
            }
        }
        txn.undo.clear();
        Ok(())
    }

    /// Parses `source`, compiles it, and builds the environment.
    pub fn from_source(source: &str) -> Result<Env, Box<dyn std::error::Error + Send + Sync>> {
        let (schema, bodies) = finecc_lang::build_schema(source)?;
        let compiled = finecc_core::compile(&schema, &bodies)?;
        Ok(Env::new(schema, bodies, compiled))
    }

    /// Maps a store error onto the interpreter's error type.
    pub fn store_err(e: StoreError) -> ExecError {
        match e {
            StoreError::UnknownOid(o) => ExecError::UnknownOid(o),
            StoreError::FieldNotVisible { oid, field } => ExecError::FieldNotVisible { oid, field },
            other => ExecError::TypeError(other.to_string()),
        }
    }

    /// Maps a lock acquisition failure onto the interpreter's error type
    /// so it unwinds the executing method immediately.
    pub fn lock_err(e: finecc_lock::AcquireError) -> ExecError {
        ExecError::ConcurrencyAbort {
            deadlock: e == finecc_lock::AcquireError::Deadlock,
            msg: e.to_string(),
        }
    }

    /// Convenience: read a field by class and name (panics on bad names;
    /// intended for tests and examples).
    pub fn read_named(&self, oid: Oid, class: &str, field: &str) -> Value {
        let c = self.schema.class_by_name(class).expect("class exists");
        let f = self.schema.resolve_field(c, field).expect("field exists");
        self.db.read(oid, f).expect("instance exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::FIGURE1_SOURCE;

    #[test]
    fn from_source_builds() {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        assert_eq!(env.schema.class_count(), 3);
        assert_eq!(env.compiled.total_modes(), 8);
        assert!(env.db.is_empty());
    }

    #[test]
    fn attach_wal_rejects_foreign_history_resume_accepts_it() {
        let dir = std::env::temp_dir().join(format!("finecc-env-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let wal = Arc::new(finecc_wal::Wal::open(&dir, finecc_wal::WalConfig::default()).unwrap());
        let c2 = env.schema.class_by_name("c2").unwrap();
        let f4 = env.schema.resolve_field(c2, "f4").unwrap();
        let o = env.db.create(c2);
        env.attach_wal(Arc::clone(&wal)).unwrap();
        assert!(wal.has_checkpoint().unwrap(), "genesis checkpoint written");
        let mut txn = crate::txn::Txn::new(finecc_model::TxnId(1));
        txn.undo.record(o, f4, Value::Int(0));
        env.db.write(o, f4, Value::Int(9)).unwrap();
        let seq = env.next_commit_seq();
        env.log_commit_redo(&mut txn, seq).unwrap();
        drop(env);
        drop(wal);
        // A second, unrelated environment must NOT attach to the
        // directory's history — its store was not recovered from it.
        let mut env2 = Env::from_source(FIGURE1_SOURCE).unwrap();
        let wal2 = Arc::new(finecc_wal::Wal::open(&dir, finecc_wal::WalConfig::default()).unwrap());
        assert!(env2.attach_wal(Arc::clone(&wal2)).is_err());
        // The resume path accepts it (caller vouches for the store)
        // and bumps the commit sequence past the logged history.
        env2.resume_wal(wal2).unwrap();
        assert!(
            env2.next_commit_seq() > seq,
            "sequence resumed above the history"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_mapping() {
        let e = Env::store_err(StoreError::UnknownOid(Oid(3)));
        assert!(matches!(e, ExecError::UnknownOid(Oid(3))));
        let e = Env::lock_err(finecc_lock::AcquireError::Deadlock);
        assert!(e.is_deadlock());
        let e = Env::lock_err(finecc_lock::AcquireError::Timeout);
        assert!(!e.is_deadlock());
    }
}
