//! The shared execution environment: schema, compiled artifacts, store,
//! bodies and builtins, bundled for cheap cloning into schemes and
//! worker threads.

use finecc_core::CompiledSchema;
use finecc_lang::{Builtins, ExecError, MethodBodies};
use finecc_model::{Oid, Schema, Value};
use finecc_store::{Database, StoreError};
use std::sync::Arc;

/// Everything a concurrency-control scheme needs to execute methods.
#[derive(Clone)]
pub struct Env {
    /// The schema.
    pub schema: Arc<Schema>,
    /// Compiled access vectors, graphs, and commutativity matrices.
    pub compiled: Arc<CompiledSchema>,
    /// The object store.
    pub db: Arc<Database>,
    /// Parsed method bodies.
    pub bodies: Arc<MethodBodies>,
    /// Builtin functions.
    pub builtins: Arc<Builtins>,
    /// Interpreter limits.
    pub max_depth: usize,
    /// Interpreter loop fuel.
    pub max_fuel: u64,
    /// Lock-wait timeout for the schemes' lock managers. Short timeouts
    /// turn "would block forever" into an error, which the scenario
    /// machinery uses to probe conflicts.
    pub lock_timeout: std::time::Duration,
    /// Global commit-sequence counter. A scheme draws the next number
    /// *while still holding its locks*, so the sequence is a valid
    /// serialization order for conflicting transactions (used by the
    /// serializability checker in `tests/`).
    pub commit_seq: Arc<std::sync::atomic::AtomicU64>,
}

impl Env {
    /// Builds an environment from a parsed and compiled program, with an
    /// empty database and standard builtins.
    pub fn new(schema: Schema, bodies: MethodBodies, compiled: CompiledSchema) -> Env {
        let schema = Arc::new(schema);
        Env {
            db: Arc::new(Database::new(Arc::clone(&schema))),
            schema,
            compiled: Arc::new(compiled),
            bodies: Arc::new(bodies),
            builtins: Arc::new(Builtins::standard()),
            max_depth: 128,
            max_fuel: 1_000_000,
            lock_timeout: std::time::Duration::from_secs(10),
            commit_seq: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Draws the next commit sequence number.
    pub fn next_commit_seq(&self) -> u64 {
        self.commit_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns the environment with a different lock-wait timeout.
    pub fn with_lock_timeout(mut self, d: std::time::Duration) -> Env {
        self.lock_timeout = d;
        self
    }

    /// Parses `source`, compiles it, and builds the environment.
    pub fn from_source(source: &str) -> Result<Env, Box<dyn std::error::Error + Send + Sync>> {
        let (schema, bodies) = finecc_lang::build_schema(source)?;
        let compiled = finecc_core::compile(&schema, &bodies)?;
        Ok(Env::new(schema, bodies, compiled))
    }

    /// Maps a store error onto the interpreter's error type.
    pub fn store_err(e: StoreError) -> ExecError {
        match e {
            StoreError::UnknownOid(o) => ExecError::UnknownOid(o),
            StoreError::FieldNotVisible { oid, field } => ExecError::FieldNotVisible { oid, field },
            other => ExecError::TypeError(other.to_string()),
        }
    }

    /// Maps a lock acquisition failure onto the interpreter's error type
    /// so it unwinds the executing method immediately.
    pub fn lock_err(e: finecc_lock::AcquireError) -> ExecError {
        ExecError::ConcurrencyAbort {
            deadlock: e == finecc_lock::AcquireError::Deadlock,
            msg: e.to_string(),
        }
    }

    /// Convenience: read a field by class and name (panics on bad names;
    /// intended for tests and examples).
    pub fn read_named(&self, oid: Oid, class: &str, field: &str) -> Value {
        let c = self.schema.class_by_name(class).expect("class exists");
        let f = self.schema.resolve_field(c, field).expect("field exists");
        self.db.read(oid, f).expect("instance exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::FIGURE1_SOURCE;

    #[test]
    fn from_source_builds() {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        assert_eq!(env.schema.class_count(), 3);
        assert_eq!(env.compiled.total_modes(), 8);
        assert!(env.db.is_empty());
    }

    #[test]
    fn error_mapping() {
        let e = Env::store_err(StoreError::UnknownOid(Oid(3)));
        assert!(matches!(e, ExecError::UnknownOid(Oid(3))));
        let e = Env::lock_err(finecc_lock::AcquireError::Deadlock);
        assert!(e.is_deadlock());
        let e = Env::lock_err(finecc_lock::AcquireError::Timeout);
        assert!(!e.is_deadlock());
    }
}
