//! Transactions and the abort/retry loop.

use crate::scheme::CcScheme;
use finecc_lang::ExecError;
use finecc_model::TxnId;
use finecc_obs::{EventKind, Obs, Phase};
use finecc_store::UndoLog;

/// One transaction: identifier plus its undo log. Created by
/// [`CcScheme::begin`], consumed by [`CcScheme::commit`]/[`CcScheme::abort`].
pub struct Txn {
    /// The transaction id (also its age for victim selection).
    pub id: TxnId,
    /// Before-images recorded during execution.
    pub undo: UndoLog,
    /// The session-cached MVCC snapshot timestamp (`None` for the lock
    /// schemes). The mvcc schemes stamp it at begin so steady-state
    /// reads and writes never consult the heap's transaction registry —
    /// the per-operation registry-stripe lookup this cache replaced was
    /// the read path's last shared-mutable touch besides the chains
    /// themselves.
    pub snapshot_ts: Option<u64>,
}

impl Txn {
    /// Creates a transaction with an empty undo log.
    pub fn new(id: TxnId) -> Txn {
        Txn {
            id,
            undo: UndoLog::new(),
            snapshot_ts: None,
        }
    }

    /// Creates a transaction carrying its MVCC snapshot timestamp.
    pub fn with_snapshot_ts(id: TxnId, snapshot_ts: u64) -> Txn {
        Txn {
            id,
            undo: UndoLog::new(),
            snapshot_ts: Some(snapshot_ts),
        }
    }
}

/// How a [`run_txn`] attempt ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOutcome<T> {
    /// Committed after `retries` retryable aborts.
    Committed {
        /// The closure's result.
        value: T,
        /// Number of retryable aborts (deadlock victims, transient log
        /// failures) before success.
        retries: u32,
    },
    /// Gave up after exhausting the policy's retry budget.
    Exhausted {
        /// Retryable aborts performed.
        retries: u32,
    },
    /// Failed with a non-retryable error (aborted, rolled back).
    Failed(ExecError),
}

impl<T> TxnOutcome<T> {
    /// `true` if the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// The committed value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            TxnOutcome::Committed { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// Bounds and paces the retry loop of [`run_txn_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retryable aborts tolerated before giving up
    /// ([`TxnOutcome::Exhausted`]).
    pub max_retries: u32,
    /// Backoff units per retry: attempt `n` backs off
    /// `min(n, 8) * backoff_unit` steps, each one cooperative yield
    /// (and, under a chaos scheduled session, one virtual-time
    /// scheduling decision — the backoff is deterministic there).
    pub backoff_unit: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 64,
            backoff_unit: 1,
        }
    }
}

impl RetryPolicy {
    /// The default pacing with a custom retry budget.
    pub fn with_max_retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }
}

/// [`run_txn_with`] under the default pacing and a custom retry budget
/// — the standard driver used by the simulator, the examples and the
/// stress tests.
pub fn run_txn<T>(
    scheme: &dyn CcScheme,
    max_retries: u32,
    body: impl FnMut(&mut Txn) -> Result<T, ExecError>,
) -> TxnOutcome<T> {
    run_txn_with(scheme, RetryPolicy::with_max_retries(max_retries), body)
}

/// Runs `body` as a transaction against `scheme`, committing on
/// success, aborting (undo + release) on error, and retrying
/// *retryable* failures — deadlock victims and transient write-ahead
/// log refusals ([`ExecError::is_retryable`]) — within the policy's
/// budget. A *commit-time* refusal (mvcc-ssi dangerous structures, a
/// failed redo append) counts as a retry too: the scheme has already
/// rolled the transaction back, so the loop simply re-runs the body on
/// a fresh snapshot.
pub fn run_txn_with<T>(
    scheme: &dyn CcScheme,
    policy: RetryPolicy,
    mut body: impl FnMut(&mut Txn) -> Result<T, ExecError>,
) -> TxnOutcome<T> {
    let obs = scheme.obs();
    // End-to-end latency spans the whole loop: first begin to final
    // outcome, retries included — the user-visible latency, not the
    // per-attempt one.
    let txn_start = obs.clock();
    let mut retries = 0;
    let outcome = loop {
        finecc_chaos::yield_point(finecc_chaos::Site::TxnStart);
        let mut txn = scheme.begin();
        let id = txn.id;
        emit_instant(obs, EventKind::Begin, id);
        let retryable = match body(&mut txn) {
            Ok(value) => match scheme.commit(txn) {
                Ok(_) => {
                    emit_instant(obs, EventKind::Commit, id);
                    break TxnOutcome::Committed { value, retries };
                }
                // Failed commit == the scheme aborted the transaction
                // itself; no abort() call — the Txn is consumed.
                Err(e) if e.is_retryable() => {
                    emit_instant(obs, EventKind::Abort, id);
                    true
                }
                Err(e) => {
                    emit_instant(obs, EventKind::Abort, id);
                    break TxnOutcome::Failed(e);
                }
            },
            Err(e) if e.is_retryable() => {
                scheme.abort(txn);
                emit_instant(obs, EventKind::Abort, id);
                true
            }
            Err(e) => {
                scheme.abort(txn);
                emit_instant(obs, EventKind::Abort, id);
                break TxnOutcome::Failed(e);
            }
        };
        debug_assert!(retryable);
        retries += 1;
        if retries > policy.max_retries {
            break TxnOutcome::Exhausted { retries };
        }
        // Bounded backoff proportional to the retry count keeps rival
        // victims from re-colliding in lockstep.
        for _ in 0..retries.min(8).saturating_mul(policy.backoff_unit) {
            finecc_chaos::yield_point(finecc_chaos::Site::TxnBackoff);
            std::thread::yield_now();
        }
    };
    obs.record_since(Phase::TxnLatency, txn_start);
    outcome
}

/// Emits a sampled lifecycle instant (one branch when tracing is off).
fn emit_instant(obs: &Obs, kind: EventKind, id: TxnId) {
    if obs.trace_sampled(id.0) {
        obs.emit(kind, obs.now_ns(), 0, id.0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        let c: TxnOutcome<i32> = TxnOutcome::Committed {
            value: 7,
            retries: 1,
        };
        assert!(c.is_committed());
        assert_eq!(c.value(), Some(7));
        let f: TxnOutcome<i32> = TxnOutcome::Failed(ExecError::FuelExhausted);
        assert!(!f.is_committed());
        assert_eq!(f.value(), None);
        let e: TxnOutcome<i32> = TxnOutcome::Exhausted { retries: 3 };
        assert_eq!(e.value(), None);
    }
}
