//! The relational-decomposition baseline (§3 and §5.2).
//!
//! Each class maps to a relation holding its **locally declared** fields;
//! an instance of class `C` spans one tuple in every relation along `C`'s
//! linearization, joined on the root's primary key (the paper's `f1`,
//! which descendant relations carry as primary + foreign key).
//!
//! Locking follows a classical RDBMS: tuple-level read/write locks with
//! IS/IX-style relation intents (our [`finecc_lock::LockKind::Intentional`] /
//! [`finecc_lock::LockKind::Hierarchical`] give exactly Gray's table for two modes).
//! A **key write propagates**: modifying the primary key of the root
//! relation write-locks the corresponding tuples of every relation of the
//! hierarchy (the FK maintenance the paper invokes to explain why
//! `T1 ∦ T4` relationally, and why both would run if `m2` spared the key).
//!
//! This baseline is what the paper measures itself against: first normal
//! form acts as a *coarse access vector* (§4.2), so it beats RW on
//! disjoint-field writers but still misses the inheritance-aware
//! parallelism of TAVs — the two are incomparable (§5.2).

use crate::env::Env;
use crate::scheme::CcScheme;
use crate::schemes::interpreter;
use crate::txn::Txn;
use finecc_core::{AccessMode, AccessVector};
use finecc_lang::{DataAccess, ExecError};
use finecc_lock::{LockManager, LockMode, ResourceId, RwSource, StatsSnapshot, READ, WRITE};
use finecc_model::{ClassId, FieldId, MethodId, Oid, Value};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Relational decomposition with tuple locking.
pub struct RelationalScheme {
    env: Env,
    lm: LockManager<RwSource>,
    /// Per class: the root of its hierarchy (last of the linearization).
    roots: Vec<ClassId>,
    /// Per class: the primary key — the first locally-declared field of
    /// the hierarchy root (None if the root declares no fields).
    keys: Vec<Option<FieldId>>,
}

impl RelationalScheme {
    /// Builds the scheme, deriving the relational mapping from the schema.
    pub fn new(env: Env) -> RelationalScheme {
        let mut roots = Vec::with_capacity(env.schema.class_count());
        let mut keys = Vec::with_capacity(env.schema.class_count());
        for ci in env.schema.classes() {
            let root = *ci
                .linearization
                .last()
                .expect("linearization contains self");
            roots.push(root);
            keys.push(env.schema.class(root).own_fields.first().copied());
        }
        RelationalScheme {
            lm: LockManager::new(RwSource)
                .with_timeout(env.lock_timeout)
                .with_obs(std::sync::Arc::clone(&env.obs)),
            env,
            roots,
            keys,
        }
    }

    /// The underlying lock manager.
    pub fn lock_manager(&self) -> &LockManager<RwSource> {
        &self.lm
    }

    /// The tuple-lock plan of an access vector evaluated on an instance of
    /// `class`: which relations are touched, in which RW mode. A key
    /// write escalates to write locks across the whole hierarchy (FK
    /// propagation).
    pub fn tuple_plan(&self, class: ClassId, av: &AccessVector) -> Vec<(ClassId, u16)> {
        let key = self.keys[class.index()];
        let key_written = key.is_some_and(|k| av.mode_of(k).is_write());
        if key_written {
            let root = self.roots[class.index()];
            let mut rels: Vec<ClassId> = self.env.schema.class(class).linearization.clone();
            rels.extend_from_slice(self.env.schema.domain(root));
            rels.sort_unstable();
            rels.dedup();
            return rels.into_iter().map(|c| (c, WRITE)).collect();
        }
        let mut by_rel: BTreeMap<ClassId, AccessMode> = BTreeMap::new();
        for (f, m) in av.iter() {
            let owner = self.env.schema.field(f).owner;
            let e = by_rel.entry(owner).or_insert(AccessMode::Null);
            *e = e.join(m);
        }
        by_rel
            .into_iter()
            .map(|(c, m)| (c, if m.is_write() { WRITE } else { READ }))
            .collect()
    }

    /// The joined relation-lock plan of an extent operation over the
    /// domain rooted at `root`.
    fn extent_plan(&self, root: ClassId, method: &str) -> Result<Vec<(ClassId, u16)>, ExecError> {
        let mut joined: BTreeMap<ClassId, u16> = BTreeMap::new();
        for &c in self.env.schema.domain(root) {
            let table = self.env.compiled.class(c);
            let idx = table
                .index_of(method)
                .ok_or_else(|| ExecError::MessageNotUnderstood {
                    class: c,
                    method: method.to_string(),
                })?;
            for (rel, m) in self.tuple_plan(c, table.tav(idx)) {
                let e = joined.entry(rel).or_insert(READ);
                *e = (*e).max(m);
            }
        }
        Ok(joined.into_iter().collect())
    }
}

struct RelAccess<'a> {
    env: &'a Env,
    lm: &'a LockManager<RwSource>,
    scheme: &'a RelationalScheme,
    txn: &'a mut Txn,
    /// Relations covered by a hierarchical lock.
    covered: &'a HashSet<ClassId>,
}

impl DataAccess for RelAccess<'_> {
    fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError> {
        self.env.db.class_of(oid).map_err(Env::store_err)
    }

    fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError> {
        self.env.db.read(oid, field).map_err(Env::store_err)
    }

    fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError> {
        self.env
            .db
            .write(oid, field, value)
            .map(drop)
            .map_err(Env::store_err)
    }

    fn on_message(&mut self, oid: Oid, class: ClassId, mid: MethodId) -> Result<(), ExecError> {
        // The whole top message is the relational "query": its TAV is the
        // statically analyzed access pattern the planner would lock for.
        let tav = self
            .env
            .compiled
            .tav_of(class, mid)
            .ok_or_else(|| ExecError::MessageNotUnderstood {
                class,
                method: format!("{mid}"),
            })?
            .clone();
        for (rel, m) in self.scheme.tuple_plan(class, &tav) {
            if self.covered.contains(&rel) {
                continue;
            }
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Relation(rel),
                    LockMode::class(m, false),
                )
                .map_err(Env::lock_err)?;
            self.lm
                .acquire(self.txn.id, ResourceId::Tuple(rel, oid), LockMode::plain(m))
                .map_err(Env::lock_err)?;
        }
        self.txn
            .undo
            .record_projection(&self.env.db, oid, tav.write_fields())
            .map_err(Env::store_err)?;
        Ok(())
    }

    // on_self_message: no-op — the plan covered the whole execution.
}

impl CcScheme for RelationalScheme {
    fn name(&self) -> &'static str {
        "relational"
    }

    fn env(&self) -> &Env {
        &self.env
    }

    fn begin(&self) -> Txn {
        Txn::new(self.lm.begin())
    }

    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let covered = HashSet::new();
        let mut da = RelAccess {
            env: &self.env,
            lm: &self.lm,
            scheme: self,
            txn,
            covered: &covered,
        };
        interpreter(&self.env).send(&mut da, oid, method, args)
    }

    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        let plan = self.extent_plan(root, method)?;
        let mut covered = HashSet::new();
        for (rel, m) in plan {
            self.lm
                .acquire(txn.id, ResourceId::Relation(rel), LockMode::class(m, true))
                .map_err(Env::lock_err)?;
            covered.insert(rel);
        }
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for oid in self.env.db.deep_extent(root) {
            let mut da = RelAccess {
                env: &self.env,
                lm: &self.lm,
                scheme: self,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        for (rel, m) in self.extent_plan(root, method)? {
            self.lm
                .acquire(txn.id, ResourceId::Relation(rel), LockMode::class(m, false))
                .map_err(Env::lock_err)?;
        }
        let covered = HashSet::new();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for &oid in oids {
            let mut da = RelAccess {
                env: &self.env,
                lm: &self.lm,
                scheme: self,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn commit(&self, mut txn: Txn) -> Result<u64, ExecError> {
        // Strict 2PL holds every lock to this point; nothing is left to
        // validate. The commit sequence is drawn and the redo images
        // are logged (write-ahead durability, when attached) while
        // every lock is still held, so the log's timestamp order is a
        // valid serialization order and the after-images are exactly
        // what this transaction wrote. The one remaining failure is
        // the log refusing the redo append: the env then rolls the
        // transaction back under these same locks and the retryable
        // error surfaces after they are released.
        let seq = self.env.next_commit_seq();
        let logged = self.env.log_commit_redo(&mut txn, seq);
        self.lm.release_all(txn.id);
        logged?;
        Ok(seq)
    }

    fn abort(&self, mut txn: Txn) {
        txn.undo.rollback(&self.env.db);
        self.lm.release_all(txn.id);
    }

    fn stats(&self) -> StatsSnapshot {
        self.lm.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.lm.stats.reset();
    }

    fn register_metrics(&self, reg: &finecc_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        crate::metrics::register_env_metrics(reg, self.env(), labels);
        let stats = Arc::clone(&self.lm.stats);
        reg.register_fn(labels, move |c| stats.snapshot().collect_metrics(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::FIGURE1_SOURCE;
    use finecc_lock::TryAcquire;

    fn setup() -> (RelationalScheme, Oid, Oid) {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c1 = env.schema.class_by_name("c1").unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let o1 = env.db.create(c1);
        let o2 = env.db.create(c2);
        (RelationalScheme::new(env), o1, o2)
    }

    #[test]
    fn key_write_propagates_to_child_relations() {
        // §5.2: "T1 locks one tuple of r1 in write mode and the associated
        // tuple of r2 in write mode too (because f1 … is modified)".
        let (s, o1, _) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        let table = s.env().compiled.class(c1);
        let idx = table.index_of("m1").unwrap();
        let plan = s.tuple_plan(c1, table.tav(idx));
        assert_eq!(plan, vec![(c1, WRITE), (c2, WRITE)]);
        let _ = o1;
    }

    #[test]
    fn non_key_access_locks_touched_relations_only() {
        let (s, _, _) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        // m3 reads f2, f3 (both in r1): plan = {r1: READ}.
        let t1 = s.env().compiled.class(c1);
        let plan = s.tuple_plan(c1, t1.tav(t1.index_of("m3").unwrap()));
        assert_eq!(plan, vec![(c1, READ)]);
        // m4 on c2 touches f5, f6 (both in r2): plan = {r2: WRITE}.
        let t2 = s.env().compiled.class(c2);
        let plan = s.tuple_plan(c2, t2.tav(t2.index_of("m4").unwrap()));
        assert_eq!(plan, vec![(c2, WRITE)]);
    }

    #[test]
    fn disjoint_relation_writers_parallel() {
        // T-style check: a key-sparing writer in r2 (m4) runs against a
        // reader of r1 (m3) on the same instance.
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        s.send(&mut t1, o2, "m4", &[Value::Int(5), Value::Int(1)])
            .unwrap();
        s.send(&mut t2, o2, "m3", &[]).unwrap();
        s.commit(t1).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(s.stats().blocks, 0);
    }

    #[test]
    fn key_writer_blocks_child_relation_extent() {
        // T1 (m1 on a c1 instance, key write → X tuples in r1 and r2)
        // vs T4 (m4 on all of domain c2 → hierarchical X on r2): conflict.
        let (s, o1, _) = setup();
        let mut t1 = s.begin();
        s.send(&mut t1, o1, "m1", &[Value::Int(1)]).unwrap();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        let probe = s.lm.begin();
        let r = s.lm.try_acquire(
            probe,
            ResourceId::Relation(c2),
            LockMode::class(WRITE, true),
        );
        assert_eq!(r, TryAcquire::WouldBlock);
        s.commit(t1).unwrap();
    }

    #[test]
    fn execution_and_abort_correct() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(3)]).unwrap();
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(3));
        s.abort(txn);
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(0));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(0));
    }

    #[test]
    fn extent_plan_joins_domain() {
        let (s, _, _) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        // m1 over domain(c1): key write in both classes → both relations X.
        let plan = s.extent_plan(c1, "m1").unwrap();
        assert_eq!(plan, vec![(c1, WRITE), (c2, WRITE)]);
        // m3 over domain(c1): reads r1 only.
        let plan = s.extent_plan(c1, "m3").unwrap();
        assert_eq!(plan, vec![(c1, READ)]);
        let _ = c2;
    }

    #[test]
    fn send_all_runs_under_relation_locks() {
        let (s, o1, o2) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let mut txn = s.begin();
        let r = s.send_all(&mut txn, c1, "m2", &[Value::Int(2)]).unwrap();
        assert_eq!(r.len(), 2);
        s.commit(txn).unwrap();
        assert_eq!(s.env().read_named(o1, "c1", "f1"), Value::Int(2));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(2));
    }
}
