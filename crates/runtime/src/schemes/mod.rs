//! The six concurrency-control schemes.

pub mod fieldlock;
pub mod mvcc;
pub mod relational;
pub mod rw;
pub mod tav;

use crate::env::Env;
use finecc_lang::Interpreter;

/// Builds an interpreter over the environment (shared by all schemes).
pub(crate) fn interpreter(env: &Env) -> Interpreter<'_> {
    let mut i = Interpreter::new(&env.schema, &env.bodies, &env.builtins);
    i.max_depth = env.max_depth;
    i.max_fuel = env.max_fuel;
    i
}
