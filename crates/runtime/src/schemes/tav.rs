//! The paper's scheme: transitive-access-vector commutativity locking.
//!
//! Locking happens **once per top message** (claim (2) / problem P2's
//! fix): when a message reaches an instance — from the application or
//! through a reference field — the receiver's class table maps the
//! resolved method to its access-mode index; one intentional class lock
//! and one instance lock in that mode are taken, and *nothing more* for
//! the entire nested execution: the transitive access vector already
//! accounts for every self-directed message, announcing the most
//! exclusive mode up front (P3's fix).
//!
//! Extent and domain accesses take hierarchical class locks per §5.2.
//! Undo before-images are projections through the TAV's write fields —
//! the paper's recovery remark made executable.

use crate::env::Env;
use crate::scheme::CcScheme;
use crate::schemes::interpreter;
use crate::txn::Txn;
use finecc_lang::{DataAccess, ExecError};
use finecc_lock::{CommutSource, LockManager, LockMode, ResourceId, StatsSnapshot};
use finecc_model::{ClassId, FieldId, MethodId, Oid, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// The TAV/commutativity scheme (the paper's proposal).
pub struct TavScheme {
    env: Env,
    lm: LockManager<CommutSource>,
}

impl TavScheme {
    /// Builds the scheme (compiles nothing — the matrices are already in
    /// `env.compiled`, produced at schema-compile time).
    pub fn new(env: Env) -> TavScheme {
        let lm = LockManager::new(CommutSource::new(Arc::clone(&env.compiled)))
            .with_timeout(env.lock_timeout)
            .with_obs(Arc::clone(&env.obs));
        TavScheme { env, lm }
    }

    /// The underlying lock manager (for tests and experiments).
    pub fn lock_manager(&self) -> &LockManager<CommutSource> {
        &self.lm
    }

    fn hier_lock_domain(
        &self,
        txn: &Txn,
        root: ClassId,
        method: &str,
        hierarchical: bool,
    ) -> Result<(), ExecError> {
        for &c in self.env.schema.domain(root) {
            let table = self.env.compiled.class(c);
            let idx = table
                .index_of(method)
                .ok_or_else(|| ExecError::MessageNotUnderstood {
                    class: c,
                    method: method.to_string(),
                })? as u16;
            self.lm
                .acquire(
                    txn.id,
                    ResourceId::Class(c),
                    LockMode::class(idx, hierarchical),
                )
                .map_err(Env::lock_err)?;
        }
        Ok(())
    }
}

struct TavAccess<'a> {
    env: &'a Env,
    lm: &'a LockManager<CommutSource>,
    txn: &'a mut Txn,
    /// Classes covered by a hierarchical lock: instances of these need no
    /// instance lock.
    covered: &'a HashSet<ClassId>,
}

impl DataAccess for TavAccess<'_> {
    fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError> {
        self.env.db.class_of(oid).map_err(Env::store_err)
    }

    fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError> {
        self.env.db.read(oid, field).map_err(Env::store_err)
    }

    fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError> {
        // No undo record here: the projection at message entry already
        // captured every field the TAV can write.
        self.env
            .db
            .write(oid, field, value)
            .map(drop)
            .map_err(Env::store_err)
    }

    fn on_message(&mut self, oid: Oid, class: ClassId, mid: MethodId) -> Result<(), ExecError> {
        let table = self.env.compiled.class(class);
        let idx = table
            .index_of_mid(mid)
            .ok_or_else(|| ExecError::MessageNotUnderstood {
                class,
                method: format!("{mid}"),
            })? as u16;
        if !self.covered.contains(&class) {
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Class(class),
                    LockMode::class(idx, false),
                )
                .map_err(Env::lock_err)?;
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Instance(oid, class),
                    LockMode::plain(idx),
                )
                .map_err(Env::lock_err)?;
        }
        // Recovery: before-image through the TAV's write projection.
        self.txn
            .undo
            .record_projection(&self.env.db, oid, table.tav(idx as usize).write_fields())
            .map_err(Env::store_err)?;
        Ok(())
    }

    // on_self_message: default no-op — the whole point of the paper.
}

impl CcScheme for TavScheme {
    fn name(&self) -> &'static str {
        "tav"
    }

    fn env(&self) -> &Env {
        &self.env
    }

    fn begin(&self) -> Txn {
        Txn::new(self.lm.begin())
    }

    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let covered = HashSet::new();
        let mut da = TavAccess {
            env: &self.env,
            lm: &self.lm,
            txn,
            covered: &covered,
        };
        interpreter(&self.env).send(&mut da, oid, method, args)
    }

    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        self.hier_lock_domain(txn, root, method, true)?;
        let covered: HashSet<ClassId> = self.env.schema.domain(root).iter().copied().collect();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for oid in self.env.db.deep_extent(root) {
            let mut da = TavAccess {
                env: &self.env,
                lm: &self.lm,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        self.hier_lock_domain(txn, root, method, false)?;
        let covered = HashSet::new();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for &oid in oids {
            let mut da = TavAccess {
                env: &self.env,
                lm: &self.lm,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn commit(&self, mut txn: Txn) -> Result<u64, ExecError> {
        // Strict 2PL holds every lock to this point; nothing is left to
        // validate. The commit sequence is drawn and the redo images
        // are logged (write-ahead durability, when attached) while
        // every lock is still held, so the log's timestamp order is a
        // valid serialization order and the after-images are exactly
        // what this transaction wrote. The one remaining failure is
        // the log refusing the redo append: the env then rolls the
        // transaction back under these same locks and the retryable
        // error surfaces after they are released.
        let seq = self.env.next_commit_seq();
        let logged = self.env.log_commit_redo(&mut txn, seq);
        self.lm.release_all(txn.id);
        logged?;
        Ok(seq)
    }

    fn abort(&self, mut txn: Txn) {
        txn.undo.rollback(&self.env.db);
        self.lm.release_all(txn.id);
    }

    fn stats(&self) -> StatsSnapshot {
        self.lm.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.lm.stats.reset();
    }

    fn register_metrics(&self, reg: &finecc_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        crate::metrics::register_env_metrics(reg, self.env(), labels);
        let stats = Arc::clone(&self.lm.stats);
        reg.register_fn(labels, move |c| stats.snapshot().collect_metrics(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::run_txn;
    use finecc_lang::parser::FIGURE1_SOURCE;

    fn setup() -> (TavScheme, Oid, Oid) {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c1 = env.schema.class_by_name("c1").unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let o1 = env.db.create(c1);
        let o2 = env.db.create(c2);
        (TavScheme::new(env), o1, o2)
    }

    #[test]
    fn one_control_per_top_message() {
        // m1 on a c2 instance triggers m2, c1.m2, m3 internally — but the
        // lock manager must see exactly TWO requests (class + instance),
        // problem P2 solved.
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(1)]).unwrap();
        let st = s.stats();
        assert_eq!(st.requests, 2, "one class + one instance lock");
        assert_eq!(st.upgrades, 0, "no escalation (P3 solved)");
        s.commit(txn).unwrap();
    }

    #[test]
    fn execution_effect_matches_plain_interpreter() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(3)]).unwrap();
        s.commit(txn).unwrap();
        // c1.m2 wrote f1 = expr(0, false, 3) = 3; override wrote f4 = 3.
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(3));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(3));
    }

    #[test]
    fn abort_rolls_back_via_tav_projection() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m2", &[Value::Int(9)]).unwrap();
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(9));
        s.abort(txn);
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(0));
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(0));
    }

    #[test]
    fn commuting_methods_run_concurrently_on_one_instance() {
        // m2 and m4 both write (pseudo-conflict P4) yet commute: two
        // transactions may hold both locks simultaneously.
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        s.send(&mut t1, o2, "m2", &[Value::Int(1)]).unwrap();
        s.send(&mut t2, o2, "m4", &[Value::Int(5), Value::Int(2)])
            .unwrap();
        s.commit(t1).unwrap();
        s.commit(t2).unwrap();
    }

    #[test]
    fn conflicting_methods_block() {
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        s.send(&mut t1, o2, "m2", &[Value::Int(1)]).unwrap();
        // m1 conflicts with m2 (Table 2): try_acquire through a second
        // transaction must block. Use the raw lock manager to probe.
        let table = s
            .env()
            .compiled
            .class(s.env().schema.class_by_name("c2").unwrap());
        let m1 = table.index_of("m1").unwrap() as u16;
        let t2 = s.lm.begin();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        let r =
            s.lm.try_acquire(t2, ResourceId::Instance(o2, c2), LockMode::plain(m1));
        assert_eq!(r, finecc_lock::TryAcquire::WouldBlock);
        s.commit(t1).unwrap();
    }

    #[test]
    fn send_all_locks_hierarchically() {
        let (s, o1, o2) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let mut txn = s.begin();
        let results = s.send_all(&mut txn, c1, "m2", &[Value::Int(2)]).unwrap();
        assert_eq!(results.len(), 2, "deep extent: o1 and o2");
        // Only class locks were taken: 2 classes, no instance locks.
        assert_eq!(s.stats().requests, 2);
        s.commit(txn).unwrap();
        assert_eq!(s.env().read_named(o1, "c1", "f1"), Value::Int(2));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(2));
    }

    #[test]
    fn send_some_locks_domain_intentionally() {
        let (s, o1, _) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let mut txn = s.begin();
        let results = s.send_some(&mut txn, c1, &[o1], "m3", &[]).unwrap();
        assert_eq!(results.len(), 1);
        // 2 intentional class locks + (class re-acquire + instance) for o1.
        let st = s.stats();
        assert!(st.requests >= 3);
        s.commit(txn).unwrap();
    }

    #[test]
    fn retry_loop_commits() {
        let (s, _, o2) = setup();
        let out = run_txn(&s, 3, |txn| {
            s.send(txn, o2, "m4", &[Value::Int(1), Value::Int(1)])
        });
        assert!(out.is_committed());
    }

    #[test]
    fn cross_instance_send_locks_target() {
        let (s, o1, _) = setup();
        let env = s.env();
        let c1 = env.schema.class_by_name("c1").unwrap();
        let c3 = env.schema.class_by_name("c3").unwrap();
        let o3 = env.db.create(c3);
        let f2 = env.schema.resolve_field(c1, "f2").unwrap();
        let f3 = env.schema.resolve_field(c1, "f3").unwrap();
        env.db.write(o1, f2, Value::Bool(true)).unwrap();
        env.db.write(o1, f3, Value::Ref(o3)).unwrap();

        let mut txn = s.begin();
        s.send(&mut txn, o1, "m3", &[]).unwrap();
        // m3 sent `m` through f3: class(c1)+inst(o1) + class(c3)+inst(o3).
        assert_eq!(s.stats().requests, 4);
        s.commit(txn).unwrap();
        assert_eq!(env.read_named(o3, "c3", "g1"), Value::Int(1));
    }
}
