//! Run-time field locking (Agrawal–El Abbadi, EDBT'92 — the paper's §6
//! comparison).
//!
//! Locks are taken at the finest granule, individual `(instance, field)`
//! pairs, **at the moment of each access**. This is *less conservative*
//! than transitive access vectors — a field behind an untaken branch is
//! never locked — but pays for it with a lock-manager call per field
//! access ("this technique incurs a much higher overhead") and it retains
//! the escalation problem: a field read first and assigned later upgrades
//! read→write mid-transaction. Experiment E8 measures both effects.

use crate::env::Env;
use crate::scheme::CcScheme;
use crate::schemes::interpreter;
use crate::txn::Txn;
use finecc_lang::{DataAccess, ExecError};
use finecc_lock::{LockManager, LockMode, ResourceId, RwSource, StatsSnapshot, READ, WRITE};
use finecc_model::{ClassId, FieldId, MethodId, Oid, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Run-time field locking.
pub struct FieldLockScheme {
    env: Env,
    lm: LockManager<RwSource>,
}

impl FieldLockScheme {
    /// Builds the scheme.
    pub fn new(env: Env) -> FieldLockScheme {
        FieldLockScheme {
            lm: LockManager::new(RwSource)
                .with_timeout(env.lock_timeout)
                .with_obs(std::sync::Arc::clone(&env.obs)),
            env,
        }
    }

    /// The underlying lock manager.
    pub fn lock_manager(&self) -> &LockManager<RwSource> {
        &self.lm
    }
}

struct FlAccess<'a> {
    env: &'a Env,
    lm: &'a LockManager<RwSource>,
    txn: &'a mut Txn,
    covered: &'a HashSet<ClassId>,
}

impl FlAccess<'_> {
    fn is_covered(&mut self, oid: Oid) -> Result<bool, ExecError> {
        if self.covered.is_empty() {
            return Ok(false);
        }
        let class = self.env.db.class_of(oid).map_err(Env::store_err)?;
        Ok(self.covered.contains(&class))
    }
}

impl DataAccess for FlAccess<'_> {
    fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError> {
        self.env.db.class_of(oid).map_err(Env::store_err)
    }

    fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError> {
        if !self.is_covered(oid)? {
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Field(oid, field),
                    LockMode::plain(READ),
                )
                .map_err(Env::lock_err)?;
        }
        self.env.db.read(oid, field).map_err(Env::store_err)
    }

    fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError> {
        if !self.is_covered(oid)? {
            // Possible read→write escalation on this very field.
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Field(oid, field),
                    LockMode::plain(WRITE),
                )
                .map_err(Env::lock_err)?;
            let class = self.env.db.class_of(oid).map_err(Env::store_err)?;
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Class(class),
                    LockMode::class(WRITE, false),
                )
                .map_err(Env::lock_err)?;
        }
        let old = self
            .env
            .db
            .write(oid, field, value)
            .map_err(Env::store_err)?;
        self.txn.undo.record(oid, field, old);
        Ok(())
    }

    fn on_message(&mut self, oid: Oid, class: ClassId, _mid: MethodId) -> Result<(), ExecError> {
        if !self.covered.contains(&class) {
            // Presence marker: lets extent-level hierarchical locks see
            // concurrent instance users.
            self.lm
                .acquire(
                    self.txn.id,
                    ResourceId::Class(class),
                    LockMode::class(READ, false),
                )
                .map_err(Env::lock_err)?;
        }
        let _ = oid;
        Ok(())
    }

    // on_self_message: no-op — field locks carry the protection.
}

impl CcScheme for FieldLockScheme {
    fn name(&self) -> &'static str {
        "fieldlock"
    }

    fn env(&self) -> &Env {
        &self.env
    }

    fn begin(&self) -> Txn {
        Txn::new(self.lm.begin())
    }

    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let covered = HashSet::new();
        let mut da = FlAccess {
            env: &self.env,
            lm: &self.lm,
            txn,
            covered: &covered,
        };
        interpreter(&self.env).send(&mut da, oid, method, args)
    }

    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        // A dynamic scheme has no compile-time vectors; extent operations
        // announce their transitive classification (from the compiled
        // TAVs, which any planner for bulk operations would need anyway).
        for &c in self.env.schema.domain(root) {
            let table = self.env.compiled.class(c);
            let idx = table
                .index_of(method)
                .ok_or_else(|| ExecError::MessageNotUnderstood {
                    class: c,
                    method: method.to_string(),
                })?;
            let m = if table.tav(idx).collapse().is_write() {
                WRITE
            } else {
                READ
            };
            self.lm
                .acquire(txn.id, ResourceId::Class(c), LockMode::class(m, true))
                .map_err(Env::lock_err)?;
        }
        let covered: HashSet<ClassId> = self.env.schema.domain(root).iter().copied().collect();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for oid in self.env.db.deep_extent(root) {
            let mut da = FlAccess {
                env: &self.env,
                lm: &self.lm,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        for &c in self.env.schema.domain(root) {
            self.lm
                .acquire(txn.id, ResourceId::Class(c), LockMode::class(READ, false))
                .map_err(Env::lock_err)?;
        }
        let covered = HashSet::new();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for &oid in oids {
            let mut da = FlAccess {
                env: &self.env,
                lm: &self.lm,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn commit(&self, mut txn: Txn) -> Result<u64, ExecError> {
        // Strict 2PL holds every lock to this point; nothing is left to
        // validate. The commit sequence is drawn and the redo images
        // are logged (write-ahead durability, when attached) while
        // every lock is still held, so the log's timestamp order is a
        // valid serialization order and the after-images are exactly
        // what this transaction wrote. The one remaining failure is
        // the log refusing the redo append: the env then rolls the
        // transaction back under these same locks and the retryable
        // error surfaces after they are released.
        let seq = self.env.next_commit_seq();
        let logged = self.env.log_commit_redo(&mut txn, seq);
        self.lm.release_all(txn.id);
        logged?;
        Ok(seq)
    }

    fn abort(&self, mut txn: Txn) {
        txn.undo.rollback(&self.env.db);
        self.lm.release_all(txn.id);
    }

    fn stats(&self) -> StatsSnapshot {
        self.lm.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.lm.stats.reset();
    }

    fn register_metrics(&self, reg: &finecc_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        crate::metrics::register_env_metrics(reg, self.env(), labels);
        let stats = Arc::clone(&self.lm.stats);
        reg.register_fn(labels, move |c| stats.snapshot().collect_metrics(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::FIGURE1_SOURCE;
    use finecc_lock::TryAcquire;

    fn setup() -> (FieldLockScheme, Oid, Oid) {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c1 = env.schema.class_by_name("c1").unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let o1 = env.db.create(c1);
        let o2 = env.db.create(c2);
        (FieldLockScheme::new(env), o1, o2)
    }

    #[test]
    fn locks_exactly_the_touched_fields() {
        let (s, o1, _) = setup();
        let mut txn = s.begin();
        // m3 with f2=false reads only f2 — f3 stays unlocked (the branch
        // is not taken): finer than the TAV, which would cover f3 too.
        s.send(&mut txn, o1, "m3", &[]).unwrap();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let f3 = s.env().schema.resolve_field(c1, "f3").unwrap();
        let probe = s.lm.begin();
        assert_eq!(
            s.lm.try_acquire(probe, ResourceId::Field(o1, f3), LockMode::plain(WRITE)),
            TryAcquire::Granted,
            "untouched field is free"
        );
        s.lm.release_all(probe);
        let f2 = s.env().schema.resolve_field(c1, "f2").unwrap();
        let probe2 = s.lm.begin();
        assert_eq!(
            s.lm.try_acquire(probe2, ResourceId::Field(o1, f2), LockMode::plain(WRITE)),
            TryAcquire::WouldBlock,
            "read field is share-locked"
        );
        s.commit(txn).unwrap();
    }

    #[test]
    fn higher_lock_traffic_than_tav() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(1)]).unwrap();
        let requests = s.stats().requests;
        s.commit(txn).unwrap();
        // TAV needs 2; per-field locking needs one call per touched field
        // plus class markers — strictly more.
        assert!(requests > 2, "got {requests}");
    }

    #[test]
    fn field_escalation_possible() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        // m2 computes expr(f1,…) then assigns f1: read then write on f1.
        s.send(&mut txn, o2, "m2", &[Value::Int(1)]).unwrap();
        assert!(s.stats().upgrades >= 1);
        s.commit(txn).unwrap();
    }

    #[test]
    fn disjoint_field_writers_parallel() {
        // Like the TAV scheme (and unlike RW), m2 and m4 can interleave.
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        s.send(&mut t1, o2, "m2", &[Value::Int(1)]).unwrap();
        s.send(&mut t2, o2, "m4", &[Value::Int(5), Value::Int(1)])
            .unwrap();
        s.commit(t1).unwrap();
        s.commit(t2).unwrap();
    }

    #[test]
    fn abort_rolls_back() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m2", &[Value::Int(5)]).unwrap();
        s.abort(txn);
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(0));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(0));
    }

    #[test]
    fn send_all_covers_domain() {
        let (s, o1, o2) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let mut txn = s.begin();
        let r = s.send_all(&mut txn, c1, "m2", &[Value::Int(2)]).unwrap();
        assert_eq!(r.len(), 2);
        s.commit(txn).unwrap();
        assert_eq!(s.env().read_named(o1, "c1", "f1"), Value::Int(2));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(2));
    }
}
