//! The read/write baseline (ORION-style, per-message control).
//!
//! This is the scheme §3 criticizes: only two instance modes exist, and
//! **every message wants control** — a self-directed message re-locks the
//! receiver with its own reader/writer classification (derived from its
//! *direct* code, the only thing a per-message monitor can see).
//! Consequences, measured by experiments E5–E7:
//!
//! * P2 — invoking `m1` costs three controls instead of one;
//! * P3 — `m1` (reader) read-locks, then `m2` (writer) escalates to a
//!   write lock: the System R deadlock pattern;
//! * P4 — `m2` and `m4` both collapse to "writer" and conflict although
//!   they touch disjoint fields.

use crate::env::Env;
use crate::scheme::CcScheme;
use crate::schemes::interpreter;
use crate::txn::Txn;
use finecc_lang::{DataAccess, ExecError};
use finecc_lock::{LockManager, LockMode, ResourceId, RwSource, StatsSnapshot, READ, WRITE};
use finecc_model::{ClassId, FieldId, MethodId, Oid, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// Per-message read/write instance locking.
pub struct RwScheme {
    env: Env,
    lm: LockManager<RwSource>,
}

impl RwScheme {
    /// Builds the scheme.
    pub fn new(env: Env) -> RwScheme {
        RwScheme {
            lm: LockManager::new(RwSource)
                .with_timeout(env.lock_timeout)
                .with_obs(std::sync::Arc::clone(&env.obs)),
            env,
        }
    }

    /// The underlying lock manager.
    pub fn lock_manager(&self) -> &LockManager<RwSource> {
        &self.lm
    }

    /// A method's reader/writer classification from its **direct** access
    /// vector — what a per-message monitor knows when the message is sent.
    fn classify(&self, mid: MethodId) -> u16 {
        if self.env.compiled.extraction.dav(mid).collapse().is_write() {
            WRITE
        } else {
            READ
        }
    }

    /// A method's *transitive* classification — used only for announcing
    /// extent-level (hierarchical) locks, where even an RW system must
    /// consider the whole operation.
    fn classify_tav(&self, class: ClassId, method: &str) -> Result<u16, ExecError> {
        let table = self.env.compiled.class(class);
        let idx = table
            .index_of(method)
            .ok_or_else(|| ExecError::MessageNotUnderstood {
                class,
                method: method.to_string(),
            })?;
        Ok(if table.tav(idx).collapse().is_write() {
            WRITE
        } else {
            READ
        })
    }
}

struct RwAccess<'a> {
    env: &'a Env,
    lm: &'a LockManager<RwSource>,
    scheme: &'a RwScheme,
    txn: &'a mut Txn,
    covered: &'a HashSet<ClassId>,
}

impl RwAccess<'_> {
    fn control(&mut self, oid: Oid, class: ClassId, mid: MethodId) -> Result<(), ExecError> {
        let m = self.scheme.classify(mid);
        if self.covered.contains(&class) {
            // Hierarchically covered: escalation surfaces at class level.
            if m == WRITE {
                self.lm
                    .acquire(
                        self.txn.id,
                        ResourceId::Class(class),
                        LockMode::class(WRITE, true),
                    )
                    .map_err(Env::lock_err)?;
            }
            return Ok(());
        }
        self.lm
            .acquire(
                self.txn.id,
                ResourceId::Class(class),
                LockMode::class(m, false),
            )
            .map_err(Env::lock_err)?;
        self.lm
            .acquire(
                self.txn.id,
                ResourceId::Instance(oid, class),
                LockMode::plain(m),
            )
            .map_err(Env::lock_err)?;
        Ok(())
    }
}

impl DataAccess for RwAccess<'_> {
    fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError> {
        self.env.db.class_of(oid).map_err(Env::store_err)
    }

    fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError> {
        self.env.db.read(oid, field).map_err(Env::store_err)
    }

    fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError> {
        let old = self
            .env
            .db
            .write(oid, field, value)
            .map_err(Env::store_err)?;
        // First-write-wins before-image (per-field logging: an RW system
        // has no access vectors to project through).
        self.txn.undo.record(oid, field, old);
        Ok(())
    }

    fn on_message(&mut self, oid: Oid, class: ClassId, mid: MethodId) -> Result<(), ExecError> {
        self.control(oid, class, mid)
    }

    /// Per-message control: this is what produces the locking overhead
    /// and the read→write escalations of §3.
    fn on_self_message(
        &mut self,
        oid: Oid,
        class: ClassId,
        mid: MethodId,
    ) -> Result<(), ExecError> {
        self.control(oid, class, mid)
    }
}

impl CcScheme for RwScheme {
    fn name(&self) -> &'static str {
        "rw"
    }

    fn env(&self) -> &Env {
        &self.env
    }

    fn begin(&self) -> Txn {
        Txn::new(self.lm.begin())
    }

    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let covered = HashSet::new();
        let mut da = RwAccess {
            env: &self.env,
            lm: &self.lm,
            scheme: self,
            txn,
            covered: &covered,
        };
        interpreter(&self.env).send(&mut da, oid, method, args)
    }

    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        // Announce the transitive classification hierarchically: an RW
        // system planning an extent operation knows it from the query.
        for &c in self.env.schema.domain(root) {
            let m = self.classify_tav(c, method)?;
            self.lm
                .acquire(txn.id, ResourceId::Class(c), LockMode::class(m, true))
                .map_err(Env::lock_err)?;
        }
        let covered: HashSet<ClassId> = self.env.schema.domain(root).iter().copied().collect();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for oid in self.env.db.deep_extent(root) {
            let mut da = RwAccess {
                env: &self.env,
                lm: &self.lm,
                scheme: self,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        for &c in self.env.schema.domain(root) {
            let mid = self.env.schema.resolve_method(c, method).ok_or_else(|| {
                ExecError::MessageNotUnderstood {
                    class: c,
                    method: method.to_string(),
                }
            })?;
            let m = self.classify(mid);
            self.lm
                .acquire(txn.id, ResourceId::Class(c), LockMode::class(m, false))
                .map_err(Env::lock_err)?;
        }
        let covered = HashSet::new();
        let interp = interpreter(&self.env);
        let mut out = Vec::new();
        for &oid in oids {
            let mut da = RwAccess {
                env: &self.env,
                lm: &self.lm,
                scheme: self,
                txn,
                covered: &covered,
            };
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn commit(&self, mut txn: Txn) -> Result<u64, ExecError> {
        // Strict 2PL holds every lock to this point; nothing is left to
        // validate. The commit sequence is drawn and the redo images
        // are logged (write-ahead durability, when attached) while
        // every lock is still held, so the log's timestamp order is a
        // valid serialization order and the after-images are exactly
        // what this transaction wrote. The one remaining failure is
        // the log refusing the redo append: the env then rolls the
        // transaction back under these same locks and the retryable
        // error surfaces after they are released.
        let seq = self.env.next_commit_seq();
        let logged = self.env.log_commit_redo(&mut txn, seq);
        self.lm.release_all(txn.id);
        logged?;
        Ok(seq)
    }

    fn abort(&self, mut txn: Txn) {
        txn.undo.rollback(&self.env.db);
        self.lm.release_all(txn.id);
    }

    fn stats(&self) -> StatsSnapshot {
        self.lm.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.lm.stats.reset();
    }

    fn register_metrics(&self, reg: &finecc_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        crate::metrics::register_env_metrics(reg, self.env(), labels);
        let stats = Arc::clone(&self.lm.stats);
        reg.register_fn(labels, move |c| stats.snapshot().collect_metrics(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::FIGURE1_SOURCE;
    use finecc_lock::TryAcquire;

    fn setup() -> (RwScheme, Oid, Oid) {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c1 = env.schema.class_by_name("c1").unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let o1 = env.db.create(c1);
        let o2 = env.db.create(c2);
        (RwScheme::new(env), o1, o2)
    }

    #[test]
    fn per_message_control_overhead() {
        // P2 reproduced: m1 on a c2 instance = top control + three
        // self-message controls (m2, c1.m2, m3), each 2 lock requests.
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(1)]).unwrap();
        let st = s.stats();
        assert_eq!(st.requests, 8, "4 controls × (class + instance)");
        s.commit(txn).unwrap();
    }

    #[test]
    fn escalation_reproduced() {
        // P3 reproduced: m1 read-locks, then m2 escalates to write.
        let (s, o1, _) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o1, "m1", &[Value::Int(1)]).unwrap();
        assert!(s.stats().upgrades >= 1, "read→write escalation happened");
        s.commit(txn).unwrap();
    }

    #[test]
    fn pseudo_conflict_reproduced() {
        // P4 reproduced: m2 and m4 (disjoint fields!) conflict under RW.
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        s.send(&mut t1, o2, "m2", &[Value::Int(1)]).unwrap();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        let probe = s.lm.begin();
        let r =
            s.lm.try_acquire(probe, ResourceId::Instance(o2, c2), LockMode::plain(WRITE));
        assert_eq!(r, TryAcquire::WouldBlock, "m4 would block behind m2");
        s.commit(t1).unwrap();
    }

    #[test]
    fn execution_still_correct() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(3)]).unwrap();
        s.commit(txn).unwrap();
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(3));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(3));
    }

    #[test]
    fn abort_restores_per_field_images() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m2", &[Value::Int(9)]).unwrap();
        s.abort(txn);
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(0));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(0));
    }

    #[test]
    fn readers_share() {
        let (s, o1, _) = setup();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        // m3 is a pure reader when f2 is false.
        s.send(&mut t1, o1, "m3", &[]).unwrap();
        s.send(&mut t2, o1, "m3", &[]).unwrap();
        s.commit(t1).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(s.stats().blocks, 0);
    }

    #[test]
    fn send_all_uses_transitive_classification() {
        let (s, _, _) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let mut txn = s.begin();
        // m1 transitively writes → hierarchical WRITE on c1 and c2.
        s.send_all(&mut txn, c1, "m1", &[Value::Int(1)]).unwrap();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        let probe = s.lm.begin();
        let r =
            s.lm.try_acquire(probe, ResourceId::Class(c2), LockMode::class(READ, false));
        assert_eq!(
            r,
            TryAcquire::WouldBlock,
            "intentional read blocked by hier write"
        );
        s.commit(txn).unwrap();
    }
}
