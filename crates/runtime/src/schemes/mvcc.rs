//! The multi-version / optimistic scheme: snapshot reads, no read locks,
//! first-updater-wins write validation — at either isolation level
//! ([`IsolationLevel`] is a first-class scheme parameter, giving the
//! matrix two entries: `mvcc` at `Snapshot`, `mvcc-ssi` at
//! `Serializable`).
//!
//! This is the scheme matrix's optimistic point of comparison (after
//! Larson et al., VLDB 2012), deliberately *not* in the paper: where the
//! TAV scheme buys parallelism from compile-time commutativity, MVCC buys
//! it from versioning — readers never take a lock and never block, at the
//! price of either snapshot-isolation semantics (write skew is possible;
//! see the regression tests) or, at `Serializable`, commit-time SSI
//! validation aborts — plus optimistic restarts on field-level
//! write-write conflicts:
//!
//! * **Reads** reconstruct the transaction's snapshot from the
//!   copy-on-write version chains of [`finecc_mvcc::MvccHeap`] —
//!   **latch-free** on the chain-hit path: no lock manager, no mutex,
//!   no base-store `RwLock` (the scheme's `finecc_lock` statistics stay
//!   at zero by construction, and the heap's `read_base_loads` counter
//!   stays at zero whenever a chain covers the field). The snapshot
//!   timestamp is cached in the transaction session, so steady-state
//!   operations skip the heap's transaction registry too.
//! * **Writes** install pending versions under first-updater-wins
//!   admission control at **field granularity** — like the TAV scheme,
//!   writers of disjoint fields of one instance run in parallel (the
//!   paper's P4, solved by versioning instead of commutativity
//!   matrices). A conflicting write fails with a *retryable*
//!   [`ExecError::ConcurrencyAbort`], so the standard
//!   [`crate::run_txn`] retry loop re-runs the transaction on a fresh
//!   snapshot — the optimistic analogue of a deadlock-victim restart.
//! * **Commit** draws one timestamp and flips every pending version
//!   atomically with respect to new snapshots; the returned commit
//!   sequence *is* the commit timestamp. At `Snapshot` commit is
//!   infallible (all validation happened at write time). At
//!   `Serializable` the heap validates Cahill-style conflict flags fed
//!   by the interpreter's field-granularity footprints and refuses
//!   dangerous structures with a retryable
//!   [`ExecError::ConcurrencyAbort`]; [`crate::run_txn`] re-runs the
//!   victim on a fresh snapshot exactly like a deadlock victim.
//!
//! Compared per §5.2: every pair the TAV scheme admits, MVCC admits too
//! (a TAV write-set conflict is a superset of a field write-write
//! conflict), and MVCC additionally admits any reader against any
//! writer, which no lock scheme does. The price at `Snapshot` is
//! isolation strength (write skew — see `tests/snapshot_isolation.rs`);
//! `mvcc-ssi` restores serializability and instead pays a commit-time
//! validation-abort tax, reported separately in the heap statistics
//! (`ssi_aborts`).

use crate::env::Env;
use crate::scheme::CcScheme;
use crate::schemes::interpreter;
use crate::txn::Txn;
use finecc_lang::{DataAccess, ExecError};
use finecc_lock::{LockStats, StatsSnapshot};
use finecc_model::{ClassId, FieldId, MethodId, Oid, TxnId, Value};
use finecc_mvcc::{
    CommitError, CommitPath, DurabilityLevel, IsolationLevel, MvccHeap, MvccStatsSnapshot,
    MvccWriteError, SsiConflict, Wal, WalConfig,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot reads + optimistic first-updater-wins writes over the
/// multi-version heap.
pub struct MvccScheme {
    env: Env,
    heap: Arc<MvccHeap>,
    next_txn: AtomicU64,
    /// Never bumped — the scheme takes no logical locks. Kept so
    /// [`CcScheme::stats`] proves it mechanically.
    lock_stats: LockStats,
}

impl MvccScheme {
    /// Builds the scheme at [`IsolationLevel::Snapshot`], layering a
    /// fresh version heap over the environment's object store.
    pub fn new(env: Env) -> MvccScheme {
        MvccScheme::with_isolation(env, IsolationLevel::Snapshot)
    }

    /// Builds the scheme at the given isolation level — the level is a
    /// first-class scheme parameter: `Snapshot` is the `mvcc` matrix
    /// entry, `Serializable` the `mvcc-ssi` one.
    pub fn with_isolation(env: Env, isolation: IsolationLevel) -> MvccScheme {
        MvccScheme::with_commit_path(env, isolation, CommitPath::Sharded)
    }

    /// Builds the scheme at the given isolation level and heap commit
    /// path. [`CommitPath::CoarseBaseline`] reinstates the pre-sharding
    /// single-mutex commit and exists **only** so experiments (the
    /// `parallelism_sweep` scaling table) can measure the sharded
    /// path's win; production callers use [`MvccScheme::with_isolation`].
    pub fn with_commit_path(
        env: Env,
        isolation: IsolationLevel,
        commit_path: CommitPath,
    ) -> MvccScheme {
        MvccScheme {
            heap: Arc::new(
                MvccHeap::with_commit_path(Arc::clone(&env.db), isolation, commit_path)
                    .with_obs(Arc::clone(&env.obs)),
            ),
            env,
            next_txn: AtomicU64::new(1),
            lock_stats: LockStats::default(),
        }
    }

    /// Builds the scheme at the given isolation level with write-ahead
    /// durability: the heap logs every writer commit's field-granular
    /// redo images into `dir` **before** publishing its timestamp
    /// (durable before visible), writes a genesis checkpoint if the
    /// directory has none, and — at [`DurabilityLevel::WalSync`] —
    /// holds each commit until the group fsync covers its record.
    /// [`DurabilityLevel::None`] builds the plain scheme: the snapshot
    /// read path is identical in every configuration (the log is only
    /// ever touched at commit).
    pub fn with_durability(
        env: Env,
        isolation: IsolationLevel,
        level: DurabilityLevel,
        dir: impl AsRef<Path>,
    ) -> std::io::Result<MvccScheme> {
        if level == DurabilityLevel::None {
            return Ok(MvccScheme::with_isolation(env, isolation));
        }
        let wal = Arc::new(Wal::open_with_obs(
            dir,
            WalConfig {
                level,
                ..WalConfig::default()
            },
            Arc::clone(&env.obs),
        )?);
        let heap = Arc::new(
            MvccHeap::with_wal(
                Arc::clone(&env.db),
                isolation,
                CommitPath::Sharded,
                Arc::clone(&wal),
            )?
            .with_obs(Arc::clone(&env.obs)),
        );
        let mut env = env;
        // Shared handle: `CcScheme::wal_stats`/`durability` read it
        // from the environment uniformly across all six schemes.
        env.wal = Some(wal);
        Ok(MvccScheme {
            heap,
            env,
            next_txn: AtomicU64::new(1),
            lock_stats: LockStats::default(),
        })
    }

    /// The scheme's isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.heap.isolation()
    }

    /// The underlying multi-version heap (for tests, experiments, and
    /// standalone snapshots).
    pub fn heap(&self) -> &Arc<MvccHeap> {
        &self.heap
    }

    fn exec_err(e: MvccWriteError) -> ExecError {
        match e {
            // Retryable: the transaction restarts on a fresh snapshot,
            // like a deadlock victim under the lock schemes.
            MvccWriteError::Conflict(c) => ExecError::ConcurrencyAbort {
                deadlock: true,
                msg: c.to_string(),
            },
            MvccWriteError::Store(e) => Env::store_err(e),
        }
    }

    fn ssi_err(c: SsiConflict) -> ExecError {
        // Also retryable: the dangerous structure involved concurrent
        // transactions that are gone by the time the victim re-runs.
        ExecError::ConcurrencyAbort {
            deadlock: true,
            msg: c.to_string(),
        }
    }
}

struct MvccAccess<'a> {
    env: &'a Env,
    heap: &'a MvccHeap,
    txn: TxnId,
    /// The transaction's snapshot timestamp, cached in the [`Txn`]
    /// session at begin — field reads and writes go straight to the
    /// version chains without ever touching the heap's transaction
    /// registry.
    snapshot_ts: u64,
}

impl DataAccess for MvccAccess<'_> {
    fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError> {
        self.env.db.class_of(oid).map_err(Env::store_err)
    }

    fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError> {
        self.heap
            .read_as(self.snapshot_ts, Some(self.txn), oid, field)
            .map_err(Env::store_err)
    }

    fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError> {
        self.heap
            .write_at(self.snapshot_ts, self.txn, oid, field, value)
            .map(drop)
            .map_err(MvccScheme::exec_err)
    }

    // on_message / on_self_message: default no-ops. There is no lock to
    // announce — versioning replaces admission control for readers, and
    // writers are validated at each write.
    fn on_message(&mut self, _: Oid, _: ClassId, _: MethodId) -> Result<(), ExecError> {
        Ok(())
    }
}

impl MvccScheme {
    fn access<'a>(&'a self, txn: &Txn) -> MvccAccess<'a> {
        // The snapshot timestamp is cached in the transaction session at
        // begin, so steady-state message sends never touch the heap's
        // transaction registry (the fallback covers hand-built `Txn`s).
        let snapshot_ts = txn.snapshot_ts.unwrap_or_else(|| {
            self.heap
                .snapshot_ts(txn.id)
                .expect("transaction began through this scheme")
        });
        MvccAccess {
            env: &self.env,
            heap: &self.heap,
            txn: txn.id,
            snapshot_ts,
        }
    }
}

impl CcScheme for MvccScheme {
    fn name(&self) -> &'static str {
        match self.heap.isolation() {
            IsolationLevel::Snapshot => "mvcc",
            IsolationLevel::Serializable => "mvcc-ssi",
        }
    }

    fn env(&self) -> &Env {
        &self.env
    }

    fn begin(&self) -> Txn {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        let snapshot_ts = self.heap.begin(id);
        Txn::with_snapshot_ts(id, snapshot_ts)
    }

    fn send(
        &self,
        txn: &mut Txn,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let mut da = self.access(txn);
        interpreter(&self.env).send(&mut da, oid, method, args)
    }

    fn send_all(
        &self,
        txn: &mut Txn,
        root: ClassId,
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        let interp = interpreter(&self.env);
        let mut da = self.access(txn);
        let mut out = Vec::new();
        for oid in self.env.db.deep_extent(root) {
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn send_some(
        &self,
        txn: &mut Txn,
        root: ClassId,
        oids: &[Oid],
        method: &str,
        args: &[Value],
    ) -> Result<Vec<Value>, ExecError> {
        let _ = root; // No intentional class locks to take.
        let interp = interpreter(&self.env);
        let mut da = self.access(txn);
        let mut out = Vec::new();
        for &oid in oids {
            out.push(interp.send(&mut da, oid, method, args)?);
        }
        Ok(out)
    }

    fn commit(&self, mut txn: Txn) -> Result<u64, ExecError> {
        // The undo log is unused: rollback state lives in the version
        // chains' before-images. Writers return their fresh (unique)
        // commit timestamp; read-only transactions serialize at — and
        // return — their snapshot timestamp, skipping the commit lock.
        // At Serializable the heap validates here and rolls the
        // transaction back itself on a dangerous structure.
        txn.undo.clear();
        self.heap.commit(txn.id).map_err(|e| match e {
            CommitError::Ssi(c) => MvccScheme::ssi_err(c),
            // The heap already rolled the transaction back and skip-
            // published the drawn timestamp; the failure is retryable.
            CommitError::LogIo(m) => ExecError::LogIo(m),
        })
    }

    fn abort(&self, mut txn: Txn) {
        txn.undo.clear();
        self.heap.abort(txn.id);
    }

    fn stats(&self) -> StatsSnapshot {
        self.lock_stats.snapshot()
    }

    fn reset_stats(&self) {
        self.lock_stats.reset();
        self.heap.stats.reset();
    }

    fn mvcc_stats(&self) -> Option<MvccStatsSnapshot> {
        Some(self.heap.stats.snapshot())
    }

    fn register_metrics(&self, reg: &finecc_obs::MetricsRegistry, labels: &[(&str, &str)]) {
        crate::metrics::register_env_metrics(reg, self.env(), labels);
        let heap = Arc::clone(&self.heap);
        reg.register_fn(labels, move |c| heap.stats.snapshot().collect_metrics(c));
    }

    fn checkpoint(&self) -> Option<Result<u64, ExecError>> {
        self.env.wal.as_ref()?;
        Some(self.heap.checkpoint().map_err(|e| {
            // The heap surfaces typed recovery errors through the
            // io::Error bridge; recover the structure (file, offset)
            // when it is there, fall back to the retryable log-I/O
            // class otherwise.
            match finecc_wal::as_recovery_error(&e) {
                Some(rec) => ExecError::Recovery {
                    file: rec.file().display().to_string(),
                    offset: rec.offset(),
                    detail: rec.to_string(),
                },
                None => ExecError::LogIo(e.to_string()),
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::run_txn;
    use finecc_lang::parser::FIGURE1_SOURCE;

    fn setup() -> (MvccScheme, Oid, Oid) {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c1 = env.schema.class_by_name("c1").unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let o1 = env.db.create(c1);
        let o2 = env.db.create(c2);
        (MvccScheme::new(env), o1, o2)
    }

    #[test]
    fn isolation_level_names_the_scheme() {
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let s = MvccScheme::with_isolation(env.clone(), IsolationLevel::Serializable);
        assert_eq!(s.name(), "mvcc-ssi");
        assert_eq!(s.isolation(), IsolationLevel::Serializable);
        let s = MvccScheme::new(env);
        assert_eq!(s.name(), "mvcc");
        assert_eq!(s.isolation(), IsolationLevel::Snapshot);
    }

    #[test]
    fn execution_matches_lock_schemes_with_zero_lock_requests() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(3)]).unwrap();
        s.commit(txn).unwrap();
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(3));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(3));
        assert_eq!(s.stats(), StatsSnapshot::default(), "no lock traffic, ever");
        assert_eq!(s.mvcc_stats().unwrap().commits, 1);
    }

    #[test]
    fn readers_never_conflict_with_writers() {
        let (s, _, o2) = setup();
        let c2 = s.env().schema.class_by_name("c2").unwrap();
        let f4 = s.env().schema.resolve_field(c2, "f4").unwrap();
        let mut writer = s.begin();
        s.send(&mut writer, o2, "m2", &[Value::Int(9)]).unwrap();
        assert_eq!(s.env().db.read(o2, f4), Ok(Value::Int(9)), "write-through");
        // A concurrent reader runs to completion while the writer holds
        // pending versions — impossible under every lock scheme — and its
        // snapshot predates the pending write.
        let mut reader = s.begin();
        s.send(&mut reader, o2, "m3", &[]).unwrap();
        assert_eq!(s.heap().read(reader.id, o2, f4), Ok(Value::Int(0)));
        s.commit(reader).unwrap();
        s.commit(writer).unwrap();
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn same_field_writers_conflict_retryably() {
        // Two transactions running m2 on one instance both write f1/f4:
        // field-level first-updater-wins refuses the second.
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        s.send(&mut t1, o2, "m2", &[Value::Int(1)]).unwrap();
        let mut t2 = s.begin();
        let err = s.send(&mut t2, o2, "m2", &[Value::Int(9)]).unwrap_err();
        assert!(err.is_deadlock(), "conflict must be retryable: {err}");
        s.abort(t2);
        s.commit(t1).unwrap();
        assert_eq!(s.mvcc_stats().unwrap().write_conflicts, 1);
        // The retry (fresh snapshot) succeeds.
        let out = run_txn(&s, 3, |txn| s.send(txn, o2, "m2", &[Value::Int(9)]));
        assert!(out.is_committed());
    }

    #[test]
    fn disjoint_field_writers_commute_like_tav() {
        // The paper's pseudo-conflict P4: m2 (f1, f4) and m4 (f6) write
        // the same instance but disjoint fields. Like the TAV scheme —
        // and unlike RW — MVCC admits the overlap.
        let (s, _, o2) = setup();
        let mut t1 = s.begin();
        let mut t2 = s.begin();
        s.send(&mut t1, o2, "m2", &[Value::Int(1)]).unwrap();
        s.send(&mut t2, o2, "m4", &[Value::Int(5), Value::Int(2)])
            .unwrap();
        s.commit(t1).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(s.mvcc_stats().unwrap().write_conflicts, 0);
        assert_eq!(s.mvcc_stats().unwrap().commits, 2);
    }

    #[test]
    fn abort_leaves_no_trace() {
        let (s, _, o2) = setup();
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m2", &[Value::Int(9)]).unwrap();
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(9));
        s.abort(txn);
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(0));
        assert_eq!(s.env().read_named(o2, "c2", "f1"), Value::Int(0));
        assert_eq!(s.heap().live_versions(), 0);
    }

    #[test]
    fn send_all_and_send_some_run_without_locks() {
        let (s, o1, o2) = setup();
        let c1 = s.env().schema.class_by_name("c1").unwrap();
        let mut txn = s.begin();
        let results = s.send_all(&mut txn, c1, "m2", &[Value::Int(2)]).unwrap();
        assert_eq!(results.len(), 2, "deep extent: o1 and o2");
        s.commit(txn).unwrap();
        assert_eq!(s.env().read_named(o1, "c1", "f1"), Value::Int(2));
        assert_eq!(s.env().read_named(o2, "c2", "f4"), Value::Int(2));

        let mut txn = s.begin();
        let results = s.send_some(&mut txn, c1, &[o1], "m3", &[]).unwrap();
        assert_eq!(results.len(), 1);
        s.commit(txn).unwrap();
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn commit_sequences_are_the_commit_timestamps() {
        let (s, o1, _) = setup();
        let mut last = 0;
        for i in 1..=5 {
            let mut txn = s.begin();
            s.send(&mut txn, o1, "m2", &[Value::Int(i)]).unwrap();
            let seq = s.commit(txn).unwrap();
            assert!(seq > last);
            last = seq;
        }
        assert_eq!(last, s.heap().current_ts());
    }

    #[test]
    fn durable_scheme_recovers_committed_state() {
        let dir =
            std::env::temp_dir().join(format!("finecc-scheme-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let f1 = env.schema.resolve_field(c2, "f1").unwrap();
        let f4 = env.schema.resolve_field(c2, "f4").unwrap();
        let o2 = env.db.create(c2);
        let s = MvccScheme::with_durability(
            env,
            IsolationLevel::Snapshot,
            DurabilityLevel::WalSync,
            &dir,
        )
        .unwrap();
        assert_eq!(s.durability(), DurabilityLevel::WalSync);
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m1", &[Value::Int(9)]).unwrap();
        s.commit(txn).unwrap();
        // An aborted transaction must leave no trace in the log.
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m2", &[Value::Int(77)]).unwrap();
        s.abort(txn);
        let wal = s.wal_stats().unwrap();
        assert!(wal.appends >= 1 && wal.log_fsyncs >= 1 && wal.log_bytes > 0);
        drop(s);
        let (heap, info) = MvccHeap::recover(
            &dir,
            IsolationLevel::Snapshot,
            CommitPath::Sharded,
            finecc_mvcc::WalConfig::default(),
        )
        .unwrap();
        assert_eq!(info.replayed, 1, "one committed txn replayed");
        assert_eq!(heap.base().read(o2, f1), Ok(Value::Int(9)));
        assert_eq!(heap.base().read(o2, f4), Ok(Value::Int(9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_level_none_changes_nothing() {
        let (s, _, o2) = setup();
        assert_eq!(s.durability(), DurabilityLevel::None);
        assert!(s.wal_stats().is_none());
        assert!(s.checkpoint().is_none(), "no log, no online checkpoint");
        let mut txn = s.begin();
        s.send(&mut txn, o2, "m2", &[Value::Int(3)]).unwrap();
        s.commit(txn).unwrap();
    }

    #[test]
    fn online_checkpoint_truncates_through_the_scheme() {
        let dir = std::env::temp_dir().join(format!("finecc-scheme-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let env = Env::from_source(FIGURE1_SOURCE).unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let o2 = env.db.create(c2);
        let s = MvccScheme::with_durability(
            env,
            IsolationLevel::Snapshot,
            DurabilityLevel::WalSync,
            &dir,
        )
        .unwrap();
        for i in 0..4 {
            let mut txn = s.begin();
            s.send(&mut txn, o2, "m1", &[Value::Int(i)]).unwrap();
            s.commit(txn).unwrap();
        }
        let ts = s
            .checkpoint()
            .expect("durable mvcc scheme checkpoints online")
            .expect("quiet checkpoint succeeds");
        assert!(ts >= 4);
        let wal = s.wal_stats().unwrap();
        assert_eq!(wal.truncations, 2, "maintenance ran at genesis + online");
        assert!(wal.truncated_bytes > 0, "pre-image commits were dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_loop_commits_under_contention() {
        let (s, _, o2) = setup();
        let s = std::sync::Arc::new(s);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..50 {
                        let out = run_txn(s.as_ref(), 1000, |txn| {
                            s.send(txn, o2, "m2", &[Value::Int(1)])
                        });
                        assert!(out.is_committed());
                    }
                });
            }
        });
        let m = s.mvcc_stats().unwrap();
        assert_eq!(m.commits, 200);
        assert_eq!(s.stats().requests, 0, "contention resolved without locks");
    }
}
