//! Wiring between schemes and the unified metrics registry.
//!
//! [`register_env_metrics`] attaches the environment-level *live*
//! sources every scheme shares — the observability plane (phase
//! quantiles cumulative + windowed, contention totals, decayed hot
//! scores) and, when durability is attached, the WAL counters
//! (flusher queue depth, batch-size distribution, recovery progress).
//! Each scheme's [`crate::CcScheme::register_metrics`] builds on this,
//! adding its own counters (lock-manager stats for the 2PL schemes,
//! the version heap's stats for the mvcc schemes) under the same
//! labels.
//!
//! Everything here is pull-based: registration clones `Arc` handles
//! into closures, and nothing runs until a registry snapshot (or the
//! background sampler) asks. The measured paths never see the
//! registry.

use crate::env::Env;
use finecc_obs::MetricsRegistry;
use std::sync::Arc;

/// Registers the environment's live metric sources (observability
/// plane + WAL, when attached) under `labels`.
pub fn register_env_metrics(reg: &MetricsRegistry, env: &Env, labels: &[(&str, &str)]) {
    let obs = Arc::clone(&env.obs);
    reg.register_fn(labels, move |c| obs.collect_metrics(c));
    if let Some(wal) = &env.wal {
        let wal = Arc::clone(wal);
        reg.register_fn(labels, move |c| wal.collect_metrics(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_lang::parser::FIGURE1_SOURCE;
    use finecc_obs::{Obs, ObsConfig, Phase};

    #[test]
    fn env_sources_pull_live_obs_counters() {
        let obs = Arc::new(Obs::new(ObsConfig::enabled()));
        let env = Env::from_source(FIGURE1_SOURCE)
            .unwrap()
            .with_obs(Arc::clone(&obs));
        let reg = MetricsRegistry::new();
        register_env_metrics(&reg, &env, &[("scheme", "test")]);
        assert!(
            !reg.snapshot()
                .iter()
                .any(|s| s.name == "finecc.obs.phase.count"),
            "no phase samples before anything records"
        );
        obs.record_phase_ns(Phase::CommitTotal, 1_000);
        let samples = reg.snapshot();
        let commit_count = samples
            .iter()
            .find(|s| {
                s.name == "finecc.obs.phase.count"
                    && s.labels.iter().any(|(k, v)| k == "phase" && v == "commit")
            })
            .expect("commit phase sample present");
        assert_eq!(commit_count.value, 1.0);
        assert!(
            commit_count
                .labels
                .iter()
                .any(|(k, v)| k == "scheme" && v == "test"),
            "registration labels ride on every sample"
        );
    }
}
