//! Bounded per-thread event rings and the Chrome trace exporter.
//!
//! Each recording thread owns one single-producer/single-consumer
//! [`EventRing`]: the owning thread pushes lifecycle events with two
//! relaxed-ish atomic ops and one slot write; the exporter (the single
//! consumer) drains all rings after the run. A full ring **drops** the
//! new event and counts the drop — tracing is bounded by construction
//! and can never stall the transaction path.
//!
//! The exporter writes the Chrome `trace_event` JSON array format
//! (duration events as `"ph":"X"`, instants as `"ph":"i"`), loadable
//! directly in `chrome://tracing` or <https://ui.perfetto.dev>.

use std::cell::{RefCell, UnsafeCell};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Transaction lifecycle event classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Transaction attempt started.
    Begin,
    /// A (sampled) read.
    Read,
    /// A (sampled) write.
    Write,
    /// A lock request blocked (duration = wait).
    Block,
    /// A conflict was detected (ww, SSI, read retry).
    Conflict,
    /// Commit finished (duration = commit path).
    Commit,
    /// The attempt aborted.
    Abort,
    /// The WAL flusher issued an `fsync` (duration = sync).
    Fsync,
}

impl EventKind {
    /// Stable name used in the trace output.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::Read => "read",
            EventKind::Write => "write",
            EventKind::Block => "block",
            EventKind::Conflict => "conflict",
            EventKind::Commit => "commit",
            EventKind::Abort => "abort",
            EventKind::Fsync => "fsync",
        }
    }
}

/// One recorded event. Plain `Copy` data so ring slots need no drops.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Start time, nanoseconds since the collector's epoch.
    pub t_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Transaction id (0 when not transaction-scoped, e.g. fsync).
    pub txn: u64,
    /// Object id involved (0 when none).
    pub oid: u64,
}

/// A bounded single-producer/single-consumer event ring. The producer
/// is the owning thread; the consumer is the exporter, which runs
/// after the producer quiesces (the `Release` store on `head` makes
/// the slot writes visible to the consumer's `Acquire` load).
pub struct EventRing {
    slots: Box<[UnsafeCell<Event>]>,
    /// Next write position (producer-owned).
    head: AtomicUsize,
    /// Next read position (consumer-owned).
    tail: AtomicUsize,
    dropped: AtomicU64,
    /// Trace thread id of the owning thread.
    tid: u64,
}

// SAFETY: slot `i` is written only by the single producer while
// `i - tail < capacity` and `i < head`; the consumer reads slot `i`
// only after observing `head > i` with `Acquire`, which synchronizes
// with the producer's `Release` store. Head and tail partition the
// slots between the two sides at all times.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    fn new(capacity: usize, tid: u64) -> EventRing {
        let capacity = capacity.next_power_of_two().max(8);
        let filler = Event {
            kind: EventKind::Begin,
            t_ns: 0,
            dur_ns: 0,
            txn: 0,
            oid: 0,
        };
        EventRing {
            slots: (0..capacity).map(|_| UnsafeCell::new(filler)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// Producer-side push; drops (and counts) when full.
    fn push(&self, ev: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mask = self.slots.len() - 1;
        // SAFETY: this slot is outside the consumer-visible window
        // until the Release store below (see the Sync impl note).
        unsafe { *self.slots[head & mask].get() = ev };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consumer-side drain of everything currently published.
    fn drain(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mask = self.slots.len() - 1;
        let mut out = Vec::with_capacity(head.wrapping_sub(tail));
        while tail != head {
            // SAFETY: `tail < head` ⇒ published by the producer's
            // Release store, synchronized by the Acquire load above.
            out.push(unsafe { *self.slots[tail & mask].get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
        out
    }
}

thread_local! {
    /// This thread's rings, keyed by collector id (threads outlive
    /// collectors in tests; a bounded scan keeps lookup trivial).
    static LOCAL_RINGS: RefCell<Vec<(u64, Arc<EventRing>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// Gathers every thread's ring for one observability instance and
/// exports the merged, time-sorted trace.
pub struct TraceCollector {
    id: u64,
    capacity: usize,
    sample: u64,
    rings: Mutex<Vec<Arc<EventRing>>>,
    next_tid: AtomicU64,
}

impl TraceCollector {
    /// A collector whose per-thread rings hold `capacity` events and
    /// which samples one in `sample` transactions.
    pub fn new(capacity: usize, sample: u64) -> TraceCollector {
        TraceCollector {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            sample: sample.max(1),
            rings: Mutex::new(Vec::new()),
            next_tid: AtomicU64::new(1),
        }
    }

    /// `true` when transaction `txn` is in the sampled subset.
    #[inline]
    pub fn sampled(&self, txn: u64) -> bool {
        txn.is_multiple_of(self.sample)
    }

    /// Records `ev` into the calling thread's ring (creating and
    /// registering the ring on first use).
    pub fn emit(&self, ev: Event) {
        LOCAL_RINGS.with(|cell| {
            let mut local = cell.borrow_mut();
            if let Some((_, ring)) = local.iter().find(|(id, _)| *id == self.id) {
                ring.push(ev);
                return;
            }
            // Bound the per-thread registry across many collectors
            // (long test runs): dropping stale entries only orphans
            // rings the owning collectors still hold.
            if local.len() >= 32 {
                local.clear();
            }
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            let ring = Arc::new(EventRing::new(self.capacity, tid));
            ring.push(ev);
            self.rings
                .lock()
                .expect("trace ring registry poisoned")
                .push(Arc::clone(&ring));
            local.push((self.id, ring));
        });
    }

    /// Drains every ring: time-sorted `(tid, event)` pairs plus the
    /// total number of events dropped to ring bounds.
    pub fn drain(&self) -> (Vec<(u64, Event)>, u64) {
        let rings = self.rings.lock().expect("trace ring registry poisoned");
        let mut events: Vec<(u64, Event)> = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            dropped += ring.dropped.load(Ordering::Relaxed);
            events.extend(ring.drain().into_iter().map(|e| (ring.tid, e)));
        }
        events.sort_by_key(|(_, e)| e.t_ns);
        (events, dropped)
    }

    /// Writes the drained events to `path` in Chrome `trace_event`
    /// JSON array format. Returns the number of events written.
    pub fn export_chrome_trace(&self, path: &Path) -> std::io::Result<usize> {
        let (events, dropped) = self.drain();
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        out.write_all(b"[\n")?;
        for (i, (tid, e)) in events.iter().enumerate() {
            let sep = if i + 1 < events.len() { ",\n" } else { "\n" };
            let ts = e.t_ns as f64 / 1_000.0;
            if e.dur_ns > 0 {
                write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"txn\":{},\"oid\":{}}}}}{}",
                    e.kind.name(),
                    ts,
                    e.dur_ns as f64 / 1_000.0,
                    tid,
                    e.txn,
                    e.oid,
                    sep
                )?;
            } else {
                write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
                     \"pid\":1,\"tid\":{},\"args\":{{\"txn\":{},\"oid\":{}}}}}{}",
                    e.kind.name(),
                    ts,
                    tid,
                    e.txn,
                    e.oid,
                    sep
                )?;
            }
        }
        out.write_all(b"]\n")?;
        out.flush()?;
        if dropped > 0 {
            eprintln!("finecc-obs: trace ring dropped {dropped} events (bounded rings)");
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t_ns: u64) -> Event {
        Event {
            kind,
            t_ns,
            dur_ns: 0,
            txn: 1,
            oid: 2,
        }
    }

    #[test]
    fn ring_push_drain_roundtrip() {
        let r = EventRing::new(8, 1);
        for t in 0..5 {
            r.push(ev(EventKind::Begin, t));
        }
        let drained = r.drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(drained[4].t_ns, 4);
        // Drained slots are reusable.
        r.push(ev(EventKind::Commit, 99));
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r = EventRing::new(8, 1);
        for t in 0..20 {
            r.push(ev(EventKind::Read, t));
        }
        assert_eq!(r.drain().len(), 8);
        assert_eq!(r.dropped.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn collector_merges_threads_sorted() {
        let c = Arc::new(TraceCollector::new(64, 1));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..10u64 {
                        c.emit(ev(EventKind::Write, t * 100 + i));
                    }
                });
            }
        });
        let (events, dropped) = c.drain();
        assert_eq!(events.len(), 40);
        assert_eq!(dropped, 0);
        assert!(events.windows(2).all(|w| w[0].1.t_ns <= w[1].1.t_ns));
        let tids: std::collections::HashSet<u64> = events.iter().map(|(t, _)| *t).collect();
        assert_eq!(tids.len(), 4, "one ring per thread");
    }

    #[test]
    fn sampling_gates_by_txn() {
        let c = TraceCollector::new(8, 4);
        assert!(c.sampled(0));
        assert!(!c.sampled(1));
        assert!(c.sampled(8));
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let c = TraceCollector::new(64, 1);
        c.emit(ev(EventKind::Begin, 1_000));
        c.emit(Event {
            kind: EventKind::Commit,
            t_ns: 2_000,
            dur_ns: 500,
            txn: 1,
            oid: 0,
        });
        let path =
            std::env::temp_dir().join(format!("finecc-obs-trace-{}.json", std::process::id()));
        let n = c.export_chrome_trace(&path).unwrap();
        assert_eq!(n, 2);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("[\n") && body.ends_with("]\n"));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"ph\":\"i\""));
        assert!(body.contains("\"dur\":0.500"));
        let _ = std::fs::remove_file(&path);
    }
}
