//! Log-bucketed latency histograms (HDR-style).
//!
//! A [`Histogram`] is a fixed array of `AtomicU64` bucket counters — no
//! allocation, no lock, no ordering stronger than `Relaxed` on the
//! record path. Buckets are log-linear: values below 2⁵ are exact
//! (unit-width buckets); every larger power-of-two range is split into
//! 2⁵ linear sub-buckets, so the quantile error is bounded by the log
//! base: a reported quantile `q` for a true value `v` satisfies
//! `v - q ≤ v / 32` (the report is the bucket's lower bound, hence
//! never an overestimate).
//!
//! [`ShardedHistogram`] spreads recording across per-thread shards
//! (threads are striped over [`HIST_SHARDS`] plain histograms by a
//! thread-local index drawn once per thread), keeping the record path
//! contention-free; shards merge losslessly at snapshot time — bucket
//! counts are plain sums, so `merge(shards)` equals the histogram of
//! the concatenated samples exactly.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// log₂ of the linear sub-bucket count per power-of-two range.
pub const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two range (the inverse of the
/// relative error bound).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Power-of-two ranges: one unit-width range plus one per exponent
/// `SUB_BITS..=63`.
const RANGES: usize = 64 - SUB_BITS as usize + 1;
/// Total bucket slots.
pub const SLOTS: usize = RANGES * SUB_BUCKETS;

/// A lock-free log-bucketed histogram of `u64` samples (nanoseconds,
/// by convention).
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    /// Summarized — 2048 bucket counters would drown any containing
    /// struct's debug output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("max", &s.max())
            .field("mean", &s.mean())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram (allocates its fixed bucket array once).
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The slot a value lands in.
    #[inline]
    pub fn index_of(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros();
            let range = (exp - SUB_BITS + 1) as usize;
            let sub = ((v >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
            range * SUB_BUCKETS + sub
        }
    }

    /// The lower bound of a slot — the value quantiles report, so a
    /// quantile never overestimates and underestimates by at most
    /// `value / SUB_BUCKETS`.
    #[inline]
    pub fn lower_bound(slot: usize) -> u64 {
        let range = slot / SUB_BUCKETS;
        let sub = (slot % SUB_BUCKETS) as u64;
        if range == 0 {
            sub
        } else {
            (SUB_BUCKETS as u64 + sub) << (range - 1)
        }
    }

    /// Records one sample. Lock-free: two relaxed `fetch_add`s, one
    /// relaxed `fetch_max`, no allocation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Self::index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copies the counters out into an owned snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// An owned, mergeable copy of a histogram's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistSnapshot {
    /// Adds another snapshot's counts into this one (shard merging —
    /// exact, since buckets are plain sums).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if self.counts.is_empty() {
            self.counts = vec![0; SLOTS];
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        // Wrapping, to match the recorder's atomic `fetch_add`: a sum
        // of u64 nanoseconds only wraps after centuries of recorded
        // time, but when it does, merged shards and a flat histogram
        // must still agree bit-for-bit.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The counters accumulated since `before` (element-wise saturating
    /// difference). The maximum cannot be windowed after the fact, so
    /// the *current* maximum is kept — an overestimate when the true
    /// window maximum predates `before`.
    pub fn since(&self, before: &HistSnapshot) -> HistSnapshot {
        if before.counts.is_empty() {
            return self.clone();
        }
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .zip(before.counts.iter())
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(before.count),
            sum: self.sum.saturating_sub(before.sum),
            max: self.max,
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact running sum of the samples (not bucketed; wraps like the
    /// recorder's atomic).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (exact, from the running sum).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the lower bound of the
    /// first bucket whose cumulative count reaches `ceil(q · count)`.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (slot, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Histogram::lower_bound(slot);
            }
        }
        self.max
    }

    /// Collapses the snapshot into the fixed-size summary used in
    /// reports.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            p50: self.value_at_quantile(0.50),
            p90: self.value_at_quantile(0.90),
            p99: self.value_at_quantile(0.99),
            max: self.max,
            mean: self.mean(),
        }
    }
}

/// Fixed-size quantile summary of one histogram (all values in
/// nanoseconds). `Copy` so it can ride in `ExecReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
    /// Exact arithmetic mean.
    pub mean: u64,
}

impl LatencySummary {
    /// A percentile in microseconds, for table cells.
    pub fn us(ns: u64) -> f64 {
        ns as f64 / 1_000.0
    }
}

/// Shards recording is striped over.
pub const HIST_SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread draws one stripe index for its lifetime, so a shard
    /// has a stable (usually singleton) writer set.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn thread_shard() -> usize {
    THREAD_SLOT.with(|s| *s) % HIST_SHARDS
}

/// A histogram striped over [`HIST_SHARDS`] shards to keep concurrent
/// recording contention-free; merged losslessly at snapshot time.
pub struct ShardedHistogram {
    shards: Vec<Histogram>,
}

impl Default for ShardedHistogram {
    fn default() -> Self {
        ShardedHistogram::new()
    }
}

impl ShardedHistogram {
    /// An empty sharded histogram.
    pub fn new() -> ShardedHistogram {
        ShardedHistogram {
            shards: (0..HIST_SHARDS).map(|_| Histogram::new()).collect(),
        }
    }

    /// Records one sample into the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        self.shards[thread_shard()].record(v);
    }

    /// The per-shard histograms (tests verify the merge invariant
    /// against them).
    pub fn shards(&self) -> &[Histogram] {
        &self.shards
    }

    /// Merges every shard into one snapshot.
    pub fn merged(&self) -> HistSnapshot {
        let mut out = HistSnapshot {
            counts: vec![0; SLOTS],
            ..HistSnapshot::default()
        };
        for s in &self.shards {
            out.merge(&s.snapshot());
        }
        out
    }

    /// Resets every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), SUB_BUCKETS as u64);
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(Histogram::lower_bound(Histogram::index_of(v)), v);
        }
        assert_eq!(s.value_at_quantile(1.0 / SUB_BUCKETS as f64), 0);
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        let mut last = 0usize;
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            let i = Histogram::index_of(v);
            assert!(i >= last, "index monotone at 2^{exp}");
            assert!(i < SLOTS);
            assert!(Histogram::lower_bound(i) <= v);
            last = i;
        }
        assert_eq!(Histogram::index_of(u64::MAX), SLOTS - 1);
    }

    #[test]
    fn relative_error_bounded_by_log_base() {
        for v in [5u64, 31, 32, 33, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let rep = Histogram::lower_bound(Histogram::index_of(v));
            assert!(rep <= v);
            assert!(
                v - rep <= v / SUB_BUCKETS as u64,
                "error {} > {}/{} for {v}",
                v - rep,
                v,
                SUB_BUCKETS
            );
        }
    }

    #[test]
    fn quantiles_and_mean() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.mean(), 500);
        let p50 = s.value_at_quantile(0.5);
        assert!(p50 <= 500 && p50 >= 500 - 500 / SUB_BUCKETS as u64);
        let p99 = s.value_at_quantile(0.99);
        assert!(p99 <= 990 && p99 >= 990 - 990 / SUB_BUCKETS as u64);
    }

    #[test]
    fn since_windows_counts() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(20);
        h.record(20);
        let d = h.snapshot().since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.value_at_quantile(0.5), 20);
    }

    #[test]
    fn sharded_merge_equals_concat() {
        let sh = ShardedHistogram::new();
        let mut reference = Histogram::new();
        for v in [1u64, 50, 50, 999, 1 << 20] {
            sh.record(v);
            reference.record(v);
        }
        // Recording from one thread lands in one shard; merged() must
        // still equal the flat histogram.
        let _ = &mut reference;
        assert_eq!(sh.merged(), reference.snapshot());
    }
}
