//! Time-windowed views over the phase histograms.
//!
//! The cumulative [`crate::ShardedHistogram`]s answer "since startup";
//! a [`WindowRing`] makes them answer "over the last N seconds" without
//! touching the record path at all. The trick is the one the
//! histograms already use for run-relative reports: **windowing by
//! counter subtraction**. The ring never resets a histogram and never
//! adds a probe — it keeps a bounded deque of *boundary snapshots*
//! (the cumulative counters at the moment each window closed), and a
//! window's content is the difference of two consecutive boundaries.
//!
//! Consequences, all load-bearing:
//!
//! * The record path is byte-for-byte the lock-free cumulative path —
//!   two relaxed `fetch_add`s and a `fetch_max`, no epoch check, no
//!   reset race. Zero probes are added anywhere.
//! * **No sample can be lost across a rotation boundary**: boundaries
//!   are snapshots of monotone counters, so closed-window deltas plus
//!   the open tail telescope back to the cumulative histogram
//!   *exactly* (`merged(windows) == cumulative`), no matter how many
//!   threads record concurrently with a rotation. The suite pins this
//!   under a 16-thread storm.
//! * Rotation is driven by *observers* — [`crate::Obs::tick`], any
//!   windowed query, the metrics sampler thread — not by recorders. A
//!   tick that arrives late closes the elapsed window(s) with one
//!   boundary; samples recorded meanwhile attribute to the oldest
//!   still-open window. Window edges are therefore as sharp as the
//!   tick cadence, which is exactly the sampler interval in practice.

use crate::hist::HistSnapshot;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One closed-window boundary: the cumulative per-phase snapshots at
/// the moment window `idx` ended.
#[derive(Clone, Debug)]
struct Boundary {
    /// Index of the window this boundary closed (window `i` spans
    /// `[i*width, (i+1)*width)` on the owning handle's epoch clock).
    idx: u64,
    /// Cumulative snapshot per phase, indexed like `Obs`'s phase array.
    phases: Vec<HistSnapshot>,
}

/// A rotating ring of windowed boundary snapshots over a set of
/// cumulative histograms (the per-[`crate::Phase`] array).
pub struct WindowRing {
    width_ns: u64,
    count: usize,
    state: Mutex<VecDeque<Boundary>>,
}

impl WindowRing {
    /// A ring of `count` windows of `width` each (both floored to
    /// sane minimums).
    pub fn new(width: Duration, count: usize) -> WindowRing {
        WindowRing {
            width_ns: (width.as_nanos() as u64).max(1),
            count: count.max(1),
            state: Mutex::new(VecDeque::new()),
        }
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Windows retained (the horizon is `count * width`).
    pub fn count(&self) -> usize {
        self.count
    }

    /// The window index `now_ns` falls in.
    fn idx_of(&self, now_ns: u64) -> u64 {
        now_ns / self.width_ns
    }

    /// Closes every window that ended before `now_ns`, snapshotting the
    /// cumulative histograms via `snap` (called at most once). Old
    /// boundaries beyond the ring size are dropped.
    pub fn tick(&self, now_ns: u64, snap: impl FnOnce() -> Vec<HistSnapshot>) {
        let idx = self.idx_of(now_ns);
        if idx == 0 {
            return; // still inside the first window
        }
        let mut st = self.state.lock().expect("window ring poisoned");
        let last_closed = st.back().map(|b| b.idx);
        if last_closed.is_some_and(|l| l + 1 >= idx) {
            return; // boundary for idx-1 already taken
        }
        st.push_back(Boundary {
            idx: idx - 1,
            phases: snap(),
        });
        while st.len() > self.count {
            st.pop_front();
        }
    }

    /// The cumulative baseline for "the last `count` windows": the
    /// newest boundary at least `count` windows old, else the oldest
    /// retained one, else `None` (window == whole run so far).
    pub fn baseline(&self, phase: usize, now_ns: u64) -> Option<HistSnapshot> {
        let idx = self.idx_of(now_ns);
        let st = self.state.lock().expect("window ring poisoned");
        let floor = idx.saturating_sub(self.count as u64);
        st.iter()
            .rev()
            .find(|b| b.idx < floor)
            .or_else(|| st.front())
            .and_then(|b| b.phases.get(phase).cloned())
    }

    /// Every retained window of one phase as standalone snapshots,
    /// oldest first: the delta of each consecutive boundary pair, then
    /// the open tail (`current` minus the newest boundary). With no
    /// boundary evicted, the deltas sum back to `current` exactly —
    /// the rotation-loses-nothing invariant.
    pub fn deltas(&self, phase: usize, current: &HistSnapshot) -> Vec<HistSnapshot> {
        let st = self.state.lock().expect("window ring poisoned");
        let mut out = Vec::with_capacity(st.len() + 1);
        let mut prev: Option<&Boundary> = None;
        for b in st.iter() {
            let Some(snap) = b.phases.get(phase) else {
                continue;
            };
            match prev.and_then(|p| p.phases.get(phase)) {
                Some(p) => out.push(snap.since(p)),
                None => out.push(snap.clone()),
            }
            prev = Some(b);
        }
        match prev.and_then(|p| p.phases.get(phase)) {
            Some(p) => out.push(current.since(p)),
            None => out.push(current.clone()),
        }
        out
    }

    /// Closed boundaries currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().expect("window ring poisoned").len()
    }

    /// `true` before the first rotation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every boundary (a fresh measurement window follows an
    /// `Obs::reset`; stale baselines would subtract counters that no
    /// longer exist).
    pub fn reset(&self) {
        self.state.lock().expect("window ring poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn snap_of(h: &Histogram) -> Vec<HistSnapshot> {
        vec![h.snapshot()]
    }

    #[test]
    fn windows_telescope_to_cumulative() {
        let h = Histogram::new();
        let ring = WindowRing::new(Duration::from_nanos(100), 16);
        h.record(10);
        ring.tick(150, || snap_of(&h)); // closes window 0
        h.record(20);
        h.record(30);
        ring.tick(250, || snap_of(&h)); // closes window 1
        h.record(40);
        let cur = h.snapshot();
        let windows = ring.deltas(0, &cur);
        assert_eq!(windows.len(), 3, "two closed + open tail");
        assert_eq!(windows[0].count(), 1);
        assert_eq!(windows[1].count(), 2);
        assert_eq!(windows[2].count(), 1);
        let mut merged = HistSnapshot::default();
        for w in &windows {
            merged.merge(w);
        }
        assert_eq!(merged.count(), cur.count());
        assert_eq!(merged.mean(), cur.mean());
    }

    #[test]
    fn tick_is_idempotent_within_a_window() {
        let h = Histogram::new();
        let ring = WindowRing::new(Duration::from_nanos(100), 4);
        ring.tick(50, || snap_of(&h));
        assert!(ring.is_empty(), "first window still open");
        ring.tick(120, || snap_of(&h));
        ring.tick(130, || snap_of(&h));
        ring.tick(199, || snap_of(&h));
        assert_eq!(ring.len(), 1, "one boundary per closed window");
    }

    #[test]
    fn ring_evicts_beyond_count() {
        let h = Histogram::new();
        let ring = WindowRing::new(Duration::from_nanos(10), 2);
        for t in 1..10u64 {
            ring.tick(t * 10 + 5, || snap_of(&h));
        }
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn baseline_bounds_the_horizon() {
        let h = Histogram::new();
        let ring = WindowRing::new(Duration::from_nanos(10), 2);
        h.record(1);
        ring.tick(15, || snap_of(&h)); // boundary idx 0, count=1
        h.record(2);
        ring.tick(25, || snap_of(&h)); // boundary idx 1, count=2
        h.record(3);
        ring.tick(35, || snap_of(&h)); // boundary idx 2, count=3 (idx 0 evicted)
                                       // At now=38 (window 3), the 2-window horizon starts at window 1:
                                       // the baseline is the boundary that closed window 0 — evicted, so
                                       // the oldest retained (idx 1) stands in.
        let base = ring.baseline(0, 38).expect("boundaries retained");
        assert_eq!(base.count(), 2);
        let windowed = h.snapshot().since(&base);
        assert_eq!(windowed.count(), 1, "only the sample after the baseline");
    }

    #[test]
    fn reset_clears_boundaries() {
        let h = Histogram::new();
        let ring = WindowRing::new(Duration::from_nanos(10), 4);
        ring.tick(15, || snap_of(&h));
        assert!(!ring.is_empty());
        ring.reset();
        assert!(ring.is_empty());
        assert!(ring.baseline(0, 100).is_none());
    }
}
