//! # finecc-obs — low-overhead observability for the runtime
//!
//! The live telemetry plane behind one [`Obs`] handle:
//!
//! * [`hist`] — lock-free log-bucketed latency **histograms** for the
//!   timed [`Phase`]s (txn end-to-end, commit sub-phases, lock wait,
//!   group-commit ack, checkpoint), mergeable across thread shards,
//!   quantile error bounded by the log base (1/32).
//! * [`window`] — a rotating ring of **time-windowed** views over
//!   those histograms (boundary-snapshot subtraction; the record path
//!   stays untouched), so quantiles answer "over the last N seconds"
//!   as well as "since startup".
//! * [`contention`] — a striped, OID-keyed **contention registry**
//!   attributing lock blocks, ww conflicts, SSI aborts, and read
//!   retries to the causing objects/fields, with an **EWMA-decayed**
//!   score per object so [`Obs::hottest`] means "hottest *now*";
//!   feeds the heat-map tables and (per the ROADMAP) a future
//!   adaptive per-object meta-scheme.
//! * [`registry`] — the unified **metrics registry**: every
//!   subsystem's counters under stable dotted names with labels,
//!   pulled as a snapshot and rendered as Prometheus text exposition
//!   or JSON, with an optional background sampler thread
//!   (`FINECC_METRICS=out.jsonl`) appending time-series rows.
//! * [`ring`] — bounded per-thread SPSC **event rings** with a Chrome
//!   `trace_event` JSON exporter (`FINECC_TRACE=out.json`), sampled by
//!   transaction id.
//!
//! Everything hangs off an [`ObsConfig`]; a **disabled** [`Obs`] holds
//! no state at all (`inner: None`), so every probe is one branch on an
//! `Option` and — because timing probes get their `Instant` through
//! [`Obs::clock`], which returns `None` when disabled — the disabled
//! path takes no clock readings, allocates nothing, and touches no
//! shared cache line.

pub mod contention;
pub mod hist;
pub mod registry;
pub mod ring;
pub mod window;

pub use contention::{ContentionKind, ContentionRegistry, HotObject, ObjKey, KIND_COUNT};
pub use hist::{HistSnapshot, Histogram, LatencySummary, ShardedHistogram};
pub use registry::{
    sampler_from_env, Collector, MetricKind, MetricsRegistry, MetricsSampler, Sample,
};
pub use ring::{Event, EventKind, TraceCollector};
pub use window::WindowRing;

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The latency distributions the runtime records, one histogram each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Transaction end-to-end: first `begin` to final commit/abort,
    /// across retries.
    TxnLatency = 0,
    /// The whole commit call.
    CommitTotal = 1,
    /// Commit: timestamp draw + validation (SSI's dangerous-structure
    /// check included — it gates the draw's visibility).
    CommitTsDraw = 2,
    /// Commit: WAL append + group-commit ack (durable-before-visible).
    CommitWalAck = 3,
    /// Commit: version-chain `commit_ts` flips.
    CommitFlip = 4,
    /// Commit: watermark publish + in-order wait.
    CommitPublish = 5,
    /// Lock-manager block time (granted waits only).
    LockWait = 6,
    /// WAL group-commit ack wait inside `append`.
    GroupCommitAck = 7,
    /// Checkpoint write end-to-end (quiesce + encode + fsync + rename).
    Checkpoint = 8,
}

/// Number of [`Phase`]s.
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// Every phase, in index order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::TxnLatency,
        Phase::CommitTotal,
        Phase::CommitTsDraw,
        Phase::CommitWalAck,
        Phase::CommitFlip,
        Phase::CommitPublish,
        Phase::LockWait,
        Phase::GroupCommitAck,
        Phase::Checkpoint,
    ];

    /// Stable snake_case name for tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TxnLatency => "txn",
            Phase::CommitTotal => "commit",
            Phase::CommitTsDraw => "commit_ts_draw",
            Phase::CommitWalAck => "commit_wal_ack",
            Phase::CommitFlip => "commit_flip",
            Phase::CommitPublish => "commit_publish",
            Phase::LockWait => "lock_wait",
            Phase::GroupCommitAck => "group_commit_ack",
            Phase::Checkpoint => "checkpoint",
        }
    }
}

/// What to record. [`ObsConfig::disabled`] is the runtime default —
/// schemes built without explicit observability pay only an
/// `Option::None` branch per probe site.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Record the [`Phase`] latency histograms.
    pub histograms: bool,
    /// Record per-object contention attribution.
    pub contention: bool,
    /// Export a Chrome trace here on [`Obs::export_trace`].
    pub trace_path: Option<PathBuf>,
    /// Trace one in `trace_sample` transactions.
    pub trace_sample: u64,
    /// Per-thread trace ring capacity (events).
    pub ring_capacity: usize,
    /// Width of one histogram window (the windowed-quantile horizon is
    /// `window_width * window_count`).
    pub window_width: Duration,
    /// Windows retained in the rotating ring.
    pub window_count: usize,
    /// Half-life of the decayed contention score: an object's score
    /// halves every `half_life` once events stop.
    pub half_life: Duration,
}

/// Default window width (1 s) — `FINECC_OBS_WINDOW_MS` overrides.
pub const DEFAULT_WINDOW_WIDTH: Duration = Duration::from_millis(1000);
/// Default window count (8 s horizon) — `FINECC_OBS_WINDOWS` overrides.
pub const DEFAULT_WINDOW_COUNT: usize = 8;

impl ObsConfig {
    /// Record nothing; every probe is a single branch.
    pub fn disabled() -> ObsConfig {
        ObsConfig {
            histograms: false,
            contention: false,
            trace_path: None,
            trace_sample: 1,
            ring_capacity: 4096,
            window_width: DEFAULT_WINDOW_WIDTH,
            window_count: DEFAULT_WINDOW_COUNT,
            half_life: contention::DEFAULT_HALF_LIFE,
        }
    }

    /// Histograms + contention on, tracing off.
    pub fn enabled() -> ObsConfig {
        ObsConfig {
            histograms: true,
            contention: true,
            ..ObsConfig::disabled()
        }
    }

    /// [`ObsConfig::enabled`] plus tracing into `path`.
    pub fn with_trace(path: impl Into<PathBuf>) -> ObsConfig {
        ObsConfig {
            trace_path: Some(path.into()),
            ..ObsConfig::enabled()
        }
    }

    /// The bench-facing configuration: [`ObsConfig::enabled`], tracing
    /// into `$FINECC_TRACE` when set (sampling one in
    /// `$FINECC_TRACE_SAMPLE`, default every transaction), window and
    /// half-life knobs from `FINECC_OBS_WINDOW_MS` / `FINECC_OBS_WINDOWS`
    /// / `FINECC_OBS_HALFLIFE_MS`, everything off when `FINECC_OBS=off`.
    pub fn from_env() -> ObsConfig {
        if matches!(
            std::env::var("FINECC_OBS").as_deref(),
            Ok("off") | Ok("0") | Ok("false")
        ) {
            return ObsConfig::disabled();
        }
        fn env_u64(key: &str) -> Option<u64> {
            std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok())
        }
        let mut cfg = ObsConfig::enabled();
        cfg.trace_path = std::env::var_os("FINECC_TRACE").map(PathBuf::from);
        if let Some(s) = env_u64("FINECC_TRACE_SAMPLE") {
            cfg.trace_sample = s.max(1);
        }
        if let Some(ms) = env_u64("FINECC_OBS_WINDOW_MS") {
            cfg.window_width = Duration::from_millis(ms.max(1));
        }
        if let Some(n) = env_u64("FINECC_OBS_WINDOWS") {
            cfg.window_count = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("FINECC_OBS_HALFLIFE_MS") {
            cfg.half_life = Duration::from_millis(ms.max(1));
        }
        cfg
    }

    /// `true` when any instrument records.
    pub fn is_enabled(&self) -> bool {
        self.histograms || self.contention || self.trace_path.is_some()
    }
}

struct Inner {
    config: ObsConfig,
    epoch: Instant,
    phases: [ShardedHistogram; PHASE_COUNT],
    windows: WindowRing,
    contention: ContentionRegistry,
    trace: Option<TraceCollector>,
}

impl Inner {
    /// Rotates the window ring to `now_ns`, snapshotting the cumulative
    /// phase histograms if a window boundary has passed.
    fn tick_at(&self, now_ns: u64) {
        self.windows
            .tick(now_ns, || self.phases.iter().map(|p| p.merged()).collect());
    }

    /// The windowed snapshot of one phase — everything recorded over
    /// the ring's horizon (the whole run until the first rotation).
    fn windowed_snapshot(&self, idx: usize, now_ns: u64) -> HistSnapshot {
        let current = self.phases[idx].merged();
        match self.windows.baseline(idx, now_ns) {
            Some(base) => current.since(&base),
            None => current,
        }
    }
}

/// The observability handle shared by a scheme and its components
/// (wrapped in `Arc` by the runtime's `Env`). Disabled handles carry
/// no state.
pub struct Obs {
    inner: Option<Box<Inner>>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::disabled()
    }
}

impl Obs {
    /// A handle that records nothing.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// A handle recording per `config` (a non-recording config yields
    /// the disabled handle).
    pub fn new(config: ObsConfig) -> Obs {
        if !config.is_enabled() {
            return Obs::disabled();
        }
        let trace = config
            .trace_path
            .as_ref()
            .map(|_| TraceCollector::new(config.ring_capacity, config.trace_sample));
        Obs {
            inner: Some(Box::new(Inner {
                epoch: Instant::now(),
                phases: std::array::from_fn(|_| ShardedHistogram::new()),
                windows: WindowRing::new(config.window_width, config.window_count),
                contention: ContentionRegistry::with_half_life(config.half_life),
                trace,
                config,
            })),
        }
    }

    /// `true` when any instrument records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A timestamp for a later [`Obs::record_since`] — `None` (no
    /// clock read at all) unless histograms are recording.
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        match &self.inner {
            Some(i) if i.config.histograms => Some(Instant::now()),
            _ => None,
        }
    }

    /// Records the elapsed time since a [`Obs::clock`] timestamp into
    /// `phase`; a `None` start is a no-op.
    #[inline]
    pub fn record_since(&self, phase: Phase, start: Option<Instant>) {
        if let Some(t0) = start {
            self.record_phase_ns(phase, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Records a pre-measured duration into `phase`.
    #[inline]
    pub fn record_phase_ns(&self, phase: Phase, ns: u64) {
        if let Some(i) = &self.inner {
            if i.config.histograms {
                i.phases[phase as usize].record(ns);
            }
        }
    }

    /// A multi-lap timer for the commit path's consecutive segments.
    #[inline]
    pub fn phase_timer(&self) -> PhaseTimer<'_> {
        let now = self.clock();
        PhaseTimer {
            obs: self,
            start: now,
            last: now,
        }
    }

    /// Attributes one contention event to `key`.
    #[inline]
    pub fn contend(&self, key: ObjKey, kind: ContentionKind) {
        if let Some(i) = &self.inner {
            if i.config.contention {
                i.contention.record(key, kind);
            }
        }
    }

    /// `true` when transaction `txn` should emit trace events.
    #[inline]
    pub fn trace_sampled(&self, txn: u64) -> bool {
        match &self.inner {
            Some(i) => i.trace.as_ref().is_some_and(|t| t.sampled(txn)),
            None => false,
        }
    }

    /// Nanoseconds since this handle's epoch (0 when disabled — only
    /// meaningful for event timestamps, which a disabled handle never
    /// emits).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Emits a trace event (no-op unless tracing; callers gate the
    /// argument work with [`Obs::trace_sampled`]).
    #[inline]
    pub fn emit(&self, kind: EventKind, t_ns: u64, dur_ns: u64, txn: u64, oid: u64) {
        if let Some(i) = &self.inner {
            if let Some(trace) = &i.trace {
                trace.emit(Event {
                    kind,
                    t_ns,
                    dur_ns,
                    txn,
                    oid,
                });
            }
        }
    }

    /// Merged quantile summary for one phase (cumulative since
    /// startup/reset).
    pub fn phase_summary(&self, phase: Phase) -> LatencySummary {
        match &self.inner {
            Some(i) => i.phases[phase as usize].merged().summary(),
            None => LatencySummary::default(),
        }
    }

    /// Rotates the window ring if a window boundary has passed since
    /// the last observation. Recording never rotates — observers do:
    /// the metrics sampler thread, windowed queries, or an explicit
    /// periodic call. A no-op on a disabled handle.
    pub fn tick(&self) {
        if let Some(i) = &self.inner {
            i.tick_at(i.epoch.elapsed().as_nanos() as u64);
        }
    }

    /// Quantile summary for one phase over the rotating window horizon
    /// (`window_width * window_count`, the whole run until the first
    /// rotation). Ticks the ring first, so calling this periodically
    /// is enough to keep windows rotating.
    pub fn windowed_phase_summary(&self, phase: Phase) -> LatencySummary {
        match &self.inner {
            Some(i) => {
                let now_ns = i.epoch.elapsed().as_nanos() as u64;
                i.tick_at(now_ns);
                i.windowed_snapshot(phase as usize, now_ns).summary()
            }
            None => LatencySummary::default(),
        }
    }

    /// Every retained window of one phase as standalone snapshots,
    /// oldest first, closed windows then the open tail. Merging them
    /// reproduces the cumulative histogram exactly (no sample is lost
    /// across a rotation boundary).
    pub fn window_deltas(&self, phase: Phase) -> Vec<HistSnapshot> {
        match &self.inner {
            Some(i) => {
                i.tick_at(i.epoch.elapsed().as_nanos() as u64);
                i.windows
                    .deltas(phase as usize, &i.phases[phase as usize].merged())
            }
            None => Vec::new(),
        }
    }

    /// The `k` hottest objects by *recency-weighted* contention: EWMA
    /// scores decayed to now, so formerly-hot objects fall out of the
    /// top-K once the workload moves on (half-life set by
    /// [`ObsConfig::half_life`]).
    pub fn hottest(&self, k: usize) -> Vec<HotObject> {
        match &self.inner {
            Some(i) => i.contention.top_k_decayed(k, i.contention.now_ns()),
            None => Vec::new(),
        }
    }

    /// The `k` hottest objects by cumulative event totals since
    /// startup/reset (time-independent; what end-of-run tables print).
    pub fn hottest_cumulative(&self, k: usize) -> Vec<HotObject> {
        match &self.inner {
            Some(i) => i.contention.top_k(k),
            None => Vec::new(),
        }
    }

    /// Per-class contention totals summed over the registry's stripes.
    pub fn contention_totals(&self) -> [u64; KIND_COUNT] {
        match &self.inner {
            Some(i) => i.contention.totals(),
            None => [0; KIND_COUNT],
        }
    }

    /// Copies every phase's counters and the contention totals, for
    /// windowed reporting via [`Obs::report_since`].
    pub fn snapshot(&self) -> ObsSnapshot {
        match &self.inner {
            Some(i) => ObsSnapshot {
                phases: i.phases.iter().map(|p| p.merged()).collect(),
                contention: i.contention.totals(),
            },
            None => ObsSnapshot::default(),
        }
    }

    /// The fixed-size report of everything recorded since `before`:
    /// per-phase quantiles (windowed by counter subtraction), the
    /// rotating-window quantiles as of now, plus the current hottest
    /// objects ranked by decayed score (the registry accumulates per
    /// scheme instance — see `ContentionRegistry`).
    pub fn report_since(&self, before: &ObsSnapshot) -> ObsReport {
        let Some(i) = &self.inner else {
            return ObsReport::default();
        };
        let now_ns = i.epoch.elapsed().as_nanos() as u64;
        i.tick_at(now_ns);
        let mut report = ObsReport {
            enabled: true,
            ..ObsReport::default()
        };
        for (idx, phase) in i.phases.iter().enumerate() {
            let now = phase.merged();
            report.windowed[idx] = match i.windows.baseline(idx, now_ns) {
                Some(base) => now.since(&base).summary(),
                None => now.summary(),
            };
            let windowed = match before.phases.get(idx) {
                Some(b) => now.since(b),
                None => now,
            };
            report.phases[idx] = windowed.summary();
        }
        let totals = i.contention.totals();
        for (idx, t) in totals.iter().enumerate() {
            report.contention[idx] = t - before.contention[idx];
        }
        for (slot, hot) in report
            .hot
            .iter_mut()
            .zip(i.contention.top_k_decayed(TOP_K, i.contention.now_ns()))
        {
            *slot = Some(hot);
        }
        report
    }

    /// Exports the trace to the configured `FINECC_TRACE` path, if
    /// tracing; returns the path and event count written.
    pub fn export_trace(&self) -> std::io::Result<Option<(PathBuf, usize)>> {
        let Some(i) = &self.inner else {
            return Ok(None);
        };
        let (Some(trace), Some(path)) = (&i.trace, &i.config.trace_path) else {
            return Ok(None);
        };
        let n = trace.export_chrome_trace(path)?;
        Ok(Some((path.clone(), n)))
    }

    /// Resets histograms, the window ring, and the contention registry
    /// (not the trace).
    pub fn reset(&self) {
        if let Some(i) = &self.inner {
            for p in &i.phases {
                p.reset();
            }
            i.windows.reset();
            i.contention.reset();
        }
    }

    /// Emits this handle's live metrics into a registry collector:
    /// per-phase cumulative and windowed quantiles (labelled
    /// `phase="…"`), contention totals (labelled `kind="…"`), and the
    /// decayed scores of the hottest objects. Nothing on a disabled
    /// handle.
    pub fn collect_metrics(&self, c: &mut Collector) {
        let Some(i) = &self.inner else {
            return;
        };
        let now_ns = i.epoch.elapsed().as_nanos() as u64;
        i.tick_at(now_ns);
        for phase in Phase::ALL {
            let idx = phase as usize;
            let cum = i.phases[idx].merged().summary();
            if cum.count == 0 {
                continue; // unrecorded phases would only be noise
            }
            let labels = [("phase", phase.name())];
            c.counter_with("finecc.obs.phase.count", &labels, cum.count);
            c.gauge_with("finecc.obs.phase.p50_ns", &labels, cum.p50 as f64);
            c.gauge_with("finecc.obs.phase.p99_ns", &labels, cum.p99 as f64);
            c.gauge_with("finecc.obs.phase.max_ns", &labels, cum.max as f64);
            c.gauge_with("finecc.obs.phase.mean_ns", &labels, cum.mean as f64);
            let win = i.windowed_snapshot(idx, now_ns).summary();
            c.gauge_with("finecc.obs.phase.window_count", &labels, win.count as f64);
            c.gauge_with("finecc.obs.phase.window_p50_ns", &labels, win.p50 as f64);
            c.gauge_with("finecc.obs.phase.window_p99_ns", &labels, win.p99 as f64);
        }
        for (kind, total) in ContentionKind::ALL.iter().zip(i.contention.totals()) {
            c.counter_with("finecc.obs.contention", &[("kind", kind.name())], total);
        }
        for hot in i.contention.top_k_decayed(4, i.contention.now_ns()) {
            c.gauge_with(
                "finecc.obs.hot_score",
                &[("object", &hot.key.to_string())],
                hot.score,
            );
        }
    }
}

/// Times consecutive segments of one code path: each [`PhaseTimer::lap`]
/// records the span since the previous lap, [`PhaseTimer::finish`]
/// records the total. All no-ops (no clock reads) on a disabled handle.
pub struct PhaseTimer<'a> {
    obs: &'a Obs,
    start: Option<Instant>,
    last: Option<Instant>,
}

impl PhaseTimer<'_> {
    /// Records the segment since the previous lap (or construction)
    /// into `phase`.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if let Some(prev) = self.last {
            let now = Instant::now();
            self.obs
                .record_phase_ns(phase, (now - prev).as_nanos() as u64);
            self.last = Some(now);
        }
    }

    /// Nanoseconds since construction (`None` on a disabled handle) —
    /// for callers that also want the total as a trace span.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|t0| t0.elapsed().as_nanos() as u64)
    }

    /// Records the total since construction into `phase`.
    #[inline]
    pub fn finish(self, phase: Phase) {
        if let Some(t0) = self.start {
            self.obs
                .record_phase_ns(phase, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Counters copied out by [`Obs::snapshot`], subtracted by
/// [`Obs::report_since`].
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    phases: Vec<HistSnapshot>,
    contention: [u64; KIND_COUNT],
}

/// Top-K rows carried in reports.
pub const TOP_K: usize = 8;

/// The fixed-size (`Copy`) observability report embedded in the sim's
/// `ExecReport`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ObsReport {
    /// `false` when the scheme ran with observability disabled (all
    /// other fields are zero then).
    pub enabled: bool,
    /// Quantile summaries indexed by [`Phase`] (the report window:
    /// everything since the `before` snapshot).
    pub phases: [LatencySummary; PHASE_COUNT],
    /// Rotating-window quantile summaries indexed by [`Phase`]: the
    /// last `window_width * window_count` of the run as of the report
    /// instant.
    pub windowed: [LatencySummary; PHASE_COUNT],
    /// The hottest objects by decayed contention score, hottest first.
    pub hot: [Option<HotObject>; TOP_K],
    /// Contention totals indexed by [`ContentionKind`].
    pub contention: [u64; KIND_COUNT],
}

impl ObsReport {
    /// Summary for one phase.
    pub fn phase(&self, phase: Phase) -> LatencySummary {
        self.phases[phase as usize]
    }

    /// Rotating-window summary for one phase.
    pub fn windowed_phase(&self, phase: Phase) -> LatencySummary {
        self.windowed[phase as usize]
    }

    /// The populated hottest-object rows.
    pub fn hottest(&self) -> impl Iterator<Item = &HotObject> {
        self.hot.iter().flatten()
    }

    /// Windowed total for one contention class.
    pub fn contention_total(&self, kind: ContentionKind) -> u64 {
        self.contention[kind as usize]
    }

    /// Emits this frozen report's metrics into a registry collector —
    /// the per-cell shape experiment binaries attach under their cell
    /// labels after each run.
    pub fn collect_metrics(&self, c: &mut Collector) {
        if !self.enabled {
            return;
        }
        for phase in Phase::ALL {
            let s = self.phase(phase);
            if s.count == 0 {
                continue;
            }
            let labels = [("phase", phase.name())];
            c.counter_with("finecc.obs.phase.count", &labels, s.count);
            c.gauge_with("finecc.obs.phase.p50_ns", &labels, s.p50 as f64);
            c.gauge_with("finecc.obs.phase.p99_ns", &labels, s.p99 as f64);
            c.gauge_with("finecc.obs.phase.max_ns", &labels, s.max as f64);
            c.gauge_with("finecc.obs.phase.mean_ns", &labels, s.mean as f64);
            let w = self.windowed_phase(phase);
            c.gauge_with("finecc.obs.phase.window_count", &labels, w.count as f64);
            c.gauge_with("finecc.obs.phase.window_p50_ns", &labels, w.p50 as f64);
            c.gauge_with("finecc.obs.phase.window_p99_ns", &labels, w.p99 as f64);
        }
        for (kind, total) in ContentionKind::ALL.iter().zip(self.contention) {
            c.counter_with("finecc.obs.contention", &[("kind", kind.name())], total);
        }
        for hot in self.hottest() {
            c.gauge_with(
                "finecc.obs.hot_score",
                &[("object", &hot.key.to_string())],
                hot.score,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_cheaply() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.clock().is_none(), "no clock read when disabled");
        obs.record_since(Phase::TxnLatency, obs.clock());
        obs.record_phase_ns(Phase::LockWait, 123);
        obs.contend(ObjKey::Instance(1), ContentionKind::LockBlock);
        assert!(!obs.trace_sampled(0));
        assert_eq!(obs.phase_summary(Phase::TxnLatency).count, 0);
        assert_eq!(obs.contention_totals(), [0; KIND_COUNT]);
        let report = obs.report_since(&obs.snapshot());
        assert!(!report.enabled);
        assert_eq!(report.hottest().count(), 0);
    }

    #[test]
    fn enabled_records_phases_and_contention() {
        let obs = Obs::new(ObsConfig::enabled());
        let before = obs.snapshot();
        let t0 = obs.clock();
        assert!(t0.is_some());
        obs.record_since(Phase::TxnLatency, t0);
        obs.record_phase_ns(Phase::LockWait, 1_000);
        obs.contend(ObjKey::Instance(9), ContentionKind::WwConflict);
        let report = obs.report_since(&before);
        assert!(report.enabled);
        assert_eq!(report.phase(Phase::TxnLatency).count, 1);
        assert_eq!(report.phase(Phase::LockWait).count, 1);
        assert_eq!(report.contention_total(ContentionKind::WwConflict), 1);
        assert_eq!(report.hottest().count(), 1);
    }

    #[test]
    fn report_since_windows_phase_counts() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.record_phase_ns(Phase::CommitTotal, 10);
        let mid = obs.snapshot();
        obs.record_phase_ns(Phase::CommitTotal, 20);
        obs.record_phase_ns(Phase::CommitTotal, 30);
        let report = obs.report_since(&mid);
        assert_eq!(report.phase(Phase::CommitTotal).count, 2);
    }

    #[test]
    fn phase_timer_laps_segments() {
        let obs = Obs::new(ObsConfig::enabled());
        let mut t = obs.phase_timer();
        t.lap(Phase::CommitTsDraw);
        t.lap(Phase::CommitFlip);
        t.finish(Phase::CommitTotal);
        for p in [Phase::CommitTsDraw, Phase::CommitFlip, Phase::CommitTotal] {
            assert_eq!(obs.phase_summary(p).count, 1, "{}", p.name());
        }
        // Total covers the laps.
        assert!(
            obs.phase_summary(Phase::CommitTotal).max >= obs.phase_summary(Phase::CommitTsDraw).max
        );
    }

    #[test]
    fn trace_roundtrip_via_config() {
        let path = std::env::temp_dir().join(format!("finecc-obs-lib-{}.json", std::process::id()));
        let obs = Obs::new(ObsConfig::with_trace(&path));
        assert!(obs.trace_sampled(0) && obs.trace_sampled(7));
        obs.emit(EventKind::Begin, obs.now_ns(), 0, 7, 0);
        obs.emit(EventKind::Commit, obs.now_ns(), 42, 7, 3);
        let (written, n) = obs.export_trace().unwrap().expect("trace configured");
        assert_eq!(written, path);
        assert_eq!(n, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_recording_config_collapses_to_disabled() {
        let obs = Obs::new(ObsConfig::disabled());
        assert!(!obs.is_enabled());
        assert!(ObsConfig::enabled().is_enabled());
        assert!(!ObsConfig::disabled().is_enabled());
    }
}
