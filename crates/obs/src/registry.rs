//! The unified metrics registry: every subsystem's counters and gauges
//! under stable dotted names, pulled on demand and rendered for
//! machines.
//!
//! A [`MetricsRegistry`] holds *sources* — closures registered with a
//! fixed label set (`scheme="mvcc"`, `contention="high"`, …) that fill
//! a [`Collector`] with [`Sample`]s when a snapshot is pulled. Sources
//! come in two flavors and both are first-class:
//!
//! * **live** — a closure over an `Arc` (the `Obs` handle, the `Wal`,
//!   the mvcc heap) that re-reads the counters on every pull; this is
//!   what the background sampler thread samples into a JSONL time
//!   series while a run is in flight.
//! * **frozen** — a closure over owned values (an `ExecReport`) whose
//!   samples never change; this is how the experiment binaries attach
//!   one labeled row per finished cell to the end-of-run snapshot.
//!
//! Metric names are dotted (`finecc.mvcc.commits`); the Prometheus
//! text renderer maps dots to underscores (`finecc_mvcc_commits`) as
//! that format requires, the JSON renderer keeps them. Collection and
//! rendering sit entirely off the measured paths — pulling a snapshot
//! costs the sources' snapshot reads, recording costs nothing new.
//!
//! The optional background sampler ([`MetricsRegistry::start_sampler`],
//! or [`sampler_from_env`] reading `FINECC_METRICS=out.jsonl` and
//! `FINECC_METRICS_INTERVAL_MS`) appends one JSON row per interval, so
//! a run leaves a time series behind, not just a final tally.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How a metric behaves over time, for the Prometheus `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone non-decreasing (event counts, bytes written).
    Counter,
    /// A level that can move both ways (queue depth, a quantile).
    Gauge,
}

impl MetricKind {
    /// Prometheus type keyword.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One collected metric value.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Stable dotted name (`finecc.wal.log_bytes`).
    pub name: String,
    /// Label pairs: the source's registration labels plus any the
    /// source added per-sample (e.g. `phase="commit"`).
    pub labels: Vec<(String, String)>,
    /// The value (counters are exact u64 counts widened to f64).
    pub value: f64,
    /// Counter or gauge.
    pub kind: MetricKind,
}

/// The sink a source fills during collection. Carries the source's
/// registration labels so every emitted sample is labeled consistently.
pub struct Collector {
    labels: Vec<(String, String)>,
    samples: Vec<Sample>,
}

impl Collector {
    fn new(labels: Vec<(String, String)>) -> Collector {
        Collector {
            labels,
            samples: Vec::new(),
        }
    }

    fn push(&mut self, name: &str, extra: &[(&str, &str)], value: f64, kind: MetricKind) {
        let mut labels = self.labels.clone();
        labels.extend(
            extra
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string())),
        );
        self.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
            kind,
        });
    }

    /// Emits a counter sample.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.push(name, &[], value as f64, MetricKind::Counter);
    }

    /// Emits a counter sample with extra per-sample labels.
    pub fn counter_with(&mut self, name: &str, extra: &[(&str, &str)], value: u64) {
        self.push(name, extra, value as f64, MetricKind::Counter);
    }

    /// Emits a gauge sample.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.push(name, &[], value, MetricKind::Gauge);
    }

    /// Emits a gauge sample with extra per-sample labels.
    pub fn gauge_with(&mut self, name: &str, extra: &[(&str, &str)], value: f64) {
        self.push(name, extra, value, MetricKind::Gauge);
    }
}

type SourceFn = Box<dyn Fn(&mut Collector) + Send + Sync>;

struct Source {
    labels: Vec<(String, String)>,
    collect: SourceFn,
}

/// The pull-based registry. Cheap to share (`Arc`); sources are
/// appended under a mutex that is never touched by recording paths.
#[derive(Default)]
pub struct MetricsRegistry {
    sources: Mutex<Vec<Source>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a source under fixed labels. The closure is invoked on
    /// every [`MetricsRegistry::snapshot`].
    pub fn register_fn(
        &self,
        labels: &[(&str, &str)],
        collect: impl Fn(&mut Collector) + Send + Sync + 'static,
    ) {
        self.sources
            .lock()
            .expect("metrics registry poisoned")
            .push(Source {
                labels: labels
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                    .collect(),
                collect: Box::new(collect),
            });
    }

    /// Registered sources.
    pub fn source_count(&self) -> usize {
        self.sources
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    /// Pulls every source, returning the samples sorted by
    /// `(name, labels)` so renders are deterministic.
    pub fn snapshot(&self) -> Vec<Sample> {
        let sources = self.sources.lock().expect("metrics registry poisoned");
        let mut out = Vec::new();
        for s in sources.iter() {
            let mut c = Collector::new(s.labels.clone());
            (s.collect)(&mut c);
            out.append(&mut c.samples);
        }
        drop(sources);
        out.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (one `# TYPE` line per metric name, dots mapped to underscores).
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.snapshot())
    }

    /// Renders the snapshot as a JSON array of
    /// `{"name", "labels", "kind", "value"}` objects (dotted names
    /// kept).
    pub fn render_json(&self) -> String {
        let mut out = String::from("[\n");
        let samples = self.snapshot();
        for (i, s) in samples.iter().enumerate() {
            out.push_str("  ");
            render_sample_json(&mut out, s);
            out.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
        }
        out.push_str("]\n");
        out
    }

    /// One JSONL time-series row: `{"t_ms": …, "samples": [...]}`.
    pub fn render_jsonl_row(&self, t_ms: u64) -> String {
        let mut out = String::new();
        write!(out, "{{\"t_ms\": {t_ms}, \"samples\": [").unwrap();
        for (i, s) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            render_sample_json(&mut out, s);
        }
        out.push_str("]}");
        out
    }

    /// Spawns the background sampler: appends one JSONL row to `path`
    /// every `interval` until the returned handle stops (explicitly or
    /// on drop). The first row is written immediately, so even a run
    /// shorter than one interval leaves a time series behind.
    pub fn start_sampler(
        self: &Arc<Self>,
        path: impl Into<PathBuf>,
        interval: Duration,
    ) -> MetricsSampler {
        let path: PathBuf = path.into();
        let reg = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_t = Arc::clone(&stop);
        let out = path.clone();
        let handle = std::thread::Builder::new()
            .name("finecc-metrics-sampler".into())
            .spawn(move || -> std::io::Result<()> {
                if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir)?;
                }
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&out)?;
                let start = std::time::Instant::now();
                loop {
                    let row = reg.render_jsonl_row(start.elapsed().as_millis() as u64);
                    writeln!(file, "{row}")?;
                    file.flush()?;
                    if stop_t.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    // Sleep in short slices so stop() returns promptly
                    // even with a long interval.
                    let mut left = interval;
                    while !left.is_zero() && !stop_t.load(Ordering::Acquire) {
                        let step = left.min(Duration::from_millis(20));
                        std::thread::sleep(step);
                        left = left.saturating_sub(step);
                    }
                }
            })
            .expect("sampler thread spawns");
        MetricsSampler {
            path,
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to a running sampler thread; stops and joins on drop (writing
/// one final row, so the series always covers the end of the run).
pub struct MetricsSampler {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl MetricsSampler {
    /// Where the rows are going.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    /// Stops the thread and returns the output path (or the I/O error
    /// that killed the sampler).
    pub fn stop(mut self) -> std::io::Result<PathBuf> {
        self.finish()?;
        Ok(std::mem::take(&mut self.path))
    }

    fn finish(&mut self) -> std::io::Result<()> {
        self.stop.store(true, Ordering::Release);
        match self.handle.take() {
            Some(h) => h
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("metrics sampler thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for MetricsSampler {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Starts a sampler if `FINECC_METRICS=<path.jsonl>` is set, at the
/// `FINECC_METRICS_INTERVAL_MS` cadence (default 250 ms). The
/// experiment binaries call this once after wiring their sources.
pub fn sampler_from_env(reg: &Arc<MetricsRegistry>) -> Option<MetricsSampler> {
    let path = std::env::var_os("FINECC_METRICS")?;
    if path.is_empty() {
        return None;
    }
    let interval = std::env::var("FINECC_METRICS_INTERVAL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_millis(250), Duration::from_millis);
    Some(reg.start_sampler(PathBuf::from(path), interval))
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; dots (our separator)
/// map to underscores, anything else unexpected is folded the same way.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders pre-collected samples in the text exposition format (used by
/// both the registry and frozen-sample writers).
pub fn render_prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in samples {
        let name = prom_name(&s.name);
        if last_name != Some(s.name.as_str()) {
            writeln!(out, "# TYPE {name} {}", s.kind.name()).unwrap();
            last_name = Some(s.name.as_str());
        }
        out.push_str(&name);
        if !s.labels.is_empty() {
            out.push('{');
            for (i, (k, v)) in s.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "{}=\"{}\"", prom_name(k), prom_label_value(v)).unwrap();
            }
            out.push('}');
        }
        writeln!(out, " {}", prom_value(s.value)).unwrap();
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out
}

fn render_sample_json(out: &mut String, s: &Sample) {
    write!(
        out,
        "{{\"name\": \"{}\", \"labels\": {{",
        json_escape(&s.name)
    )
    .unwrap();
    for (i, (k, v)) in s.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "\"{}\": \"{}\"", json_escape(k), json_escape(v)).unwrap();
    }
    let value = if s.value.is_finite() {
        prom_value(s.value)
    } else {
        "null".to_string()
    };
    write!(
        out,
        "}}, \"kind\": \"{}\", \"value\": {value}}}",
        s.kind.name()
    )
    .unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_pulls_sources_with_labels() {
        let reg = MetricsRegistry::new();
        reg.register_fn(&[("scheme", "mvcc")], |c| {
            c.counter("finecc.test.commits", 42);
            c.gauge_with("finecc.test.depth", &[("q", "wal")], 3.5);
        });
        let samples = reg.snapshot();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "finecc.test.commits");
        assert_eq!(samples[0].labels, vec![("scheme".into(), "mvcc".into())]);
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].labels.len(), 2, "extra label appended");
    }

    #[test]
    fn prometheus_render_is_exposition_format() {
        let reg = MetricsRegistry::new();
        reg.register_fn(&[("scheme", "tav")], |c| {
            c.counter("finecc.lock.requests", 7);
            c.counter_with("finecc.lock.requests", &[("mode", "read")], 5);
        });
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE finecc_lock_requests counter"));
        assert!(text.contains("finecc_lock_requests{scheme=\"tav\"} 7"));
        assert!(text.contains("finecc_lock_requests{scheme=\"tav\",mode=\"read\"} 5"));
        // One TYPE line per metric name, not per sample.
        assert_eq!(text.matches("# TYPE").count(), 1);
    }

    #[test]
    fn label_values_escape() {
        let reg = MetricsRegistry::new();
        reg.register_fn(&[("object", "a\"b\\c")], |c| c.gauge("finecc.x", 1.0));
        let text = reg.render_prometheus();
        assert!(text.contains("object=\"a\\\"b\\\\c\""));
        let json = reg.render_json();
        assert!(json.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn jsonl_row_is_one_line() {
        let reg = MetricsRegistry::new();
        reg.register_fn(&[], |c| c.counter("finecc.a", 1));
        let row = reg.render_jsonl_row(123);
        assert!(row.starts_with("{\"t_ms\": 123"));
        assert!(!row.contains('\n'));
    }

    #[test]
    fn sampler_appends_rows_and_stops() {
        let path =
            std::env::temp_dir().join(format!("finecc-sampler-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let reg = Arc::new(MetricsRegistry::new());
        reg.register_fn(&[("bin", "test")], |c| c.gauge("finecc.test.live", 1.0));
        let sampler = reg.start_sampler(&path, Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(30));
        let written = sampler.stop().unwrap();
        assert_eq!(written, path);
        let body = std::fs::read_to_string(&path).unwrap();
        let rows: Vec<&str> = body.lines().collect();
        assert!(rows.len() >= 2, "several rows over 30ms: {}", rows.len());
        for row in rows {
            assert!(row.starts_with("{\"t_ms\": "));
            assert!(row.ends_with("]}"));
            assert!(row.contains("finecc.test.live"));
        }
        let _ = std::fs::remove_file(&path);
    }
}
