//! Per-object / per-field contention attribution.
//!
//! Every blocking or aborting interaction in the runtime has a
//! *causing* object: the instance whose lock was held, the OID whose
//! version chain refused a write, the record an SSI pivot read. The
//! [`ContentionRegistry`] attributes each such event to an [`ObjKey`]
//! in a striped hash map, so experiments can render a "hottest
//! objects" table and (per the ROADMAP) a future adaptive meta-scheme
//! can pick a policy *per object* from observed contention.
//!
//! Two rankings coexist on the same entries:
//!
//! * **Cumulative** ([`ContentionRegistry::top_k`]) — raw event totals
//!   since startup/reset. Deterministic, exact, what the end-of-run
//!   tables print.
//! * **Decayed** ([`ContentionRegistry::top_k_decayed`]) — an EWMA
//!   score per object with a configurable half-life: each event adds
//!   1.0 after the standing score is decayed by
//!   `2^-(elapsed / half_life)`. An object hot early in a run loses
//!   half its score every half-life once the workload moves on, so
//!   "hottest *now*" differs from "hottest ever" — exactly the signal
//!   a run-time adaptive meta-scheme needs to route on. Decay is
//!   computed lazily (on record and on read), so idle objects cost
//!   nothing.
//!
//! The registry sits off the hot path by construction: it is only
//! touched when something already went wrong (a block, a conflict, an
//! abort, a retry), never on a granted lock or a clean read.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Contention event classes tracked per object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentionKind {
    /// A lock request blocked on this resource (lock schemes).
    LockBlock = 0,
    /// A first-updater-wins write-write conflict on this OID (mvcc).
    WwConflict = 1,
    /// An SSI dangerous-structure abort attributed to this OID
    /// (mvcc-ssi).
    SsiAbort = 2,
    /// A latch-free read retry on this OID's chain (mvcc).
    ReadRetry = 3,
}

/// Number of [`ContentionKind`] classes.
pub const KIND_COUNT: usize = 4;

impl ContentionKind {
    /// All classes, in counter order.
    pub const ALL: [ContentionKind; KIND_COUNT] = [
        ContentionKind::LockBlock,
        ContentionKind::WwConflict,
        ContentionKind::SsiAbort,
        ContentionKind::ReadRetry,
    ];

    /// Stable snake_case name for tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            ContentionKind::LockBlock => "lock_blocks",
            ContentionKind::WwConflict => "ww_conflicts",
            ContentionKind::SsiAbort => "ssi_aborts",
            ContentionKind::ReadRetry => "read_retries",
        }
    }
}

/// The object (or finer granule) a contention event is attributed to.
///
/// Raw integers rather than `finecc-model` newtypes so this crate sits
/// below every other crate in the dependency graph; callers convert
/// with `.raw()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjKey {
    /// One instance, by OID.
    Instance(u64),
    /// One field of one instance (the field-locking baseline's
    /// granule).
    Field(u64, u32),
    /// A class-level resource: explicit class locks, relation locks.
    Class(u32),
    /// Contention with no single causing object (e.g. an SSI abort of
    /// a read-only pivot).
    Unattributed,
}

impl ObjKey {
    /// The instance OID this key refers to, when it has one (fields
    /// belong to their instance; class-level keys do not).
    pub fn oid(self) -> Option<u64> {
        match self {
            ObjKey::Instance(o) | ObjKey::Field(o, _) => Some(o),
            _ => None,
        }
    }

    fn stripe_hash(self) -> usize {
        match self {
            ObjKey::Instance(o) => o as usize,
            ObjKey::Field(o, f) => (o ^ ((f as u64) << 32) ^ 0x9e37) as usize,
            ObjKey::Class(c) => c as usize ^ 0x5bd1,
            ObjKey::Unattributed => usize::MAX,
        }
    }
}

impl fmt::Display for ObjKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKey::Instance(o) => write!(f, "oid:{o}"),
            ObjKey::Field(o, fid) => write!(f, "oid:{o}.f#{fid}"),
            ObjKey::Class(c) => write!(f, "class:{c}"),
            ObjKey::Unattributed => f.write_str("(unattributed)"),
        }
    }
}

/// One row of the hottest-objects table. `Copy` so a fixed top-K array
/// can ride in `ExecReport`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotObject {
    /// The attributed object.
    pub key: ObjKey,
    /// Event counts indexed by [`ContentionKind`].
    pub counts: [u64; KIND_COUNT],
    /// EWMA contention score decayed to the ranking instant (equals
    /// [`HotObject::total`] when ranked cumulatively, or when nothing
    /// has decayed yet).
    pub score: f64,
}

impl HotObject {
    /// Total contention events on this object.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one class.
    pub fn count(&self, kind: ContentionKind) -> u64 {
        self.counts[kind as usize]
    }
}

/// Per-key state: exact cumulative counts plus the lazily-decayed EWMA.
#[derive(Clone, Copy, Debug)]
struct Entry {
    counts: [u64; KIND_COUNT],
    /// EWMA score as of `last_ns`.
    score: f64,
    /// Registry-epoch timestamp of the last event.
    last_ns: u64,
}

/// Stripes the registry's map is split over.
const STRIPES: usize = 64;

/// Default half-life for the decayed ranking.
pub const DEFAULT_HALF_LIFE: Duration = Duration::from_millis(1000);

/// Striped, OID-keyed contention counters with an EWMA recency score.
pub struct ContentionRegistry {
    stripes: Vec<Mutex<HashMap<ObjKey, Entry>>>,
    epoch: Instant,
    half_life_ns: u64,
}

impl Default for ContentionRegistry {
    fn default() -> Self {
        ContentionRegistry::new()
    }
}

impl ContentionRegistry {
    /// An empty registry with the default half-life.
    pub fn new() -> ContentionRegistry {
        ContentionRegistry::with_half_life(DEFAULT_HALF_LIFE)
    }

    /// An empty registry whose decayed scores halve every `half_life`.
    pub fn with_half_life(half_life: Duration) -> ContentionRegistry {
        ContentionRegistry {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            epoch: Instant::now(),
            half_life_ns: (half_life.as_nanos() as u64).max(1),
        }
    }

    /// The configured half-life in nanoseconds.
    pub fn half_life_ns(&self) -> u64 {
        self.half_life_ns
    }

    /// Nanoseconds since this registry's epoch — the clock
    /// [`ContentionRegistry::record`] stamps events with and
    /// [`ContentionRegistry::top_k_decayed`] expects.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// `score * 2^-(dt / half_life)`, in integer-µ-halvings precision.
    fn decay(&self, score: f64, from_ns: u64, to_ns: u64) -> f64 {
        let dt = to_ns.saturating_sub(from_ns);
        if dt == 0 || score == 0.0 {
            return score;
        }
        score * (-(dt as f64 / self.half_life_ns as f64) * std::f64::consts::LN_2).exp()
    }

    /// Attributes one event to `key`. Locks one stripe briefly; called
    /// only on contention paths.
    pub fn record(&self, key: ObjKey, kind: ContentionKind) {
        self.record_at(key, kind, self.now_ns());
    }

    /// [`ContentionRegistry::record`] with an explicit epoch-relative
    /// timestamp — the deterministic entry point tests and replay
    /// drivers use to model a workload shift without sleeping.
    pub fn record_at(&self, key: ObjKey, kind: ContentionKind, now_ns: u64) {
        let mut map = self.stripes[key.stripe_hash() % STRIPES]
            .lock()
            .expect("contention stripe poisoned");
        let e = map.entry(key).or_insert(Entry {
            counts: [0; KIND_COUNT],
            score: 0.0,
            last_ns: now_ns,
        });
        e.counts[kind as usize] += 1;
        e.score = self.decay(e.score, e.last_ns, now_ns) + 1.0;
        e.last_ns = e.last_ns.max(now_ns);
    }

    /// Per-class totals summed across every stripe (the invariant the
    /// tests pin: these equal the scheme-level counters).
    pub fn totals(&self) -> [u64; KIND_COUNT] {
        let mut out = [0u64; KIND_COUNT];
        for stripe in &self.stripes {
            let map = stripe.lock().expect("contention stripe poisoned");
            for e in map.values() {
                for (o, c) in out.iter_mut().zip(e.counts.iter()) {
                    *o += c;
                }
            }
        }
        out
    }

    /// The `k` hottest objects by *cumulative* total events, hottest
    /// first (ties broken by key for determinism). Exact and
    /// time-independent; `score` in the rows equals the total.
    pub fn top_k(&self, k: usize) -> Vec<HotObject> {
        let mut all: Vec<HotObject> = Vec::new();
        for stripe in &self.stripes {
            let map = stripe.lock().expect("contention stripe poisoned");
            all.extend(map.iter().map(|(key, e)| HotObject {
                key: *key,
                counts: e.counts,
                score: e.counts.iter().sum::<u64>() as f64,
            }));
        }
        all.sort_by(|a, b| b.total().cmp(&a.total()).then(a.key.cmp(&b.key)));
        all.truncate(k);
        all
    }

    /// The `k` hottest objects by EWMA score decayed to `now_ns`,
    /// hottest first — "hottest *now*" rather than "hottest ever".
    /// Ties (e.g. everything fully decayed to ~0) fall back to
    /// cumulative total, then key.
    pub fn top_k_decayed(&self, k: usize, now_ns: u64) -> Vec<HotObject> {
        let mut all: Vec<HotObject> = Vec::new();
        for stripe in &self.stripes {
            let map = stripe.lock().expect("contention stripe poisoned");
            all.extend(map.iter().map(|(key, e)| HotObject {
                key: *key,
                counts: e.counts,
                score: self.decay(e.score, e.last_ns, now_ns),
            }));
        }
        all.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.total().cmp(&a.total()))
                .then(a.key.cmp(&b.key))
        });
        all.truncate(k);
        all
    }

    /// Distinct objects with at least one event.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("contention stripe poisoned").len())
            .sum()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears every stripe.
    pub fn reset(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("contention stripe poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_attribute_and_rank() {
        let r = ContentionRegistry::new();
        for _ in 0..5 {
            r.record(ObjKey::Instance(7), ContentionKind::LockBlock);
        }
        r.record(ObjKey::Instance(9), ContentionKind::WwConflict);
        r.record(ObjKey::Field(7, 2), ContentionKind::ReadRetry);
        let top = r.top_k(10);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].key, ObjKey::Instance(7));
        assert_eq!(top[0].count(ContentionKind::LockBlock), 5);
        assert_eq!(r.totals(), [5, 1, 0, 1]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn top_k_truncates_deterministically() {
        let r = ContentionRegistry::new();
        for oid in 0..100u64 {
            r.record(ObjKey::Instance(oid), ContentionKind::WwConflict);
        }
        let top = r.top_k(8);
        assert_eq!(top.len(), 8);
        // Equal totals: ordered by key.
        assert_eq!(top[0].key, ObjKey::Instance(0));
        assert_eq!(top[7].key, ObjKey::Instance(7));
    }

    #[test]
    fn reset_clears() {
        let r = ContentionRegistry::new();
        r.record(ObjKey::Unattributed, ContentionKind::SsiAbort);
        assert!(!r.is_empty());
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.totals(), [0; KIND_COUNT]);
    }

    #[test]
    fn score_halves_per_half_life() {
        let r = ContentionRegistry::with_half_life(Duration::from_nanos(1_000));
        r.record_at(ObjKey::Instance(1), ContentionKind::LockBlock, 0);
        let now = r.top_k_decayed(1, 0);
        assert!((now[0].score - 1.0).abs() < 1e-9);
        let later = r.top_k_decayed(1, 1_000);
        assert!(
            (later[0].score - 0.5).abs() < 1e-9,
            "one half-life halves the score, got {}",
            later[0].score
        );
        let much_later = r.top_k_decayed(1, 10_000);
        assert!(much_later[0].score < 0.001, "ten half-lives ≈ zero");
        // Cumulative ranking is untouched by time.
        assert_eq!(r.top_k(1)[0].total(), 1);
    }

    #[test]
    fn decayed_ranking_tracks_the_workload_shift() {
        let hl = 1_000u64; // ns
        let r = ContentionRegistry::with_half_life(Duration::from_nanos(hl));
        // Phase 1: oid 1 is hammered.
        for _ in 0..100 {
            r.record_at(ObjKey::Instance(1), ContentionKind::LockBlock, 0);
        }
        // Phase 2, 20 half-lives later: oid 2 gets a handful of events.
        let t2 = 20 * hl;
        for _ in 0..3 {
            r.record_at(ObjKey::Instance(2), ContentionKind::LockBlock, t2);
        }
        // Cumulatively oid 1 dominates 100 : 3 …
        assert_eq!(r.top_k(1)[0].key, ObjKey::Instance(1));
        // … but decayed to "now", oid 2 is the hot one
        // (100 * 2^-20 ≈ 0.0001 vs 3).
        let decayed = r.top_k_decayed(2, t2);
        assert_eq!(decayed[0].key, ObjKey::Instance(2));
        assert!(decayed[0].score > 2.9);
        assert!(decayed[1].score < 0.01);
    }

    #[test]
    fn record_compounds_within_a_burst() {
        let r = ContentionRegistry::with_half_life(Duration::from_nanos(1_000));
        // Three events at the same instant: score 3.0 exactly.
        for _ in 0..3 {
            r.record_at(ObjKey::Instance(5), ContentionKind::ReadRetry, 42);
        }
        let top = r.top_k_decayed(1, 42);
        assert!((top[0].score - 3.0).abs() < 1e-9);
        assert_eq!(top[0].total(), 3);
    }
}
