//! Per-object / per-field contention attribution.
//!
//! Every blocking or aborting interaction in the runtime has a
//! *causing* object: the instance whose lock was held, the OID whose
//! version chain refused a write, the record an SSI pivot read. The
//! [`ContentionRegistry`] attributes each such event to an [`ObjKey`]
//! in a striped hash map, so experiments can render a "hottest
//! objects" table and (per the ROADMAP) a future adaptive meta-scheme
//! can pick a policy *per object* from observed contention.
//!
//! The registry sits off the hot path by construction: it is only
//! touched when something already went wrong (a block, a conflict, an
//! abort, a retry), never on a granted lock or a clean read.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Contention event classes tracked per object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentionKind {
    /// A lock request blocked on this resource (lock schemes).
    LockBlock = 0,
    /// A first-updater-wins write-write conflict on this OID (mvcc).
    WwConflict = 1,
    /// An SSI dangerous-structure abort attributed to this OID
    /// (mvcc-ssi).
    SsiAbort = 2,
    /// A latch-free read retry on this OID's chain (mvcc).
    ReadRetry = 3,
}

/// Number of [`ContentionKind`] classes.
pub const KIND_COUNT: usize = 4;

impl ContentionKind {
    /// All classes, in counter order.
    pub const ALL: [ContentionKind; KIND_COUNT] = [
        ContentionKind::LockBlock,
        ContentionKind::WwConflict,
        ContentionKind::SsiAbort,
        ContentionKind::ReadRetry,
    ];

    /// Stable snake_case name for tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            ContentionKind::LockBlock => "lock_blocks",
            ContentionKind::WwConflict => "ww_conflicts",
            ContentionKind::SsiAbort => "ssi_aborts",
            ContentionKind::ReadRetry => "read_retries",
        }
    }
}

/// The object (or finer granule) a contention event is attributed to.
///
/// Raw integers rather than `finecc-model` newtypes so this crate sits
/// below every other crate in the dependency graph; callers convert
/// with `.raw()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjKey {
    /// One instance, by OID.
    Instance(u64),
    /// One field of one instance (the field-locking baseline's
    /// granule).
    Field(u64, u32),
    /// A class-level resource: explicit class locks, relation locks.
    Class(u32),
    /// Contention with no single causing object (e.g. an SSI abort of
    /// a read-only pivot).
    Unattributed,
}

impl ObjKey {
    /// The instance OID this key refers to, when it has one (fields
    /// belong to their instance; class-level keys do not).
    pub fn oid(self) -> Option<u64> {
        match self {
            ObjKey::Instance(o) | ObjKey::Field(o, _) => Some(o),
            _ => None,
        }
    }

    fn stripe_hash(self) -> usize {
        match self {
            ObjKey::Instance(o) => o as usize,
            ObjKey::Field(o, f) => (o ^ ((f as u64) << 32) ^ 0x9e37) as usize,
            ObjKey::Class(c) => c as usize ^ 0x5bd1,
            ObjKey::Unattributed => usize::MAX,
        }
    }
}

impl fmt::Display for ObjKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKey::Instance(o) => write!(f, "oid:{o}"),
            ObjKey::Field(o, fid) => write!(f, "oid:{o}.f#{fid}"),
            ObjKey::Class(c) => write!(f, "class:{c}"),
            ObjKey::Unattributed => f.write_str("(unattributed)"),
        }
    }
}

/// One row of the hottest-objects table. `Copy` so a fixed top-K array
/// can ride in `ExecReport`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HotObject {
    /// The attributed object.
    pub key: ObjKey,
    /// Event counts indexed by [`ContentionKind`].
    pub counts: [u64; KIND_COUNT],
}

impl HotObject {
    /// Total contention events on this object.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one class.
    pub fn count(&self, kind: ContentionKind) -> u64 {
        self.counts[kind as usize]
    }
}

/// Stripes the registry's map is split over.
const STRIPES: usize = 64;

/// Striped, OID-keyed contention counters.
pub struct ContentionRegistry {
    stripes: Vec<Mutex<HashMap<ObjKey, [u64; KIND_COUNT]>>>,
}

impl Default for ContentionRegistry {
    fn default() -> Self {
        ContentionRegistry::new()
    }
}

impl ContentionRegistry {
    /// An empty registry.
    pub fn new() -> ContentionRegistry {
        ContentionRegistry {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Attributes one event to `key`. Locks one stripe briefly; called
    /// only on contention paths.
    pub fn record(&self, key: ObjKey, kind: ContentionKind) {
        let mut map = self.stripes[key.stripe_hash() % STRIPES]
            .lock()
            .expect("contention stripe poisoned");
        map.entry(key).or_insert([0; KIND_COUNT])[kind as usize] += 1;
    }

    /// Per-class totals summed across every stripe (the invariant the
    /// tests pin: these equal the scheme-level counters).
    pub fn totals(&self) -> [u64; KIND_COUNT] {
        let mut out = [0u64; KIND_COUNT];
        for stripe in &self.stripes {
            let map = stripe.lock().expect("contention stripe poisoned");
            for counts in map.values() {
                for (o, c) in out.iter_mut().zip(counts.iter()) {
                    *o += c;
                }
            }
        }
        out
    }

    /// The `k` hottest objects by total events, hottest first (ties
    /// broken by key for determinism).
    pub fn top_k(&self, k: usize) -> Vec<HotObject> {
        let mut all: Vec<HotObject> = Vec::new();
        for stripe in &self.stripes {
            let map = stripe.lock().expect("contention stripe poisoned");
            all.extend(map.iter().map(|(key, counts)| HotObject {
                key: *key,
                counts: *counts,
            }));
        }
        all.sort_by(|a, b| b.total().cmp(&a.total()).then(a.key.cmp(&b.key)));
        all.truncate(k);
        all
    }

    /// Distinct objects with at least one event.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("contention stripe poisoned").len())
            .sum()
    }

    /// `true` when no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears every stripe.
    pub fn reset(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("contention stripe poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_attribute_and_rank() {
        let r = ContentionRegistry::new();
        for _ in 0..5 {
            r.record(ObjKey::Instance(7), ContentionKind::LockBlock);
        }
        r.record(ObjKey::Instance(9), ContentionKind::WwConflict);
        r.record(ObjKey::Field(7, 2), ContentionKind::ReadRetry);
        let top = r.top_k(10);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].key, ObjKey::Instance(7));
        assert_eq!(top[0].count(ContentionKind::LockBlock), 5);
        assert_eq!(r.totals(), [5, 1, 0, 1]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn top_k_truncates_deterministically() {
        let r = ContentionRegistry::new();
        for oid in 0..100u64 {
            r.record(ObjKey::Instance(oid), ContentionKind::WwConflict);
        }
        let top = r.top_k(8);
        assert_eq!(top.len(), 8);
        // Equal totals: ordered by key.
        assert_eq!(top[0].key, ObjKey::Instance(0));
        assert_eq!(top[7].key, ObjKey::Instance(7));
    }

    #[test]
    fn reset_clears() {
        let r = ContentionRegistry::new();
        r.record(ObjKey::Unattributed, ContentionKind::SsiAbort);
        assert!(!r.is_empty());
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.totals(), [0; KIND_COUNT]);
    }
}
