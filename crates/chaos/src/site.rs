//! Named yield-point and fault-injection sites.

/// A named point in the engine where the deterministic scheduler may
/// preempt the running thread ([`crate::yield_point`]) or the fault
/// plane may fire ([`crate::fault_at`] / [`crate::disabled_at`]).
///
/// Sites are the harness's vocabulary: schedules are sequences of
/// decisions taken *at* sites, fault specs name the site they arm, and
/// trace events record which site each decision was taken at. The
/// latch-free mvcc **read path deliberately has no site** — reads must
/// stay probe-free even with the harness compiled in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Site {
    /// Executor: before a worker starts its next transaction.
    TxnStart = 0,
    /// Retry loop: one unit of deterministic backoff after an abort.
    TxnBackoff = 1,
    /// Lock manager: entry to `acquire` (latch-acquisition stalls).
    LockAcquire = 2,
    /// Lock manager: one pass of the blocked-waiter loop.
    LockWait = 3,
    /// Mvcc heap: before installing a pending version (write path,
    /// ahead of every latch).
    WriteInstall = 4,
    /// Mvcc commit: before the commit timestamp is drawn.
    CommitTsDraw = 5,
    /// Mvcc commit: after the draw, before the write-ahead-log append.
    CommitWalAppend = 6,
    /// Mvcc commit: before each per-record commit-timestamp flip.
    CommitFlipStep = 7,
    /// Mvcc commit: before the watermark publication.
    CommitPublish = 8,
    /// Mvcc commit: the read-your-own-commits publication barrier
    /// (`FaultKind::Disable` here skips the barrier — the known-bug
    /// regression lever).
    CommitPublishWait = 9,
    /// Watermark: one spin of `wait_published`.
    WatermarkWait = 10,
    /// Watermark: one spin of the publication ring's overflow wait.
    WatermarkPublish = 11,
    /// Mvcc heap: before a GC pass retires copy-on-write snapshots.
    CowReclaim = 12,
    /// WAL: before an inline-mode append claims the file.
    WalAppend = 13,
    /// WAL: before an inline-mode fsync.
    WalFsync = 14,
    /// WAL: group-commit flusher, before writing a batch.
    WalFlushWrite = 15,
    /// WAL: group-commit flusher, before syncing a batch.
    WalFlushFsync = 16,
}

/// Number of distinct sites (sizes the per-site hit counters).
pub const SITE_COUNT: usize = 17;

impl Site {
    /// Every site, indexable by discriminant.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::TxnStart,
        Site::TxnBackoff,
        Site::LockAcquire,
        Site::LockWait,
        Site::WriteInstall,
        Site::CommitTsDraw,
        Site::CommitWalAppend,
        Site::CommitFlipStep,
        Site::CommitPublish,
        Site::CommitPublishWait,
        Site::WatermarkWait,
        Site::WatermarkPublish,
        Site::CowReclaim,
        Site::WalAppend,
        Site::WalFsync,
        Site::WalFlushWrite,
        Site::WalFlushFsync,
    ];

    /// Stable name, used by repro files and traces.
    pub fn name(self) -> &'static str {
        match self {
            Site::TxnStart => "txn_start",
            Site::TxnBackoff => "txn_backoff",
            Site::LockAcquire => "lock_acquire",
            Site::LockWait => "lock_wait",
            Site::WriteInstall => "write_install",
            Site::CommitTsDraw => "commit_ts_draw",
            Site::CommitWalAppend => "commit_wal_append",
            Site::CommitFlipStep => "commit_flip_step",
            Site::CommitPublish => "commit_publish",
            Site::CommitPublishWait => "commit_publish_wait",
            Site::WatermarkWait => "watermark_wait",
            Site::WatermarkPublish => "watermark_publish",
            Site::CowReclaim => "cow_reclaim",
            Site::WalAppend => "wal_append",
            Site::WalFsync => "wal_fsync",
            Site::WalFlushWrite => "wal_flush_write",
            Site::WalFlushFsync => "wal_flush_fsync",
        }
    }

    /// Parses a [`Site::name`] back (repro-file loading).
    pub fn from_name(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_indices_are_dense() {
        for (i, site) in Site::ALL.into_iter().enumerate() {
            assert_eq!(site.index(), i);
            assert_eq!(Site::from_name(site.name()), Some(site));
        }
        assert_eq!(Site::from_name("nope"), None);
    }
}
