//! Named yield-point and fault-injection sites.

/// A named point in the engine where the deterministic scheduler may
/// preempt the running thread ([`crate::yield_point`]) or the fault
/// plane may fire ([`crate::fault_at`] / [`crate::disabled_at`]).
///
/// Sites are the harness's vocabulary: schedules are sequences of
/// decisions taken *at* sites, fault specs name the site they arm, and
/// trace events record which site each decision was taken at. The
/// latch-free mvcc **read path deliberately has no site** — reads must
/// stay probe-free even with the harness compiled in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Site {
    /// Executor: before a worker starts its next transaction.
    TxnStart = 0,
    /// Retry loop: one unit of deterministic backoff after an abort.
    TxnBackoff = 1,
    /// Lock manager: entry to `acquire` (latch-acquisition stalls).
    LockAcquire = 2,
    /// Lock manager: one pass of the blocked-waiter loop.
    LockWait = 3,
    /// Mvcc heap: before installing a pending version (write path,
    /// ahead of every latch).
    WriteInstall = 4,
    /// Mvcc commit: before the commit timestamp is drawn.
    CommitTsDraw = 5,
    /// Mvcc commit: after the draw, before the write-ahead-log append.
    CommitWalAppend = 6,
    /// Mvcc commit: before each per-record commit-timestamp flip.
    CommitFlipStep = 7,
    /// Mvcc commit: before the watermark publication.
    CommitPublish = 8,
    /// Mvcc commit: the read-your-own-commits publication barrier
    /// (`FaultKind::Disable` here skips the barrier — the known-bug
    /// regression lever).
    CommitPublishWait = 9,
    /// Watermark: one spin of `wait_published`.
    WatermarkWait = 10,
    /// Watermark: one spin of the publication ring's overflow wait.
    WatermarkPublish = 11,
    /// Mvcc heap: before a GC pass retires copy-on-write snapshots.
    CowReclaim = 12,
    /// WAL: before an inline-mode append claims the file.
    WalAppend = 13,
    /// WAL: before an inline-mode fsync.
    WalFsync = 14,
    /// WAL: group-commit flusher, before writing a batch.
    WalFlushWrite = 15,
    /// WAL: group-commit flusher, before syncing a batch.
    WalFlushFsync = 16,
    /// Checkpoint writer: before the image is encoded.
    CkptEncode = 17,
    /// Checkpoint writer: before the temp file is written.
    CkptTmpWrite = 18,
    /// Checkpoint writer: before the temp file's fsync.
    CkptFsync = 19,
    /// Checkpoint writer: before the rename into place.
    CkptRename = 20,
    /// Checkpoint writer: before the directory fsync that persists the
    /// rename (a crash here may lose the just-renamed dirent).
    CkptDirFsync = 21,
    /// Recovery: before a checkpoint file is read and decoded.
    RecoverCkptDecode = 22,
    /// Recovery: before each log frame is read during replay.
    RecoverScan = 23,
    /// Recovery: before each decoded record is applied to the store.
    RecoverApply = 24,
}

/// Number of distinct sites (sizes the per-site hit counters).
pub const SITE_COUNT: usize = 25;

impl Site {
    /// Every site, indexable by discriminant.
    pub const ALL: [Site; SITE_COUNT] = [
        Site::TxnStart,
        Site::TxnBackoff,
        Site::LockAcquire,
        Site::LockWait,
        Site::WriteInstall,
        Site::CommitTsDraw,
        Site::CommitWalAppend,
        Site::CommitFlipStep,
        Site::CommitPublish,
        Site::CommitPublishWait,
        Site::WatermarkWait,
        Site::WatermarkPublish,
        Site::CowReclaim,
        Site::WalAppend,
        Site::WalFsync,
        Site::WalFlushWrite,
        Site::WalFlushFsync,
        Site::CkptEncode,
        Site::CkptTmpWrite,
        Site::CkptFsync,
        Site::CkptRename,
        Site::CkptDirFsync,
        Site::RecoverCkptDecode,
        Site::RecoverScan,
        Site::RecoverApply,
    ];

    /// The checkpoint-writer fault sites, in pipeline order (encode,
    /// temp write, temp fsync, rename, directory fsync) — the sweep
    /// vocabulary for crash-during-checkpoint exploration.
    pub const CHECKPOINT: [Site; 5] = [
        Site::CkptEncode,
        Site::CkptTmpWrite,
        Site::CkptFsync,
        Site::CkptRename,
        Site::CkptDirFsync,
    ];

    /// The recovery-replay fault sites, in pipeline order (checkpoint
    /// decode, frame scan, record apply) — the sweep vocabulary for
    /// crash-during-recovery exploration.
    pub const RECOVERY: [Site; 3] = [
        Site::RecoverCkptDecode,
        Site::RecoverScan,
        Site::RecoverApply,
    ];

    /// Stable name, used by repro files and traces.
    pub fn name(self) -> &'static str {
        match self {
            Site::TxnStart => "txn_start",
            Site::TxnBackoff => "txn_backoff",
            Site::LockAcquire => "lock_acquire",
            Site::LockWait => "lock_wait",
            Site::WriteInstall => "write_install",
            Site::CommitTsDraw => "commit_ts_draw",
            Site::CommitWalAppend => "commit_wal_append",
            Site::CommitFlipStep => "commit_flip_step",
            Site::CommitPublish => "commit_publish",
            Site::CommitPublishWait => "commit_publish_wait",
            Site::WatermarkWait => "watermark_wait",
            Site::WatermarkPublish => "watermark_publish",
            Site::CowReclaim => "cow_reclaim",
            Site::WalAppend => "wal_append",
            Site::WalFsync => "wal_fsync",
            Site::WalFlushWrite => "wal_flush_write",
            Site::WalFlushFsync => "wal_flush_fsync",
            Site::CkptEncode => "ckpt_encode",
            Site::CkptTmpWrite => "ckpt_tmp_write",
            Site::CkptFsync => "ckpt_fsync",
            Site::CkptRename => "ckpt_rename",
            Site::CkptDirFsync => "ckpt_dir_fsync",
            Site::RecoverCkptDecode => "recover_ckpt_decode",
            Site::RecoverScan => "recover_scan",
            Site::RecoverApply => "recover_apply",
        }
    }

    /// Parses a [`Site::name`] back (repro-file loading).
    pub fn from_name(name: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.name() == name)
    }

    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_indices_are_dense() {
        for (i, site) in Site::ALL.into_iter().enumerate() {
            assert_eq!(site.index(), i);
            assert_eq!(Site::from_name(site.name()), Some(site));
        }
        assert_eq!(Site::from_name("nope"), None);
    }
}
