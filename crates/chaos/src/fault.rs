//! The fault plane: what to inject, where, and on which hit.

use crate::site::Site;

/// What a matched fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The I/O operation at the site fails (append/fsync error). The
    /// code under test must degrade gracefully, not panic.
    IoError,
    /// A crash at a frame boundary: the operation tears mid-write, the
    /// log poisons, and [`crate::crashed`] turns on so the workload
    /// drains. Recovery is then checked against the committed prefix.
    Crash,
    /// The thread arriving at the yield site is descheduled for this
    /// many virtual-time ticks.
    Delay(u64),
    /// The mechanism guarded by the site is switched off entirely
    /// (e.g. the `wait_published` commit barrier) — the known-bug
    /// lever for regression tests.
    Disable,
}

impl FaultKind {
    /// Stable spelling for repro files (`Delay` carries its ticks).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::IoError => "io_error",
            FaultKind::Crash => "crash",
            FaultKind::Delay(_) => "delay",
            FaultKind::Disable => "disable",
        }
    }
}

/// One armed fault: `kind` fires at `site` for every hit counted in
/// `[from_hit, from_hit + count)`.
///
/// Hits are counted deterministically per site: yield sites count
/// scheduler arrivals ([`crate::yield_point`]), I/O sites count fault
/// probes ([`crate::fault_at`]). `Disable` ignores hit counting — it
/// holds for the whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Where the fault is armed.
    pub site: Site,
    /// First hit (0-based) at which it fires.
    pub from_hit: u64,
    /// Number of consecutive hits it fires for.
    pub count: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultSpec {
    /// Fires exactly once, at hit `nth`.
    pub fn once(site: Site, nth: u64, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            site,
            from_hit: nth,
            count: 1,
            kind,
        }
    }

    /// Fires on every hit.
    pub fn always(site: Site, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            site,
            from_hit: 0,
            count: u64::MAX,
            kind,
        }
    }

    fn matches(&self, hit: u64) -> bool {
        hit >= self.from_hit && hit - self.from_hit < self.count
    }
}

/// The set of faults armed for one run. Order matters only when two
/// specs match the same (site, hit): the first wins.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with nothing armed.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from the given specs.
    pub fn of(specs: impl Into<Vec<FaultSpec>>) -> FaultPlan {
        FaultPlan {
            specs: specs.into(),
        }
    }

    /// The fault (if any) firing at `site` on hit number `hit`.
    /// `Disable` specs are excluded — they are site-wide, not per-hit
    /// (see [`FaultPlan::disables`]).
    pub(crate) fn at(&self, site: Site, hit: u64) -> Option<FaultKind> {
        self.specs
            .iter()
            .find(|s| s.site == site && s.kind != FaultKind::Disable && s.matches(hit))
            .map(|s| s.kind)
    }

    /// Bitmask of sites with a `Disable` spec.
    pub(crate) fn disables(&self) -> u32 {
        self.specs
            .iter()
            .filter(|s| s.kind == FaultKind::Disable)
            .fold(0, |m, s| m | 1 << s.site.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_windows_match_and_first_spec_wins() {
        let plan = FaultPlan::of([
            FaultSpec::once(Site::WalAppend, 2, FaultKind::IoError),
            FaultSpec::always(Site::WalAppend, FaultKind::Crash),
            FaultSpec::always(Site::CommitPublishWait, FaultKind::Disable),
        ]);
        assert_eq!(plan.at(Site::WalAppend, 0), Some(FaultKind::Crash));
        assert_eq!(plan.at(Site::WalAppend, 2), Some(FaultKind::IoError));
        assert_eq!(plan.at(Site::WalFsync, 0), None);
        // Disable never surfaces through per-hit matching…
        assert_eq!(plan.at(Site::CommitPublishWait, 0), None);
        // …only through the site-wide mask.
        assert_eq!(plan.disables(), 1 << Site::CommitPublishWait.index(),);
    }
}
