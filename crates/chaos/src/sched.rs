//! The cooperative token scheduler and virtual clock.
//!
//! Exactly one registered worker runs at a time. At every
//! [`crate::yield_point`] the running worker hands the token back, the
//! scheduler picks the next runnable worker (by seeded RNG, or by a
//! recorded decision list in replay mode), and the virtual clock
//! advances one tick. Serializing the workers makes everything they do
//! — atomic counters, timestamp draws, lock grants, log appends —
//! a pure function of the decision sequence, which is what lets a
//! failing schedule be minimized and replayed byte-for-byte.

use crate::fault::{FaultKind, FaultPlan};
use crate::rng::SplitMix64;
use crate::site::{Site, SITE_COUNT};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Backstop against a runaway schedule (a livelocked workload would
/// otherwise spin the scheduler forever). Orders of magnitude above any
/// real exploration run.
const MAX_DECISIONS: usize = 2_000_000;

/// One scheduling decision, as seen by the trace: at `tick`, worker
/// `thread` yielded at `site`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual-clock tick of the decision.
    pub tick: u64,
    /// The worker that yielded.
    pub thread: u32,
    /// Where it yielded.
    pub site: Site,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@t{}:{}", self.thread, self.tick, self.site)
    }
}

/// Everything a finished run hands back for reporting, minimization
/// and replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// The decision sequence (worker picked at each tick). Feed back
    /// through `ChaosConfig::replay` to reproduce the run.
    pub decisions: Vec<u32>,
    /// Site-annotated decision trace.
    pub trace: Vec<TraceEvent>,
    /// Final virtual-clock value.
    pub ticks: u64,
    /// Whether a `FaultKind::Crash` fired.
    pub crashed: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WorkerState {
    /// Slot reserved, thread not yet arrived. Never schedulable.
    Unregistered,
    Runnable,
    /// Descheduled by a `Delay` fault until the given tick.
    Delayed(u64),
    Finished,
}

struct SchedState {
    workers: Vec<WorkerState>,
    /// Slots claimed so far (scheduling starts when all are).
    registered: usize,
    /// The worker holding the token (`None` before start / after end).
    current: Option<usize>,
    /// Becomes true once all expected workers registered.
    started: bool,
    rng: SplitMix64,
    clock: u64,
    decisions: Vec<u32>,
    replay: Vec<u32>,
    replay_pos: usize,
    trace: Vec<TraceEvent>,
    yield_hits: [u64; SITE_COUNT],
    probe_hits: [u64; SITE_COUNT],
}

/// One installed harness instance (see [`crate::install`]).
pub(crate) struct Harness {
    pub(crate) gen: u64,
    pub(crate) expected: usize,
    pub(crate) plan: FaultPlan,
    pub(crate) crashed: AtomicBool,
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Harness {
    pub(crate) fn new(
        gen: u64,
        seed: u64,
        expected: usize,
        plan: FaultPlan,
        replay: Vec<u32>,
    ) -> Harness {
        Harness {
            gen,
            expected,
            plan,
            crashed: AtomicBool::new(false),
            state: Mutex::new(SchedState {
                workers: vec![WorkerState::Unregistered; expected],
                registered: 0,
                current: None,
                started: false,
                rng: SplitMix64::new(seed),
                clock: 0,
                decisions: Vec::new(),
                replay,
                replay_pos: 0,
                trace: Vec::new(),
                yield_hits: [0; SITE_COUNT],
                probe_hits: [0; SITE_COUNT],
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers the calling thread as a scheduled worker and blocks
    /// until the scheduler grants it the token for the first time.
    /// Returns the worker index. `slot` claims a *specific* index —
    /// the workload's stable worker identity, independent of the OS
    /// order in which the threads happen to start up (decision values
    /// name worker indices, so replay across runs needs the mapping
    /// fixed); `None` claims the lowest free slot.
    pub(crate) fn register(&self, slot: Option<usize>) -> usize {
        let mut st = self.lock();
        let idx = match slot {
            Some(i) => {
                assert!(
                    i < self.expected,
                    "chaos harness: worker slot {i} out of range ({})",
                    self.expected
                );
                i
            }
            None => st
                .workers
                .iter()
                .position(|w| *w == WorkerState::Unregistered)
                .unwrap_or_else(|| {
                    panic!(
                        "chaos harness: more workers registered than configured ({})",
                        self.expected
                    )
                }),
        };
        assert!(
            st.workers[idx] == WorkerState::Unregistered,
            "chaos harness: worker slot {idx} claimed twice"
        );
        st.workers[idx] = WorkerState::Runnable;
        st.registered += 1;
        if st.registered == self.expected {
            st.started = true;
            self.schedule_next(&mut st);
        }
        self.wait_token(st, idx);
        idx
    }

    /// The running worker yields at `site`: apply any armed delay,
    /// pick the next worker, and block until re-granted.
    pub(crate) fn yield_at(&self, idx: usize, site: Site) {
        let mut st = self.lock();
        if st.current != Some(idx) {
            // Defensive: a yield from a thread that does not hold the
            // token (misuse) must not corrupt the schedule.
            return;
        }
        let tick = st.clock;
        st.trace.push(TraceEvent {
            tick,
            thread: idx as u32,
            site,
        });
        let hit = st.yield_hits[site.index()];
        st.yield_hits[site.index()] += 1;
        if let Some(FaultKind::Delay(ticks)) = self.plan.at(site, hit) {
            st.workers[idx] = WorkerState::Delayed(st.clock + ticks);
        }
        self.schedule_next(&mut st);
        self.wait_token(st, idx);
    }

    /// Deterministic per-site fault probe (I/O sites).
    pub(crate) fn probe(&self, site: Site) -> Option<FaultKind> {
        let mut st = self.lock();
        let hit = st.probe_hits[site.index()];
        st.probe_hits[site.index()] += 1;
        self.plan.at(site, hit)
    }

    /// The calling worker is done; hand the token on.
    pub(crate) fn finish(&self, idx: usize) {
        let mut st = self.lock();
        st.workers[idx] = WorkerState::Finished;
        if st.current == Some(idx) {
            self.schedule_next(&mut st);
        }
    }

    pub(crate) fn ticks(&self) -> u64 {
        self.lock().clock
    }

    /// Drains the recorded schedule (called once, at uninstall).
    pub(crate) fn take_outcome(&self) -> ChaosOutcome {
        let mut st = self.lock();
        ChaosOutcome {
            decisions: std::mem::take(&mut st.decisions),
            trace: std::mem::take(&mut st.trace),
            ticks: st.clock,
            crashed: self.crashed.load(Ordering::Relaxed),
        }
    }

    /// Picks the next worker to hold the token. Replayed decisions win
    /// while they last (falling back to the first runnable worker when
    /// the recorded pick is not runnable — the tolerance that makes
    /// greedy decision elision work); afterwards the seeded RNG picks.
    fn schedule_next(&self, st: &mut SchedState) {
        // Wake any delay whose deadline has passed.
        for w in &mut st.workers {
            if matches!(*w, WorkerState::Delayed(until) if until <= st.clock) {
                *w = WorkerState::Runnable;
            }
        }
        let mut runnable: Vec<usize> = (0..st.workers.len())
            .filter(|&i| st.workers[i] == WorkerState::Runnable)
            .collect();
        if runnable.is_empty() {
            // Nothing runnable: jump the clock to the nearest delay
            // deadline, or declare the run over.
            let next_wake = st
                .workers
                .iter()
                .filter_map(|w| match w {
                    WorkerState::Delayed(until) => Some(*until),
                    _ => None,
                })
                .min();
            match next_wake {
                Some(until) => {
                    st.clock = st.clock.max(until);
                    for (i, w) in st.workers.iter_mut().enumerate() {
                        if matches!(*w, WorkerState::Delayed(u) if u <= st.clock) {
                            *w = WorkerState::Runnable;
                            runnable.push(i);
                        }
                    }
                }
                None => {
                    st.current = None;
                    self.cv.notify_all();
                    return;
                }
            }
        }
        assert!(
            st.decisions.len() < MAX_DECISIONS,
            "chaos schedule exceeded {MAX_DECISIONS} decisions — livelocked workload?"
        );
        let chosen = if st.replay_pos < st.replay.len() {
            let want = st.replay[st.replay_pos] as usize;
            st.replay_pos += 1;
            if runnable.contains(&want) {
                want
            } else {
                runnable[0]
            }
        } else {
            let i = st.rng.pick(runnable.len());
            runnable[i]
        };
        st.decisions.push(chosen as u32);
        st.clock += 1;
        st.current = Some(chosen);
        self.cv.notify_all();
    }

    /// Blocks until the token is granted to `idx` — or, degenerately,
    /// until the scheduler declares the run over (`current == None`
    /// after start), which only happens through misuse and must not
    /// deadlock.
    fn wait_token(&self, mut st: std::sync::MutexGuard<'_, SchedState>, idx: usize) {
        loop {
            if st.started && (st.current == Some(idx) || st.current.is_none()) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}
