//! # finecc-chaos — deterministic fault injection and schedule control
//!
//! A seeded virtual-time scheduler that owns all nondeterminism of a
//! run — thread interleaving at named yield points, randomness, and
//! the clock — plus a fault plane that injects append/fsync I/O
//! errors, crashes at frame boundaries, delays at commit-path phases,
//! and latch-acquisition stalls into the engine. On top of the
//! recorded decision sequence sit replay (byte-for-byte reproduction)
//! and greedy schedule minimization, which the simulator's explorer
//! uses to shrink a failing interleaving to a small repro.
//!
//! ## How the hooks cost nothing when disabled
//!
//! The engine calls free functions ([`yield_point`], [`fault_at`],
//! [`disabled_at`]) at named [`Site`]s. Each compiles to **one relaxed
//! atomic load and a predictable branch** while no harness is
//! installed — the same discipline as `finecc-obs`. The latch-free
//! mvcc read path carries *no* sites at all, so its reads stay
//! probe-free even with the harness linked in.
//!
//! ## Scoping
//!
//! Installation is process-global but *participation is opt-in*: only
//! the installing thread and threads that called [`register_worker`]
//! see the harness. Unrelated threads (other tests in the same
//! process, background flushers of other logs) pass through every hook
//! untouched, which keeps hit counting — and therefore fault firing —
//! deterministic. A background thread owned by a participating
//! component (the group-commit flusher) joins the fault plane through
//! a [`FaultToken`] captured by its creator.
//!
//! ## Modes
//!
//! * `threads > 0` — **scheduled**: that many workers must
//!   [`register_worker`]; exactly one runs at a time and every yield
//!   point is a scheduling decision (virtual time advances one tick
//!   per decision).
//! * `threads == 0` — **fault-only**: no scheduling, yield points stay
//!   no-ops, but [`fault_at`]/[`disabled_at`] fire for eligible
//!   threads. Used by unit tests that inject I/O errors under the
//!   normal thread interleaving.

mod fault;
mod rng;
mod sched;
mod site;

pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use sched::{ChaosOutcome, TraceEvent};
pub use site::{Site, SITE_COUNT};

use sched::Harness;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Fast-path gate: every hook bails on one relaxed load while false.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// True when the installed harness schedules workers (`threads > 0`).
static SCHEDULING: AtomicBool = AtomicBool::new(false);
/// Monotone install counter; thread eligibility is keyed on it so
/// state left behind by a previous harness can never leak into the
/// next one.
static GENERATION: AtomicU64 = AtomicU64::new(0);
/// Bitmask of sites with an armed `FaultKind::Disable`.
static DISABLED_MASK: AtomicU32 = AtomicU32::new(0);
/// Set when a `FaultKind::Crash` fires; cleared at install.
static CRASHED: AtomicBool = AtomicBool::new(false);
/// The installed harness (participating threads clone the `Arc`).
static HARNESS: Mutex<Option<Arc<Harness>>> = Mutex::new(None);
/// Serializes harness installations across concurrently running tests
/// in one process: the [`ChaosHandle`] holds this guard.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

#[derive(Clone, Copy)]
struct ThreadCtx {
    /// Generation this thread participates in (0 = none).
    gen: u64,
    /// Scheduled-worker index, or `u32::MAX` for eligible non-workers
    /// (the installing thread).
    worker: u32,
}

thread_local! {
    static CTX: Cell<ThreadCtx> = const {
        Cell::new(ThreadCtx { gen: 0, worker: u32::MAX })
    };
}

fn current_harness() -> Option<Arc<Harness>> {
    HARNESS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Returns the thread's context iff it participates in the live
/// generation.
fn eligible_ctx() -> Option<ThreadCtx> {
    let ctx = CTX.with(Cell::get);
    (ctx.gen != 0 && ctx.gen == GENERATION.load(Ordering::Acquire)).then_some(ctx)
}

/// Configuration for one harness installation.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Seed for the scheduling RNG.
    pub seed: u64,
    /// Scheduled workers that will [`register_worker`] (0 = fault-only
    /// mode, no scheduling).
    pub threads: usize,
    /// The armed fault plane.
    pub faults: FaultPlan,
    /// Recorded decisions to replay before the seeded RNG takes over.
    /// Empty for free exploration.
    pub replay: Vec<u32>,
}

/// Exclusive handle to the installed harness. Dropping (or
/// [`ChaosHandle::finish`]ing) it uninstalls the harness and releases
/// the process-wide installation lock.
pub struct ChaosHandle {
    harness: Arc<Harness>,
    _guard: MutexGuard<'static, ()>,
}

impl ChaosHandle {
    /// Uninstalls the harness and returns the recorded schedule.
    pub fn finish(self) -> ChaosOutcome {
        // Uninstall happens in Drop; grab the outcome first.
        self.harness.take_outcome()
    }

    /// Current virtual-clock value (ticks == scheduling decisions).
    pub fn ticks(&self) -> u64 {
        self.harness.ticks()
    }
}

impl Drop for ChaosHandle {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        SCHEDULING.store(false, Ordering::SeqCst);
        DISABLED_MASK.store(0, Ordering::SeqCst);
        *HARNESS.lock().unwrap_or_else(|e| e.into_inner()) = None;
        CTX.with(|c| {
            c.set(ThreadCtx {
                gen: 0,
                worker: u32::MAX,
            })
        });
    }
}

/// Installs a harness and makes the calling thread eligible (it can
/// probe faults and capture [`FaultToken`]s, but is not scheduled).
/// Blocks while another harness is installed anywhere in the process.
pub fn install(config: ChaosConfig) -> ChaosHandle {
    let guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let gen = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
    let harness = Arc::new(Harness::new(
        gen,
        config.seed,
        config.threads,
        config.faults.clone(),
        config.replay,
    ));
    *HARNESS.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&harness));
    DISABLED_MASK.store(config.faults.disables(), Ordering::SeqCst);
    CRASHED.store(false, Ordering::SeqCst);
    SCHEDULING.store(config.threads > 0, Ordering::SeqCst);
    CTX.with(|c| {
        c.set(ThreadCtx {
            gen,
            worker: u32::MAX,
        })
    });
    ACTIVE.store(true, Ordering::SeqCst);
    ChaosHandle {
        harness,
        _guard: guard,
    }
}

/// A registered scheduled worker; dropping it marks the worker
/// finished and hands the token on (panic-safe).
pub struct Worker {
    harness: Arc<Harness>,
    idx: usize,
}

impl Worker {
    /// This worker's index (0-based registration order).
    pub fn index(&self) -> usize {
        self.idx
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.harness.finish(self.idx);
        CTX.with(|c| {
            let mut ctx = c.get();
            ctx.worker = u32::MAX;
            c.set(ctx);
        });
    }
}

/// Registers the calling thread as a scheduled worker of the installed
/// harness, claiming the lowest free slot. Blocks until all configured
/// workers have registered and the scheduler makes its first grant.
/// Returns `None` when no scheduling harness is installed.
///
/// The claimed index depends on thread startup order; when decision
/// sequences must be comparable across runs, claim a fixed slot with
/// [`register_worker_as`] instead.
pub fn register_worker() -> Option<Worker> {
    register_slot(None)
}

/// Like [`register_worker`], but claims worker slot `slot`
/// (0-based, `< ChaosConfig::threads`). Panics if the slot is out of
/// range or already claimed. This pins the workload's worker identity
/// to the schedule's decision values independent of OS thread startup
/// order — required for cross-run determinism and replay.
pub fn register_worker_as(slot: usize) -> Option<Worker> {
    register_slot(Some(slot))
}

fn register_slot(slot: Option<usize>) -> Option<Worker> {
    if !SCHEDULING.load(Ordering::Acquire) {
        return None;
    }
    let harness = current_harness()?;
    let gen = harness.gen;
    let idx = harness.register(slot);
    CTX.with(|c| {
        c.set(ThreadCtx {
            gen,
            worker: idx as u32,
        })
    });
    Some(Worker { harness, idx })
}

/// A scheduling/fault yield point. One relaxed load when no harness is
/// installed; for a scheduled worker of the live harness it is a
/// scheduling decision (the worker may be preempted or delayed here).
#[inline]
pub fn yield_point(site: Site) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    yield_point_slow(site);
}

#[cold]
fn yield_point_slow(site: Site) {
    let Some(ctx) = eligible_ctx() else { return };
    if ctx.worker == u32::MAX {
        return;
    }
    if let Some(h) = current_harness() {
        if h.gen == ctx.gen {
            h.yield_at(ctx.worker as usize, site);
        }
    }
}

/// Probes the fault plane at an I/O site. Hit counting is per-site and
/// deterministic; only threads participating in the live harness
/// consume hits. Returns the armed fault for this hit, if any.
#[inline]
pub fn fault_at(site: Site) -> Option<FaultKind> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    fault_at_slow(site)
}

#[cold]
fn fault_at_slow(site: Site) -> Option<FaultKind> {
    let ctx = eligible_ctx()?;
    let h = current_harness()?;
    (h.gen == ctx.gen).then(|| h.probe(site)).flatten()
}

/// True when the mechanism guarded by `site` is switched off by a
/// `FaultKind::Disable` in the live harness (participating threads
/// only).
#[inline]
pub fn disabled_at(site: Site) -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    eligible_ctx().is_some() && DISABLED_MASK.load(Ordering::Relaxed) & (1 << site.index()) != 0
}

/// True when the calling thread participates in a *scheduling* harness
/// — components switch to their deterministic variants (inline WAL,
/// cooperative lock waits) when this holds.
#[inline]
pub fn scheduled_session() -> bool {
    if !ACTIVE.load(Ordering::Relaxed) || !SCHEDULING.load(Ordering::Relaxed) {
        return false;
    }
    eligible_ctx().is_some()
}

/// True once a `FaultKind::Crash` fired in the live harness. Workers
/// poll this to drain after a simulated crash.
#[inline]
pub fn crashed() -> bool {
    ACTIVE.load(Ordering::Relaxed) && CRASHED.load(Ordering::Relaxed)
}

/// A capability for background threads owned by a participating
/// component (e.g. the group-commit flusher) to probe the fault plane
/// of the harness that was live when the token was captured. Probes
/// through a stale token (harness since uninstalled) return `None`.
#[derive(Clone)]
pub struct FaultToken {
    harness: Arc<Harness>,
    gen: u64,
}

impl std::fmt::Debug for FaultToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultToken")
            .field("gen", &self.gen)
            .finish()
    }
}

impl FaultToken {
    fn live(&self) -> bool {
        ACTIVE.load(Ordering::Relaxed) && GENERATION.load(Ordering::Acquire) == self.gen
    }

    /// Probes the fault plane (same counters as [`fault_at`]).
    pub fn fault_at(&self, site: Site) -> Option<FaultKind> {
        self.live().then(|| self.harness.probe(site)).flatten()
    }

    /// Records that a simulated crash fired (see [`crashed`]).
    pub fn note_crash(&self) {
        if self.live() {
            self.harness.crashed.store(true, Ordering::Relaxed);
            CRASHED.store(true, Ordering::SeqCst);
        }
    }
}

/// Captures a [`FaultToken`] for the live harness; `None` unless the
/// calling thread participates in it.
pub fn fault_token() -> Option<FaultToken> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let ctx = eligible_ctx()?;
    let h = current_harness()?;
    (h.gen == ctx.gen).then_some(FaultToken {
        harness: h,
        gen: ctx.gen,
    })
}

/// Records that a simulated crash fired (participating threads).
pub fn note_crash() {
    if let Some(t) = fault_token() {
        t.note_crash();
    }
}

/// Greedy schedule minimization: repeatedly tries dropping chunks of
/// the decision sequence (halving the chunk size down to single
/// decisions, ddmin-style) and keeps any candidate for which `fails`
/// still reports the anomaly. `budget` caps the number of candidate
/// runs. Tolerant replay in the scheduler (unrunnable picks fall back
/// to the first runnable worker) is what makes elided sequences still
/// meaningful.
pub fn minimize_decisions(
    decisions: &[u32],
    mut budget: usize,
    mut fails: impl FnMut(&[u32]) -> bool,
) -> Vec<u32> {
    let mut best = decisions.to_vec();
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < best.len() && budget > 0 {
            let end = (i + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - i));
            candidate.extend_from_slice(&best[..i]);
            candidate.extend_from_slice(&best[end..]);
            budget -= 1;
            if fails(&candidate) {
                best = candidate;
                // Re-test from the same index: the tail shifted left.
            } else {
                i = end;
            }
        }
        if chunk == 1 || budget == 0 {
            return best;
        }
        chunk = (chunk / 2).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn disabled_hooks_are_no_ops() {
        // No harness installed: everything is inert.
        yield_point(Site::TxnStart);
        assert_eq!(fault_at(Site::WalAppend), None);
        assert!(!disabled_at(Site::CommitPublishWait));
        assert!(!scheduled_session());
        assert!(!crashed());
        assert!(register_worker().is_none());
        assert!(fault_token().is_none());
    }

    #[test]
    fn scheduled_run_is_deterministic_and_serialized() {
        let run = |seed: u64, replay: Vec<u32>| {
            let handle = install(ChaosConfig {
                seed,
                threads: 3,
                replay,
                ..ChaosConfig::default()
            });
            let in_section = AtomicUsize::new(0);
            let order = Mutex::new(Vec::new());
            std::thread::scope(|s| {
                for t in 0..3u32 {
                    let in_section = &in_section;
                    let order = &order;
                    s.spawn(move || {
                        let worker = register_worker().expect("scheduling harness");
                        for _ in 0..10 {
                            // Exactly one worker runs at a time.
                            assert_eq!(in_section.fetch_add(1, Ordering::SeqCst), 0);
                            order.lock().unwrap().push(t);
                            in_section.fetch_sub(1, Ordering::SeqCst);
                            yield_point(Site::TxnStart);
                        }
                        drop(worker);
                    });
                }
            });
            let outcome = handle.finish();
            (order.into_inner().unwrap(), outcome)
        };
        let (order1, out1) = run(7, Vec::new());
        let (order2, out2) = run(7, Vec::new());
        assert_eq!(order1, order2, "same seed, same interleaving");
        assert_eq!(out1, out2);
        assert!(out1.ticks > 0);
        // Replaying the recorded decisions reproduces the run exactly.
        let (order3, out3) = run(999, out1.decisions.clone());
        assert_eq!(order1, order3, "replay overrides the seed");
        assert_eq!(out1.trace, out3.trace);
        // A different seed explores a different interleaving (with 30
        // decisions over 3 workers a collision is vanishingly rare).
        let (order4, _) = run(8, Vec::new());
        assert_ne!(order1, order4, "different seed, different schedule");
    }

    #[test]
    fn delay_fault_deschedules_at_the_site() {
        let handle = install(ChaosConfig {
            seed: 1,
            threads: 2,
            faults: FaultPlan::of([FaultSpec::once(Site::TxnBackoff, 0, FaultKind::Delay(50))]),
            ..ChaosConfig::default()
        });
        let order = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..2u32 {
                let order = &order;
                s.spawn(move || {
                    let _worker = register_worker().unwrap();
                    // Worker 0 trips the delay; worker 1 keeps running.
                    if t == 0 {
                        yield_point(Site::TxnBackoff);
                    }
                    for _ in 0..5 {
                        order.lock().unwrap().push(t);
                        yield_point(Site::TxnStart);
                    }
                });
            }
        });
        let outcome = handle.finish();
        // The delay consumed virtual time beyond the plain decisions.
        assert!(
            outcome.ticks >= 50,
            "ticks {} cover the delay",
            outcome.ticks
        );
        assert!(!outcome.crashed);
    }

    #[test]
    fn fault_only_mode_counts_hits_per_site() {
        let handle = install(ChaosConfig {
            seed: 0,
            threads: 0,
            faults: FaultPlan::of([
                FaultSpec::once(Site::WalFlushFsync, 1, FaultKind::IoError),
                FaultSpec::always(Site::CommitPublishWait, FaultKind::Disable),
            ]),
            ..ChaosConfig::default()
        });
        assert!(!scheduled_session(), "fault-only mode never schedules");
        assert_eq!(fault_at(Site::WalFlushFsync), None, "hit 0 unarmed");
        assert_eq!(fault_at(Site::WalFlushFsync), Some(FaultKind::IoError));
        assert_eq!(fault_at(Site::WalFlushFsync), None, "window passed");
        assert!(disabled_at(Site::CommitPublishWait));
        assert!(!disabled_at(Site::WatermarkWait));
        // A token keeps working on the flusher's behalf…
        let token = fault_token().expect("installer thread is eligible");
        assert_eq!(token.fault_at(Site::WalFlushWrite), None);
        token.note_crash();
        assert!(crashed());
        drop(handle);
        // …but goes inert once the harness is gone.
        assert_eq!(token.fault_at(Site::WalFlushWrite), None);
        assert!(!crashed());
    }

    #[test]
    fn minimize_shrinks_to_the_failing_core() {
        // A "schedule" fails iff it still contains both a 2 and a 7.
        let decisions: Vec<u32> = (0..64).map(|i| i % 10).collect();
        let runs = std::cell::Cell::new(0usize);
        let min = minimize_decisions(&decisions, 10_000, |d| {
            runs.set(runs.get() + 1);
            d.contains(&2) && d.contains(&7)
        });
        assert!(min.len() <= 2, "minimized to the core: {min:?}");
        assert!(min.contains(&2) && min.contains(&7));
        assert!(runs.get() > 0);
    }
}
