//! Self-contained deterministic RNG (splitmix64).
//!
//! The harness owns all nondeterminism, including its own randomness —
//! and the crate is dependency-free, so the generator is hand-rolled.
//! Splitmix64 is small, full-period over its 64-bit state, and more
//! than good enough for picking the next runnable thread.

/// Splitmix64 stream seeded from a schedule seed.
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform pick in `0..n` (n > 0). Modulo bias is irrelevant for
    /// thread counts this small.
    pub(crate) fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
