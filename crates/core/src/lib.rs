//! # finecc-core — access vectors, TAVs, and commutativity matrices
//!
//! The paper's primary contribution (Sections 4–5.1), implemented exactly:
//!
//! * [`mode`] — the mode lattice `Null < Read < Write` and the classical
//!   compatibility relation of **Table 1** (Definition 2).
//! * [`av`] — **access vectors** (Definition 3) with the lattice join
//!   (Definition 4) and the commutativity relation (Definition 5).
//! * [`mod@extract`] — per-definition **direct access vectors** plus the
//!   `DSC`/`PSC` self-call sets (Definitions 6–8), derived from the
//!   `finecc-lang` static analysis.
//! * [`graph`] — the per-class **late-binding resolution graph**
//!   (Definition 9), with a DOT export reproducing **Figure 2**.
//! * [`tarjan`] — iterative Tarjan strong-components (the paper cites
//!   [Tarjan 72] for the linear-time algorithm).
//! * [`compiler`] — **transitive access vectors** (Definition 10) via a
//!   single SCC pass per class, and [`compile`], the end-to-end schema
//!   compiler.
//! * [`commut`] — the generated per-class commutativity matrices
//!   (**Table 2**), i.e. the translation of access vectors into plain
//!   access modes (§5.1) so run-time checks are one table lookup.
//! * [`recovery`] — access vectors as projection patterns for
//!   before-images (the recovery remark at the end of §3).

pub mod adhoc;
pub mod av;
pub mod commut;
pub mod compiler;
pub mod error;
pub mod extract;
pub mod graph;
pub mod incremental;
pub mod mode;
pub mod recovery;
pub mod tarjan;

pub use adhoc::{AdHocError, AdHocRelations, AppliedReport};
pub use av::AccessVector;
pub use commut::ClassTable;
pub use compiler::{compile, CompiledSchema};
pub use error::CompileError;
pub use extract::{extract, Extraction};
pub use graph::LbrGraph;
pub use incremental::{recompile, RecompileReport};
pub use mode::AccessMode;
pub use recovery::{before_image, write_projection};
