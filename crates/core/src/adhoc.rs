//! Ad hoc commutativity relations (§3).
//!
//! The paper: *"we do not discard the use of ad hoc commutativity
//! relations. It is of interest for predefined types or classes, as the
//! 'Integer' type or the 'Collection' class, to be delivered with high
//! commutativity performances (See, for example, [O'Neil's Escrow
//! method].)"* — and §7: *"finer techniques are not discarded of our
//! framework."*
//!
//! [`AdHocRelations`] lets a library author declare that two methods of a
//! class commute *semantically* even though their access vectors conflict
//! syntactically (the canonical example: Escrow-style `inc`/`dec` on a
//! counter both write the same field, yet addition commutes). Grants are
//! validated and then **propagated down the hierarchy**, but only into
//! subclasses that inherit *both* methods unchanged — an override voids
//! the declaration there, because the new code may not preserve the
//! semantic argument.
//!
//! Soundness is split exactly as in the literature: the engine guarantees
//! the grant is applied consistently (symmetric, hierarchy-aware,
//! add-only); *state-based* correctness of the declared commutativity —
//! e.g. that increments need no read-modify-write isolation, or that an
//! escrow quantity test guards the operation — is the declarer's
//! obligation, as it is for every type-specific locking scheme \[20, 23,
//! 25].

use crate::compiler::CompiledSchema;
use finecc_model::{ClassId, Schema};
use std::collections::BTreeMap;
use std::fmt;

/// A declaration error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdHocError {
    /// The named class does not exist.
    UnknownClass(String),
    /// The named method is not visible in the class.
    UnknownMethod {
        /// The class.
        class: String,
        /// The missing method.
        method: String,
    },
}

impl fmt::Display for AdHocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdHocError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            AdHocError::UnknownMethod { class, method } => {
                write!(f, "no method `{method}` visible in class `{class}`")
            }
        }
    }
}

impl std::error::Error for AdHocError {}

/// A set of hand-declared commutativity grants.
#[derive(Clone, Debug, Default)]
pub struct AdHocRelations {
    /// class name → unordered method-name pairs declared commuting.
    grants: BTreeMap<String, Vec<(String, String)>>,
}

/// What [`AdHocRelations::apply`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedReport {
    /// `(class, a, b)` cells flipped from `no` to `yes`.
    pub granted: Vec<(ClassId, String, String)>,
    /// Grants that were already commuting (no-ops).
    pub redundant: usize,
    /// Subclass propagations skipped because one of the methods is
    /// overridden there.
    pub voided_by_override: Vec<(ClassId, String, String)>,
}

impl AdHocRelations {
    /// An empty declaration set.
    pub fn new() -> AdHocRelations {
        AdHocRelations::default()
    }

    /// Declares that `a` and `b` (possibly equal, e.g. `inc`/`inc`)
    /// commute on `class` and its unchanged subclasses.
    pub fn declare(&mut self, class: &str, a: &str, b: &str) -> &mut Self {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let list = self.grants.entry(class.to_string()).or_default();
        let pair = (a.to_string(), b.to_string());
        if !list.contains(&pair) {
            list.push(pair);
        }
        self
    }

    /// Validates every declaration against the schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), AdHocError> {
        for (class, pairs) in &self.grants {
            let cid = schema
                .class_by_name(class)
                .ok_or_else(|| AdHocError::UnknownClass(class.clone()))?;
            for (a, b) in pairs {
                for m in [a, b] {
                    if schema.resolve_method(cid, m).is_none() {
                        return Err(AdHocError::UnknownMethod {
                            class: class.clone(),
                            method: m.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies the grants to a compiled schema, patching the generated
    /// matrices. Propagates each grant to every class of the declaring
    /// class's domain whose resolutions of both methods are *identical*
    /// to the declaring class's (i.e. not overridden below it).
    pub fn apply(
        &self,
        schema: &Schema,
        compiled: &mut CompiledSchema,
    ) -> Result<AppliedReport, AdHocError> {
        self.validate(schema)?;
        let mut report = AppliedReport::default();
        for (class, pairs) in &self.grants {
            let root = schema.class_by_name(class).expect("validated");
            for (a, b) in pairs {
                let mid_a = schema.resolve_method(root, a).expect("validated");
                let mid_b = schema.resolve_method(root, b).expect("validated");
                for &c in schema.domain(root) {
                    let same_defs = schema.resolve_method(c, a) == Some(mid_a)
                        && schema.resolve_method(c, b) == Some(mid_b);
                    if !same_defs {
                        report.voided_by_override.push((c, a.clone(), b.clone()));
                        continue;
                    }
                    let table = compiled.class_mut(c);
                    let (i, j) = (
                        table.index_of(a).expect("resolved above"),
                        table.index_of(b).expect("resolved above"),
                    );
                    if table.commute(i, j) {
                        report.redundant += 1;
                    } else {
                        table.grant_commute(i, j);
                        report.granted.push((c, a.clone(), b.clone()));
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use finecc_lang::build_schema;

    const ESCROW: &str = r#"
class counter {
  fields { total: integer; }
  method inc(n) is total := total + n end
  method dec(n) is total := total - n end
  method get is return total end
}
class audited inherits counter {
  fields { log: integer; }
  method inc(n) is redefined as
    send counter.inc(n) to self;
    log := log + 1
  end
}
class plain inherits counter {
  fields { tag: integer; }
  method set_tag(t) is tag := t end
}
"#;

    fn setup() -> (finecc_model::Schema, CompiledSchema) {
        let (s, b) = build_schema(ESCROW).unwrap();
        let c = compile(&s, &b).unwrap();
        (s, c)
    }

    #[test]
    fn grant_flips_generated_conflict() {
        let (s, mut comp) = setup();
        let counter = s.class_by_name("counter").unwrap();
        let t = comp.class(counter);
        let (inc, dec) = (t.index_of("inc").unwrap(), t.index_of("dec").unwrap());
        assert!(!t.commute(inc, dec), "generated: W-W conflict");
        assert!(!t.commute(inc, inc));

        let mut adhoc = AdHocRelations::new();
        adhoc.declare("counter", "inc", "dec");
        adhoc.declare("counter", "inc", "inc");
        adhoc.declare("counter", "dec", "dec");
        let report = adhoc.apply(&s, &mut comp).unwrap();

        let t = comp.class(counter);
        assert!(t.commute(inc, dec), "escrow grant applied");
        assert!(t.commute(inc, inc));
        assert!(t.commute(dec, dec));
        // `get` still conflicts with both (reads the total).
        let get = t.index_of("get").unwrap();
        assert!(!t.commute(inc, get));
        assert!(!report.granted.is_empty());
    }

    #[test]
    fn propagation_respects_overrides() {
        let (s, mut comp) = setup();
        let mut adhoc = AdHocRelations::new();
        adhoc.declare("counter", "inc", "dec");
        let report = adhoc.apply(&s, &mut comp).unwrap();

        // `plain` inherits both unchanged → granted there too.
        let plain = s.class_by_name("plain").unwrap();
        let tp = comp.class(plain);
        assert_eq!(tp.commute_names("inc", "dec"), Some(true));

        // `audited` overrides inc → the grant is voided there.
        let audited = s.class_by_name("audited").unwrap();
        let ta = comp.class(audited);
        assert_eq!(ta.commute_names("inc", "dec"), Some(false));
        assert!(report
            .voided_by_override
            .iter()
            .any(|(c, _, _)| *c == audited));
        assert!(report.granted.iter().any(|(c, _, _)| *c == plain));
    }

    #[test]
    fn validation_errors() {
        let (s, mut comp) = setup();
        let mut adhoc = AdHocRelations::new();
        adhoc.declare("ghost", "a", "b");
        assert_eq!(
            adhoc.apply(&s, &mut comp).unwrap_err(),
            AdHocError::UnknownClass("ghost".into())
        );
        let mut adhoc = AdHocRelations::new();
        adhoc.declare("counter", "inc", "nope");
        assert!(matches!(
            adhoc.apply(&s, &mut comp).unwrap_err(),
            AdHocError::UnknownMethod { .. }
        ));
    }

    #[test]
    fn redundant_grants_counted_and_symmetry_kept() {
        let (s, mut comp) = setup();
        let mut adhoc = AdHocRelations::new();
        // get/set_tag… get commutes with set_tag already (disjoint).
        adhoc.declare("plain", "get", "set_tag");
        let report = adhoc.apply(&s, &mut comp).unwrap();
        assert_eq!(report.redundant, 1);
        assert!(report.granted.is_empty());
        let plain = s.class_by_name("plain").unwrap();
        assert!(comp.class(plain).is_symmetric());
    }

    #[test]
    fn declare_is_idempotent_and_orderless() {
        let mut a = AdHocRelations::new();
        a.declare("c", "x", "y")
            .declare("c", "y", "x")
            .declare("c", "x", "y");
        assert_eq!(a.grants["c"].len(), 1);
    }
}
