//! Access vectors as recovery projection patterns.
//!
//! The paper (§3): *"Recovery uses access vectors as projection patterns
//! for extracting the modified parts of instances."* Before a method with
//! transitive access vector `t` runs on an instance, only the fields
//! `t` marks `Write` can change — so the before-image needed for undo is
//! the projection of the instance onto those fields, not a full copy.
//! `finecc-store` builds its undo log on these helpers.

use crate::av::AccessVector;
use finecc_model::{FieldId, Instance, Schema, Value};

/// The fields a method may modify, i.e. the `Write` projection of its
/// (transitive) access vector, restricted to fields actually visible in
/// the instance's class (a TAV computed for a subclass can mention fields
/// the projected instance, of a superclass, does not have — those are
/// skipped).
pub fn write_projection(av: &AccessVector) -> Vec<FieldId> {
    av.write_fields().collect()
}

/// Extracts the before-image of `instance` under access vector `av`:
/// the current values of every visible `Write` field.
pub fn before_image(
    schema: &Schema,
    instance: &Instance,
    av: &AccessVector,
) -> Vec<(FieldId, Value)> {
    av.write_fields()
        .filter_map(|f| instance.get(schema, f).map(|v| (f, v.clone())))
        .collect()
}

/// Applies a before-image back onto `instance` (undo). Returns the number
/// of fields restored.
pub fn restore_image(
    schema: &Schema,
    instance: &mut Instance,
    image: &[(FieldId, Value)],
) -> usize {
    let mut n = 0;
    for (f, v) in image {
        if instance.set(schema, *f, v.clone()).is_some() {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::AccessMode::*;
    use finecc_model::{FieldType, SchemaBuilder};

    fn setup() -> (Schema, Instance, AccessVector) {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Int)
            .field("z", FieldType::Str);
        let s = b.finish().unwrap();
        let a = s.class_by_name("a").unwrap();
        let inst = Instance::new(&s, a);
        let x = s.resolve_field(a, "x").unwrap();
        let y = s.resolve_field(a, "y").unwrap();
        let z = s.resolve_field(a, "z").unwrap();
        let av = AccessVector::from_pairs([(x, Write), (y, Read), (z, Write)]);
        (s, inst, av)
    }

    #[test]
    fn projection_is_write_fields_only() {
        let (s, _, av) = setup();
        let a = s.class_by_name("a").unwrap();
        let proj = write_projection(&av);
        assert_eq!(proj.len(), 2);
        assert!(proj.contains(&s.resolve_field(a, "x").unwrap()));
        assert!(proj.contains(&s.resolve_field(a, "z").unwrap()));
    }

    #[test]
    fn image_roundtrip_restores_state() {
        let (s, mut inst, av) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let z = s.resolve_field(a, "z").unwrap();
        inst.set(&s, x, Value::Int(7)).unwrap();
        inst.set(&s, z, Value::str("orig")).unwrap();

        let image = before_image(&s, &inst, &av);
        assert_eq!(image.len(), 2);

        inst.set(&s, x, Value::Int(99)).unwrap();
        inst.set(&s, z, Value::str("smashed")).unwrap();
        let restored = restore_image(&s, &mut inst, &image);
        assert_eq!(restored, 2);
        assert_eq!(inst.get(&s, x), Some(&Value::Int(7)));
        assert_eq!(inst.get(&s, z), Some(&Value::str("orig")));
    }

    #[test]
    fn invisible_fields_skipped() {
        // An AV mentioning subclass fields projects onto a superclass
        // instance without error.
        let mut b = SchemaBuilder::new();
        b.class("p").field("x", FieldType::Int);
        b.class("q").inherits("p").field("extra", FieldType::Int);
        let s = b.finish().unwrap();
        let p = s.class_by_name("p").unwrap();
        let q = s.class_by_name("q").unwrap();
        let inst = Instance::new(&s, p);
        let extra = s.resolve_field(q, "extra").unwrap();
        let x = s.resolve_field(p, "x").unwrap();
        let av = AccessVector::from_pairs([(x, Write), (extra, Write)]);
        let image = before_image(&s, &inst, &av);
        assert_eq!(image.len(), 1, "only the visible field is captured");
    }

    #[test]
    fn read_only_vector_needs_no_image() {
        let (s, inst, _) = setup();
        let a = s.class_by_name("a").unwrap();
        let y = s.resolve_field(a, "y").unwrap();
        let av = AccessVector::from_pairs([(y, Read)]);
        assert!(before_image(&s, &inst, &av).is_empty());
    }
}
