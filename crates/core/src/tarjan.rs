//! Iterative Tarjan strongly-connected components.
//!
//! The paper's Definition 10 needs the TAV of every vertex reachable in
//! the late-binding resolution graph; recursion through methods creates
//! directed cycles whose members share one TAV (their reachable sets are
//! identical, §4.3). Tarjan's algorithm \[24\] gives the components in
//! **reverse topological order** (every successor component of a vertex is
//! emitted before the vertex's own component), which is exactly the order
//! a single-pass TAV accumulation needs.
//!
//! The implementation is iterative (explicit stack) so that pathological
//! schemas — thousand-deep self-call chains from the workload generator —
//! cannot overflow the call stack.

/// Computes the strongly connected components of a directed graph in
/// adjacency-list form. Returns the components **sink-first** (reverse
/// topological order of the condensation); each component lists its
/// vertices in discovery order.
pub fn sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut out: Vec<Vec<u32>> = Vec::new();

    // Explicit DFS frames: (vertex, next child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vu = v as usize;
            if *child < adj[vu].len() {
                let w = adj[vu][*child];
                *child += 1;
                let wu = w as usize;
                if index[wu] == UNVISITED {
                    index[wu] = next_index;
                    lowlink[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    frames.push((w, 0));
                } else if on_stack[wu] {
                    lowlink[vu] = lowlink[vu].min(index[wu]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let pu = p as usize;
                    lowlink[pu] = lowlink[pu].min(lowlink[vu]);
                }
                if lowlink[vu] == index[vu] {
                    // v is the root of a component.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("root is on the stack");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Condenses a graph given its SCCs: returns, per vertex, its component
/// index, plus per-component out-edges (deduplicated, self-loops removed).
pub fn condense(adj: &[Vec<u32>], comps: &[Vec<u32>]) -> (Vec<u32>, Vec<Vec<u32>>) {
    let mut comp_of = vec![0u32; adj.len()];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v as usize] = ci as u32;
        }
    }
    let mut cadj: Vec<Vec<u32>> = vec![Vec::new(); comps.len()];
    for (v, outs) in adj.iter().enumerate() {
        let cv = comp_of[v];
        for &w in outs {
            let cw = comp_of[w as usize];
            if cv != cw {
                cadj[cv as usize].push(cw);
            }
        }
    }
    for outs in &mut cadj {
        outs.sort_unstable();
        outs.dedup();
    }
    (comp_of, cadj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn normalize(mut comps: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort();
        comps
    }

    #[test]
    fn singletons_in_a_dag() {
        // 0 → 1 → 2
        let adj = vec![vec![1], vec![2], vec![]];
        let comps = sccs(&adj);
        assert_eq!(normalize(comps.clone()), vec![vec![0], vec![1], vec![2]]);
        // Reverse topological: 2 first, 0 last.
        assert_eq!(comps[0], vec![2]);
        assert_eq!(comps[2], vec![0]);
    }

    #[test]
    fn simple_cycle() {
        // 0 → 1 → 2 → 0 is one component.
        let adj = vec![vec![1], vec![2], vec![0]];
        let comps = sccs(&adj);
        assert_eq!(comps.len(), 1);
        assert_eq!(normalize(comps), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_cycles_bridged() {
        // {0,1} → {2,3}; plus isolated 4.
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2], vec![]];
        let comps = sccs(&adj);
        assert_eq!(
            normalize(comps.clone()),
            vec![vec![0, 1], vec![2, 3], vec![4]]
        );
        // {2,3} must come before {0,1}.
        let pos = |needle: &[u32]| {
            comps
                .iter()
                .position(|c| {
                    let s: HashSet<_> = c.iter().collect();
                    needle.iter().all(|x| s.contains(x))
                })
                .unwrap()
        };
        assert!(pos(&[2, 3]) < pos(&[0, 1]));
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let adj = vec![vec![0]];
        let comps = sccs(&adj);
        assert_eq!(comps, vec![vec![0]]);
    }

    #[test]
    fn reverse_topological_property_holds() {
        // Random-ish fixed graph; check: for every edge u→w in different
        // comps, comp(w) emitted before comp(u).
        let adj = vec![
            vec![1, 4],
            vec![2],
            vec![0, 3],
            vec![5],
            vec![5, 3],
            vec![],
            vec![3, 7],
            vec![6],
        ];
        let comps = sccs(&adj);
        let (comp_of, _) = condense(&adj, &comps);
        for (u, outs) in adj.iter().enumerate() {
            for &w in outs {
                let (cu, cw) = (comp_of[u], comp_of[w as usize]);
                if cu != cw {
                    assert!(cw < cu, "edge {u}→{w}: component order violated");
                }
            }
        }
    }

    #[test]
    fn condensation_is_acyclic_dag() {
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![2, 4], vec![]];
        let comps = sccs(&adj);
        let (_, cadj) = condense(&adj, &comps);
        // Every condensation edge goes to a smaller (earlier) index.
        for (c, outs) in cadj.iter().enumerate() {
            for &d in outs {
                assert!((d as usize) < c);
            }
        }
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 100_000-vertex path: recursive Tarjan would overflow here.
        let n = 100_000;
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i + 1 < n {
                    vec![(i + 1) as u32]
                } else {
                    vec![]
                }
            })
            .collect();
        let comps = sccs(&adj);
        assert_eq!(comps.len(), n);
        assert_eq!(comps[0], vec![(n - 1) as u32]);
    }

    #[test]
    fn big_cycle() {
        let n = 10_000u32;
        let adj: Vec<Vec<u32>> = (0..n).map(|i| vec![(i + 1) % n]).collect();
        let comps = sccs(&adj);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n as usize);
    }

    #[test]
    fn empty_graph() {
        assert!(sccs(&[]).is_empty());
    }
}
