//! Per-definition extraction of Definitions 6–8.
//!
//! Because our access vectors are sparse and a method definition's code is
//! fixed, the *direct* artifacts depend only on the definition site:
//!
//! * `DAV` — Definition 6(ii) for the defining class; 6(i) (inheritance
//!   pads with `Null`) is the identity on sparse vectors.
//! * `DSC` — Definition 7; stored as *names*, because late binding
//!   re-resolves them in each receiver class (Definition 9 applies
//!   `{C} × DSC`).
//! * `PSC` — Definition 8; resolved to `(ancestor class, definition)`
//!   pairs immediately, since a prefixed call's target never depends on
//!   the receiver.

use crate::av::AccessVector;
use crate::error::CompileError;
use finecc_lang::{analyze, MethodBodies};
use finecc_model::{ClassId, FieldId, MethodId, Schema};

/// The compile-time facts for every method definition site, indexed by
/// [`MethodId`].
#[derive(Clone, Debug, Default)]
pub struct Extraction {
    /// Direct access vectors (Definition 6).
    pub davs: Vec<AccessVector>,
    /// Direct self-calls (Definition 7), as names, sorted.
    pub dscs: Vec<Vec<String>>,
    /// Prefixed self-calls (Definition 8), resolved to the definition the
    /// prefix names, sorted.
    pub pscs: Vec<Vec<(ClassId, MethodId)>>,
    /// Messages sent through reference fields: `(field, method name)`.
    pub external_sends: Vec<Vec<(FieldId, String)>>,
}

impl Extraction {
    /// The direct access vector of a definition.
    pub fn dav(&self, m: MethodId) -> &AccessVector {
        &self.davs[m.index()]
    }

    /// The direct self-call names of a definition.
    pub fn dsc(&self, m: MethodId) -> &[String] {
        &self.dscs[m.index()]
    }

    /// The prefixed self-calls of a definition.
    pub fn psc(&self, m: MethodId) -> &[(ClassId, MethodId)] {
        &self.pscs[m.index()]
    }
}

/// Runs the static analysis of every method definition in the schema.
pub fn extract(schema: &Schema, bodies: &MethodBodies) -> Result<Extraction, CompileError> {
    let n = schema.method_count();
    let mut ex = Extraction {
        davs: Vec::with_capacity(n),
        dscs: Vec::with_capacity(n),
        pscs: Vec::with_capacity(n),
        external_sends: Vec::with_capacity(n),
    };
    for mi in schema.methods() {
        let facts =
            analyze(schema, mi.owner, &mi.sig.params, bodies.body(mi.id)).map_err(|cause| {
                CompileError::Analysis {
                    class: mi.owner,
                    method: mi.id,
                    name: mi.sig.name.clone(),
                    cause,
                }
            })?;
        ex.davs.push(AccessVector::from_reads_writes(
            facts.reads.iter().copied(),
            facts.writes.iter().copied(),
        ));
        ex.dscs.push(facts.self_calls.iter().cloned().collect());
        let mut pscs: Vec<(ClassId, MethodId)> = facts
            .prefixed_calls
            .iter()
            .map(|(c, name)| {
                let mid = schema
                    .resolve_method(*c, name)
                    .expect("analysis validated prefixed targets");
                (*c, mid)
            })
            .collect();
        pscs.sort_unstable();
        pscs.dedup();
        ex.pscs.push(pscs);
        ex.external_sends
            .push(facts.external_sends.iter().cloned().collect());
    }
    Ok(ex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::AccessMode;
    use finecc_lang::parser::{build_schema, FIGURE1_SOURCE};

    #[test]
    fn figure1_davs_match_paper() {
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        let ex = extract(&s, &b).unwrap();
        let c1 = s.class_by_name("c1").unwrap();
        let c2 = s.class_by_name("c2").unwrap();
        let fid = |c, n| s.resolve_field(c, n).unwrap();

        // DAV(c1,m2) = (Write f1, Read f2, Null f3)
        let m2c1 = s.resolve_method(c1, "m2").unwrap();
        let dav = ex.dav(m2c1);
        assert_eq!(dav.mode_of(fid(c1, "f1")), AccessMode::Write);
        assert_eq!(dav.mode_of(fid(c1, "f2")), AccessMode::Read);
        assert_eq!(dav.mode_of(fid(c1, "f3")), AccessMode::Null);

        // DAV(c2,m2) = (Null f1..f3, Write f4, Read f5, Null f6)
        let m2c2 = s.resolve_method(c2, "m2").unwrap();
        let dav = ex.dav(m2c2);
        assert_eq!(dav.mode_of(fid(c1, "f1")), AccessMode::Null);
        assert_eq!(dav.mode_of(fid(c2, "f4")), AccessMode::Write);
        assert_eq!(dav.mode_of(fid(c2, "f5")), AccessMode::Read);
        assert_eq!(dav.mode_of(fid(c2, "f6")), AccessMode::Null);

        // DAV(c2,m4) = (Read f5, Write f6)
        let m4 = s.resolve_method(c2, "m4").unwrap();
        let dav = ex.dav(m4);
        assert_eq!(dav.mode_of(fid(c2, "f5")), AccessMode::Read);
        assert_eq!(dav.mode_of(fid(c2, "f6")), AccessMode::Write);

        // DAV(c1,m1) = all Null, DSC = {m2, m3}.
        let m1 = s.resolve_method(c1, "m1").unwrap();
        assert!(ex.dav(m1).is_empty());
        assert_eq!(ex.dsc(m1), ["m2", "m3"]);
        assert!(ex.psc(m1).is_empty());

        // PSC(c2,m2) = {(c1, m2-in-c1)}.
        assert_eq!(ex.psc(m2c2), [(c1, m2c1)]);
        // m3 sends through f3.
        let m3 = s.resolve_method(c1, "m3").unwrap();
        assert_eq!(ex.external_sends[m3.index()].len(), 1);
    }

    #[test]
    fn analysis_error_is_contextualized() {
        let src = "class a { fields { x: integer; } method bad is ghost := 1 end }";
        let (s, b) = build_schema(src).unwrap();
        let err = extract(&s, &b).unwrap_err();
        let CompileError::Analysis { name, .. } = err;
        assert_eq!(name, "bad");
    }

    #[test]
    fn inherited_methods_share_extraction() {
        // The definition site is the unit: an inherited method has no
        // separate entry (Definition 6(i)/7(i)/8(i) are the identity).
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        let ex = extract(&s, &b).unwrap();
        assert_eq!(ex.davs.len(), s.method_count());
        let c1 = s.class_by_name("c1").unwrap();
        let c2 = s.class_by_name("c2").unwrap();
        // m1 resolves to the same definition in both classes.
        assert_eq!(
            s.resolve_method(c1, "m1").unwrap(),
            s.resolve_method(c2, "m1").unwrap()
        );
    }
}
