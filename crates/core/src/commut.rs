//! From access vectors to access modes (§5.1): the generated per-class
//! commutativity matrix.
//!
//! Locking with whole vectors would cost O(|FIELDS(C)|) per check; the
//! paper instead *names* each method's transitive access vector with a
//! small integer — the method's **access mode** in its class — and
//! materializes the commutativity relation as a boolean matrix. The
//! run-time check is then exactly one table lookup, as cheap as classical
//! read/write compatibility ("the parallelism which is allowed by access
//! modes is exactly the one which is permitted by access vectors").
//!
//! Table 2 of the paper is [`ClassTable::to_table_string`] for class c2.

use crate::av::AccessVector;
use finecc_model::{ClassId, MethodId};
use std::collections::HashMap;
use std::fmt;

/// The compiled concurrency-control artifact of one class: method access
/// modes (indices), their DAVs/TAVs, and the commutativity matrix.
#[derive(Clone, Debug)]
pub struct ClassTable {
    /// The class.
    pub class: ClassId,
    /// Class name (for rendering).
    pub class_name: String,
    /// Method names in `METHODS(C)` order (name-sorted); the position is
    /// the method's **access mode** in this class.
    pub method_names: Vec<String>,
    /// The definition site each name resolves to (late binding at the
    /// class level).
    pub method_ids: Vec<MethodId>,
    /// Direct access vectors of the resolved definitions, by mode index.
    pub davs: Vec<AccessVector>,
    /// Transitive access vectors (Definition 10), by mode index.
    pub tavs: Vec<AccessVector>,
    matrix: Vec<bool>,
    by_mid: HashMap<MethodId, u16>,
    by_name: HashMap<String, u16>,
}

impl ClassTable {
    /// Builds the table from resolved methods and their TAVs.
    /// `methods[i]` provides the name, definition and both vectors of
    /// access mode `i`.
    pub fn new(
        class: ClassId,
        class_name: String,
        methods: Vec<(String, MethodId, AccessVector, AccessVector)>,
    ) -> ClassTable {
        let n = methods.len();
        let mut method_names = Vec::with_capacity(n);
        let mut method_ids = Vec::with_capacity(n);
        let mut davs = Vec::with_capacity(n);
        let mut tavs = Vec::with_capacity(n);
        let mut by_mid = HashMap::with_capacity(n);
        let mut by_name = HashMap::with_capacity(n);
        for (i, (name, mid, dav, tav)) in methods.into_iter().enumerate() {
            by_mid.insert(mid, i as u16);
            by_name.insert(name.clone(), i as u16);
            method_names.push(name);
            method_ids.push(mid);
            davs.push(dav);
            tavs.push(tav);
        }
        let mut matrix = vec![false; n * n];
        for i in 0..n {
            for j in 0..=i {
                let c = tavs[i].commutes(&tavs[j]);
                matrix[i * n + j] = c;
                matrix[j * n + i] = c;
            }
        }
        ClassTable {
            class,
            class_name,
            method_names,
            method_ids,
            davs,
            tavs,
            matrix,
            by_mid,
            by_name,
        }
    }

    /// Number of access modes (= number of visible methods).
    pub fn mode_count(&self) -> usize {
        self.method_names.len()
    }

    /// The access mode index of a method name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).map(|&i| i as usize)
    }

    /// The access mode index of a resolved definition.
    pub fn index_of_mid(&self, mid: MethodId) -> Option<usize> {
        self.by_mid.get(&mid).map(|&i| i as usize)
    }

    /// The commutativity of two access modes — one table lookup.
    #[inline]
    pub fn commute(&self, i: usize, j: usize) -> bool {
        self.matrix[i * self.mode_count() + j]
    }

    /// Commutativity by method names.
    pub fn commute_names(&self, a: &str, b: &str) -> Option<bool> {
        Some(self.commute(self.index_of(a)?, self.index_of(b)?))
    }

    /// The transitive access vector of mode `i`.
    pub fn tav(&self, i: usize) -> &AccessVector {
        &self.tavs[i]
    }

    /// The direct access vector of mode `i`.
    pub fn dav(&self, i: usize) -> &AccessVector {
        &self.davs[i]
    }

    /// Renders the matrix exactly like the paper's Table 2: `yes` where
    /// the modes commute, `no` where they conflict.
    pub fn to_table_string(&self) -> String {
        let mut out = String::new();
        let w = self
            .method_names
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(2)
            .max(3);
        out.push_str(&" ".repeat(w + 1));
        for name in &self.method_names {
            out.push_str(&format!("{name:<w$} ", w = w));
        }
        out.push('\n');
        for (i, name) in self.method_names.iter().enumerate() {
            out.push_str(&format!("{name:<w$} ", w = w));
            for j in 0..self.mode_count() {
                let cell = if self.commute(i, j) { "yes" } else { "no" };
                out.push_str(&format!("{cell:<w$} ", w = w));
            }
            out.push('\n');
        }
        out
    }

    /// Grants commutativity between two access modes — the ad hoc
    /// override hook of §3 (e.g. Escrow-style increment/decrement).
    /// Symmetry is maintained. Overrides can only *add* parallelism; the
    /// generated conflicts they remove become the declarer's correctness
    /// obligation (see [`crate::adhoc`]).
    pub fn grant_commute(&mut self, i: usize, j: usize) {
        let n = self.mode_count();
        self.matrix[i * n + j] = true;
        self.matrix[j * n + i] = true;
    }

    /// `true` when the matrix is symmetric (always, by construction; used
    /// by property tests).
    pub fn is_symmetric(&self) -> bool {
        let n = self.mode_count();
        (0..n).all(|i| (0..n).all(|j| self.commute(i, j) == self.commute(j, i)))
    }
}

impl fmt::Display for ClassTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commutativity relation of class {}:\n{}",
            self.class_name,
            self.to_table_string()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::AccessMode::*;
    use finecc_model::FieldId;

    fn av(pairs: &[(u32, crate::mode::AccessMode)]) -> AccessVector {
        AccessVector::from_pairs(pairs.iter().map(|&(i, m)| (FieldId(i), m)))
    }

    fn sample() -> ClassTable {
        // Hand-built vectors matching §4.3's c2 TAVs.
        let m1 = av(&[(0, Write), (1, Read), (2, Read), (3, Write), (4, Read)]);
        let m2 = av(&[(0, Write), (1, Read), (3, Write), (4, Read)]);
        let m3 = av(&[(1, Read), (2, Read)]);
        let m4 = av(&[(4, Read), (5, Write)]);
        ClassTable::new(
            ClassId(1),
            "c2".into(),
            vec![
                ("m1".into(), MethodId(0), AccessVector::empty(), m1),
                ("m2".into(), MethodId(3), AccessVector::empty(), m2),
                ("m3".into(), MethodId(2), AccessVector::empty(), m3),
                ("m4".into(), MethodId(4), AccessVector::empty(), m4),
            ],
        )
    }

    #[test]
    fn table2_truth_values() {
        let t = sample();
        let expect = [
            // m1    m2     m3    m4    — Table 2 of the paper.
            [false, false, true, true],
            [false, false, true, true],
            [true, true, true, true],
            [true, true, true, false],
        ];
        for (i, row) in expect.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(
                    t.commute(i, j),
                    want,
                    "({}, {})",
                    t.method_names[i],
                    t.method_names[j]
                );
            }
        }
    }

    #[test]
    fn lookups() {
        let t = sample();
        assert_eq!(t.index_of("m3"), Some(2));
        assert_eq!(t.index_of("zz"), None);
        assert_eq!(t.index_of_mid(MethodId(3)), Some(1));
        assert_eq!(t.index_of_mid(MethodId(99)), None);
        assert_eq!(t.commute_names("m2", "m4"), Some(true));
        assert_eq!(t.commute_names("m1", "m2"), Some(false));
        assert_eq!(t.commute_names("m1", "zz"), None);
    }

    #[test]
    fn symmetric_and_rendered() {
        let t = sample();
        assert!(t.is_symmetric());
        let s = t.to_table_string();
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("yes") && s.contains("no"));
        assert!(t.to_string().contains("class c2"));
    }

    #[test]
    fn empty_class_table() {
        let t = ClassTable::new(ClassId(0), "empty".into(), vec![]);
        assert_eq!(t.mode_count(), 0);
        assert!(t.is_symmetric());
    }
}
