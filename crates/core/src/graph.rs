//! The late-binding resolution graph (Definition 9).
//!
//! For a class `C`, the graph `G_C(V, Γ)` predicts, at compile time, every
//! method body that might execute when a message reaches a *proper
//! instance of `C`*:
//!
//! * `V = {C} × METHODS(C)  ∪  ⋃_M PSC*_{C,M}` — the class's own resolved
//!   methods plus the reflexo-transitive closure of prefixed calls.
//! * `Γ(C', M') = {C} × DSC_{C',M'}  ∪  PSC_{C',M'}` — **direct self-calls
//!   re-resolve in `C`** (this is late binding solved at compile time: a
//!   `send m3 to self` inside an ancestor's method body binds to `C`'s
//!   override), while prefixed calls go to the fixed ancestor definition.
//!
//! Two of Definition 9's "vertices" `(C₁, M)` and `(C₂, M)` that resolve
//! to the *same definition site* have identical direct access vectors and
//! identical out-edges (DSC/PSC are per definition, and DSC always
//! re-resolves in `C`), so we key vertices by resolved [`MethodId`] — a
//! lossless compression of the paper's vertex set.

use crate::extract::Extraction;
use finecc_model::{ClassId, MethodId, Schema};
use std::collections::HashMap;

/// The late-binding resolution graph of one class.
#[derive(Clone, Debug)]
pub struct LbrGraph {
    /// The class this graph is specialized for.
    pub class: ClassId,
    /// Vertices: resolved method definition sites. The first
    /// `METHODS(C).len()` entries are exactly the class's resolved methods
    /// in `METHODS(C)` (name-sorted) order.
    pub verts: Vec<MethodId>,
    /// Adjacency lists (indices into `verts`), deduplicated and sorted.
    pub edges: Vec<Vec<u32>>,
    index: HashMap<MethodId, u32>,
}

impl LbrGraph {
    /// Builds `G_C` for `class` from the extraction facts.
    ///
    /// Self-call names that do not resolve in `C` (template-method hooks
    /// defined only in subclasses) produce no edge: sending them to a
    /// proper instance of `C` would be a runtime "message not understood",
    /// so they cannot contribute accesses.
    pub fn build(schema: &Schema, class: ClassId, ex: &Extraction) -> LbrGraph {
        let ci = schema.class(class);
        let mut verts: Vec<MethodId> = Vec::with_capacity(ci.methods.len());
        let mut index: HashMap<MethodId, u32> = HashMap::new();
        for (_, mid) in &ci.methods {
            if !index.contains_key(mid) {
                index.insert(*mid, verts.len() as u32);
                verts.push(*mid);
            }
        }

        // Worklist closure over PSC targets (V includes PSC*).
        let mut work: Vec<MethodId> = verts.clone();
        while let Some(mid) = work.pop() {
            for &(_, target) in ex.psc(mid) {
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(target) {
                    e.insert(verts.len() as u32);
                    verts.push(target);
                    work.push(target);
                }
            }
        }

        // Γ: DSC names resolve in `class`; PSC edges are fixed.
        let mut edges: Vec<Vec<u32>> = Vec::with_capacity(verts.len());
        for &mid in &verts {
            let mut outs: Vec<u32> = Vec::new();
            for name in ex.dsc(mid) {
                if let Some(target) = schema.resolve_method(class, name) {
                    outs.push(index[&target]);
                }
            }
            for &(_, target) in ex.psc(mid) {
                outs.push(index[&target]);
            }
            outs.sort_unstable();
            outs.dedup();
            edges.push(outs);
        }

        LbrGraph {
            class,
            verts,
            edges,
            index,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.verts.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The vertex index of a definition, if present.
    pub fn vertex_of(&self, m: MethodId) -> Option<usize> {
        self.index.get(&m).map(|&i| i as usize)
    }

    /// The paper's label for a vertex: `(owner_class, method_name)`.
    pub fn label(&self, schema: &Schema, v: usize) -> String {
        let mi = schema.method(self.verts[v]);
        format!("({},{})", schema.class(mi.owner).name, mi.sig.name)
    }

    /// Edge list in paper notation, sorted, e.g.
    /// `("(c2,m1)", "(c2,m2)")` — used by the Figure 2 experiment.
    pub fn edge_labels(&self, schema: &Schema) -> Vec<(String, String)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for (v, outs) in self.edges.iter().enumerate() {
            for &w in outs {
                out.push((self.label(schema, v), self.label(schema, w as usize)));
            }
        }
        out.sort();
        out
    }

    /// Graphviz DOT rendering (Figure 2 of the paper for class c2).
    pub fn to_dot(&self, schema: &Schema) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "digraph lbr_{} {{\n  rankdir=TB;\n  node [shape=ellipse];\n",
            schema.class(self.class).name
        ));
        for v in 0..self.verts.len() {
            out.push_str(&format!("  v{v} [label=\"{}\"];\n", self.label(schema, v)));
        }
        for (v, outs) in self.edges.iter().enumerate() {
            for &w in outs {
                out.push_str(&format!("  v{v} -> v{w};\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use finecc_lang::parser::{build_schema, FIGURE1_SOURCE};

    fn figure2_graph() -> (Schema, LbrGraph) {
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        let ex = extract(&s, &b).unwrap();
        let c2 = s.class_by_name("c2").unwrap();
        (s.clone(), LbrGraph::build(&s, c2, &ex))
    }

    #[test]
    fn figure2_vertices() {
        // V = {(c2,m1),(c2,m2),(c2,m3),(c2,m4)} ∪ {(c1,m2)} — 5 vertices.
        // With MethodId keying: m1,m3 resolve to their c1 definitions;
        // m2 resolves to c2's override; (c1,m2) is the PSC target.
        let (s, g) = figure2_graph();
        assert_eq!(g.vertex_count(), 5);
        let mut labels: Vec<String> = (0..g.vertex_count()).map(|v| g.label(&s, v)).collect();
        labels.sort();
        assert_eq!(
            labels,
            ["(c1,m1)", "(c1,m2)", "(c1,m3)", "(c2,m2)", "(c2,m4)"]
        );
    }

    #[test]
    fn figure2_edges() {
        // Paper: edges (c2,m1)→(c2,m2), (c2,m1)→(c2,m3), (c2,m2)→(c1,m2).
        // In MethodId keying, (c2,m1)/(c2,m3) display as their defining
        // sites (c1,m1)/(c1,m3); the *resolution* of the DSC edge from m1
        // to m2 correctly lands on c2's override.
        let (s, g) = figure2_graph();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(
            g.edge_labels(&s),
            [
                ("(c1,m1)".to_string(), "(c1,m3)".to_string()),
                ("(c1,m1)".to_string(), "(c2,m2)".to_string()),
                ("(c2,m2)".to_string(), "(c1,m2)".to_string()),
            ]
        );
    }

    #[test]
    fn graph_for_c1_has_no_override_edge() {
        // In c1's own graph, m1's DSC resolves m2 to c1's definition.
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        let ex = extract(&s, &b).unwrap();
        let c1 = s.class_by_name("c1").unwrap();
        let g = LbrGraph::build(&s, c1, &ex);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(
            g.edge_labels(&s),
            [
                ("(c1,m1)".to_string(), "(c1,m2)".to_string()),
                ("(c1,m1)".to_string(), "(c1,m3)".to_string()),
            ]
        );
    }

    #[test]
    fn template_hook_skipped_in_base_linked_in_subclass() {
        let src = r#"
class base { method template is send hook to self end }
class concrete inherits base {
  fields { x: integer; }
  method hook is x := 1 end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let ex = extract(&s, &b).unwrap();
        let base = s.class_by_name("base").unwrap();
        let conc = s.class_by_name("concrete").unwrap();
        let gb = LbrGraph::build(&s, base, &ex);
        assert_eq!(gb.edge_count(), 0, "hook unresolvable in base");
        let gc = LbrGraph::build(&s, conc, &ex);
        assert_eq!(gc.edge_count(), 1, "hook resolves in concrete");
    }

    #[test]
    fn psc_chain_closure() {
        // c3.m prefixes c2.m prefixes c1.m: V for c3 includes all three.
        let src = r#"
class a { fields { x: integer; } method m is x := 1 end }
class b inherits a { method m is redefined as send a.m to self end }
class c inherits b { method m is redefined as send b.m to self end }
"#;
        let (s, bo) = build_schema(src).unwrap();
        let ex = extract(&s, &bo).unwrap();
        let cc = s.class_by_name("c").unwrap();
        let g = LbrGraph::build(&s, cc, &ex);
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn recursion_creates_cycle_edge() {
        let src = r#"
class a {
  fields { n: integer; }
  method even is if n = 0 then skip else n := n - 1; send odd to self end end
  method odd is if n = 0 then skip else n := n - 1; send even to self end end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let ex = extract(&s, &b).unwrap();
        let a = s.class_by_name("a").unwrap();
        let g = LbrGraph::build(&s, a, &ex);
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 2, "mutual recursion → 2-cycle");
    }

    #[test]
    fn dot_output_shape() {
        let (s, g) = figure2_graph();
        let dot = g.to_dot(&s);
        assert!(dot.starts_with("digraph lbr_c2 {"));
        assert_eq!(dot.matches("->").count(), 3);
        assert!(dot.contains("(c2,m2)"));
    }

    #[test]
    fn vertex_of_lookup() {
        let (s, g) = figure2_graph();
        let c2 = s.class_by_name("c2").unwrap();
        let m2 = s.resolve_method(c2, "m2").unwrap();
        assert!(g.vertex_of(m2).is_some());
        assert_eq!(g.vertex_of(MethodId(999)), None);
    }
}
