//! The schema compiler: Definition 10 and the end-to-end pipeline.
//!
//! `TAV_{C,M} = ⊔ { DAV_{C',M'} : (C',M') ∈ Γ*(C,M) }` — the join of the
//! direct access vectors of every method that may run when `M` is sent to
//! a proper instance of `C`.
//!
//! Computed per class with one Tarjan pass over the late-binding
//! resolution graph: components arrive sink-first, every member of a
//! component shares the component's TAV (their reachable sets coincide —
//! the paper's §4.3 observation, justified by Property 1), and a
//! component's TAV is the join of its members' DAVs with the TAVs of its
//! already-finished successor components. Total cost is linear in the
//! graph size times the vector-join cost.

use crate::av::AccessVector;
use crate::commut::ClassTable;
use crate::error::CompileError;
use crate::extract::{extract, Extraction};
use crate::graph::LbrGraph;
use crate::tarjan::{condense, sccs};
use finecc_lang::MethodBodies;
use finecc_model::{ClassId, MethodId, Schema};

/// Everything the compiler produces for a schema: per-class graphs,
/// per-vertex TAVs, and the per-class commutativity tables.
#[derive(Clone, Debug)]
pub struct CompiledSchema {
    /// Per-definition facts (DAV/DSC/PSC).
    pub extraction: Extraction,
    /// One late-binding resolution graph per class (indexed by class).
    pub graphs: Vec<LbrGraph>,
    /// TAVs for *every vertex* of every class graph (aligned with
    /// `graphs[c].verts`); includes PSC-only vertices such as the paper's
    /// `(c1,m2)` inside c2's graph.
    pub vertex_tavs: Vec<Vec<AccessVector>>,
    classes: Vec<ClassTable>,
}

impl CompiledSchema {
    /// The compiled table (access modes + matrix) of a class.
    pub fn class(&self, c: ClassId) -> &ClassTable {
        &self.classes[c.index()]
    }

    /// Mutable access to a class table (ad hoc overrides, §3).
    pub fn class_mut(&mut self, c: ClassId) -> &mut ClassTable {
        &mut self.classes[c.index()]
    }

    /// All class tables, in class order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassTable> {
        self.classes.iter()
    }

    /// The late-binding resolution graph of a class.
    pub fn graph(&self, c: ClassId) -> &LbrGraph {
        &self.graphs[c.index()]
    }

    /// The TAV of `method` as invoked on proper instances of `class`
    /// (`None` if the method is not visible there).
    pub fn tav_of(&self, class: ClassId, method: MethodId) -> Option<&AccessVector> {
        let g = &self.graphs[class.index()];
        let v = g.vertex_of(method)?;
        Some(&self.vertex_tavs[class.index()][v])
    }

    /// Total number of access modes across all classes.
    pub fn total_modes(&self) -> usize {
        self.classes.iter().map(ClassTable::mode_count).sum()
    }

    /// A human-readable compilation report: per class, the access modes,
    /// graph size, and conflict density — what a DBA would inspect after
    /// a schema change.
    pub fn report(&self, schema: &Schema) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ci in schema.classes() {
            let t = self.class(ci.id);
            let g = self.graph(ci.id);
            let n = t.mode_count();
            let conflicts: usize = (0..n)
                .map(|i| (0..n).filter(|&j| !t.commute(i, j)).count())
                .sum();
            let density = if n > 0 {
                100.0 * conflicts as f64 / (n * n) as f64
            } else {
                0.0
            };
            writeln!(
                out,
                "class {:<12} modes={:<3} graph: {}v/{}e  conflict density: {:.0}%",
                ci.name,
                n,
                g.vertex_count(),
                g.edge_count(),
                density
            )
            .expect("write to String");
            for (i, name) in t.method_names.iter().enumerate() {
                let kind = if t.tav(i).is_read_only() { "R" } else { "W" };
                writeln!(out, "  [{i:>2}] {name:<12} {kind}  TAV={}", t.tav(i))
                    .expect("write to String");
            }
        }
        out
    }

    /// Assembles a compiled schema from parts (used by the incremental
    /// recompiler).
    pub(crate) fn from_parts(
        extraction: Extraction,
        graphs: Vec<LbrGraph>,
        vertex_tavs: Vec<Vec<AccessVector>>,
        classes: Vec<ClassTable>,
    ) -> CompiledSchema {
        CompiledSchema {
            extraction,
            graphs,
            vertex_tavs,
            classes,
        }
    }
}

/// Compiles a schema: analysis (Defs 6–8), graphs (Def 9), TAVs (Def 10),
/// and commutativity matrices (§5.1), for every class.
pub fn compile(schema: &Schema, bodies: &MethodBodies) -> Result<CompiledSchema, CompileError> {
    let extraction = extract(schema, bodies)?;
    compile_with_extraction(schema, extraction)
}

/// Compiles from pre-computed extraction facts (lets benchmarks separate
/// the parsing/analysis cost from the graph/TAV cost).
pub fn compile_with_extraction(
    schema: &Schema,
    extraction: Extraction,
) -> Result<CompiledSchema, CompileError> {
    let mut graphs = Vec::with_capacity(schema.class_count());
    let mut vertex_tavs = Vec::with_capacity(schema.class_count());
    let mut classes = Vec::with_capacity(schema.class_count());

    for ci in schema.classes() {
        let graph = LbrGraph::build(schema, ci.id, &extraction);
        let tavs = vertex_tavs_of(&graph, &extraction);

        let methods = ci
            .methods
            .iter()
            .map(|(name, mid)| {
                let v = graph.vertex_of(*mid).expect("class methods are vertices");
                (
                    name.clone(),
                    *mid,
                    extraction.dav(*mid).clone(),
                    tavs[v].clone(),
                )
            })
            .collect();
        classes.push(ClassTable::new(ci.id, ci.name.clone(), methods));
        graphs.push(graph);
        vertex_tavs.push(tavs);
    }

    Ok(CompiledSchema {
        extraction,
        graphs,
        vertex_tavs,
        classes,
    })
}

/// Definition 10 over one class graph: per-vertex TAVs via SCC
/// condensation in reverse topological order.
pub fn vertex_tavs_of(graph: &LbrGraph, ex: &Extraction) -> Vec<AccessVector> {
    let comps = sccs(&graph.edges);
    let (comp_of, _) = condense(&graph.edges, &comps);
    let mut tavs: Vec<AccessVector> = vec![AccessVector::empty(); graph.verts.len()];
    for comp in &comps {
        let cid = comp_of[comp[0] as usize];
        let mut acc = AccessVector::empty();
        for &v in comp {
            acc.join_assign(ex.dav(graph.verts[v as usize]));
            for &w in &graph.edges[v as usize] {
                if comp_of[w as usize] != cid {
                    // Sink-first emission guarantees this TAV is final.
                    acc.join_assign(&tavs[w as usize]);
                }
            }
        }
        for &v in comp {
            tavs[v as usize] = acc.clone();
        }
    }
    tavs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::AccessMode::{self, *};
    use finecc_lang::parser::{build_schema, FIGURE1_SOURCE};
    use finecc_model::FieldId;

    fn fig1() -> (Schema, CompiledSchema) {
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        let c = compile(&s, &b).unwrap();
        (s, c)
    }

    fn fid(s: &Schema, class: &str, name: &str) -> FieldId {
        let c = s.class_by_name(class).unwrap();
        s.resolve_field(c, name).unwrap()
    }

    fn modes(s: &Schema, av: &AccessVector, fields: &[(&str, &str)]) -> Vec<AccessMode> {
        fields
            .iter()
            .map(|&(c, f)| av.mode_of(fid(s, c, f)))
            .collect()
    }

    /// §4.3, verbatim: the worked TAV values of the paper.
    #[test]
    fn paper_section_4_3_tavs() {
        let (s, comp) = fig1();
        let c2 = s.class_by_name("c2").unwrap();
        let t = comp.class(c2);
        let all = [
            ("c1", "f1"),
            ("c1", "f2"),
            ("c1", "f3"),
            ("c2", "f4"),
            ("c2", "f5"),
            ("c2", "f6"),
        ];

        // TAV(c2,m3) = (Null, Read f2, Read f3, Null, Null, Null)
        let m3 = t.index_of("m3").unwrap();
        assert_eq!(
            modes(&s, t.tav(m3), &all),
            [Null, Read, Read, Null, Null, Null]
        );

        // TAV(c2,m4) = (…, Read f5, Write f6)
        let m4 = t.index_of("m4").unwrap();
        assert_eq!(
            modes(&s, t.tav(m4), &all),
            [Null, Null, Null, Null, Read, Write]
        );

        // TAV(c2,m2) = (Write f1, Read f2, Null f3, Write f4, Read f5, Null f6)
        let m2 = t.index_of("m2").unwrap();
        assert_eq!(
            modes(&s, t.tav(m2), &all),
            [Write, Read, Null, Write, Read, Null]
        );

        // TAV(c2,m1) = (Write f1, Read f2, Read f3, Write f4, Read f5, Null f6)
        let m1 = t.index_of("m1").unwrap();
        assert_eq!(
            modes(&s, t.tav(m1), &all),
            [Write, Read, Read, Write, Read, Null]
        );

        // And the PSC-only vertex (c1,m2) inside c2's graph keeps its DAV.
        let c1 = s.class_by_name("c1").unwrap();
        let m2c1 = s.resolve_method(c1, "m2").unwrap();
        let tav = comp.tav_of(c2, m2c1).unwrap();
        assert_eq!(modes(&s, tav, &all), [Write, Read, Null, Null, Null, Null]);
    }

    /// Table 2, generated rather than hand-written.
    #[test]
    fn paper_table2_generated() {
        let (s, comp) = fig1();
        let c2 = s.class_by_name("c2").unwrap();
        let t = comp.class(c2);
        assert_eq!(t.method_names, ["m1", "m2", "m3", "m4"]);
        let expect = [
            [false, false, true, true],
            [false, false, true, true],
            [true, true, true, true],
            [true, true, true, false],
        ];
        for (i, row) in expect.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(t.commute(i, j), want, "Table 2 at ({i},{j})");
            }
        }
    }

    /// The paper: "Commutativity relation of class c1 is obtained as the
    /// restriction of Table 2 to m1, m2, and m3."
    #[test]
    fn c1_matrix_is_restriction_of_table2() {
        let (s, comp) = fig1();
        let c1 = s.class_by_name("c1").unwrap();
        let t1 = comp.class(c1);
        assert_eq!(t1.method_names, ["m1", "m2", "m3"]);
        let expect = [
            [false, false, true],
            [false, false, true],
            [true, true, true],
        ];
        for (i, row) in expect.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(t1.commute(i, j), want);
            }
        }
    }

    /// TAV(c1,m1) must use c1's resolution of m2 (no f4 write).
    #[test]
    fn tav_depends_on_receiver_class() {
        let (s, comp) = fig1();
        let c1 = s.class_by_name("c1").unwrap();
        let t1 = comp.class(c1);
        let m1 = t1.index_of("m1").unwrap();
        let tav = t1.tav(m1);
        assert_eq!(tav.mode_of(fid(&s, "c1", "f1")), Write);
        assert_eq!(
            tav.mode_of(fid(&s, "c2", "f4")),
            Null,
            "c1 never touches f4"
        );
    }

    #[test]
    fn tav_includes_dav_pointwise() {
        let (s, comp) = fig1();
        for ci in s.classes() {
            let t = comp.class(ci.id);
            for i in 0..t.mode_count() {
                assert!(
                    t.dav(i).le(t.tav(i)),
                    "TAV ⊒ DAV violated for {}::{}",
                    ci.name,
                    t.method_names[i]
                );
            }
        }
    }

    #[test]
    fn recursive_methods_share_tav() {
        let src = r#"
class a {
  fields { x: integer; y: integer; }
  method f is x := x + 1; send g to self end
  method g is y := y + 1; send f to self end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let comp = compile(&s, &b).unwrap();
        let a = s.class_by_name("a").unwrap();
        let t = comp.class(a);
        let (f, g) = (t.index_of("f").unwrap(), t.index_of("g").unwrap());
        assert_eq!(t.tav(f), t.tav(g), "cycle members share TAVs");
        assert_eq!(t.tav(f).len(), 2);
        assert!(!t.commute(f, g));
    }

    #[test]
    fn self_recursion_fixpoint() {
        let src = r#"
class a {
  fields { n: integer; }
  method count is if n > 0 then n := n - 1; send count to self end end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let comp = compile(&s, &b).unwrap();
        let a = s.class_by_name("a").unwrap();
        let t = comp.class(a);
        let i = t.index_of("count").unwrap();
        assert_eq!(t.tav(i), t.dav(i), "self-loop adds nothing beyond DAV");
    }

    #[test]
    fn pseudo_conflict_eliminated_but_rw_would_conflict() {
        // The crux of problem P4: m2 and m4 are both writers, yet commute.
        let (s, comp) = fig1();
        let c2 = s.class_by_name("c2").unwrap();
        let t = comp.class(c2);
        let m2 = t.index_of("m2").unwrap();
        let m4 = t.index_of("m4").unwrap();
        assert!(t.tav(m2).collapse().is_write());
        assert!(t.tav(m4).collapse().is_write());
        assert!(t.commute(m2, m4), "disjoint-field writers commute");
    }

    #[test]
    fn total_modes_counts() {
        let (_, comp) = fig1();
        // c1: 3 methods, c2: 4, c3: 1.
        assert_eq!(comp.total_modes(), 8);
    }

    #[test]
    fn report_renders_every_class_and_mode() {
        let (s, comp) = fig1();
        let r = comp.report(&s);
        for name in ["c1", "c2", "c3", "m1", "m4", "conflict density"] {
            assert!(r.contains(name), "report must mention {name}:\n{r}");
        }
        assert_eq!(r.matches("class ").count(), 3);
    }

    #[test]
    fn compile_is_deterministic() {
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        let c1 = compile(&s, &b).unwrap();
        let c2 = compile(&s, &b).unwrap();
        for (a, b) in c1.classes().zip(c2.classes()) {
            assert_eq!(a.method_names, b.method_names);
            assert_eq!(a.tavs, b.tavs);
        }
    }
}
