//! Access vectors (Definitions 3–5).
//!
//! An access vector maps each field of a class to the most restrictive
//! mode a method uses on it. We store vectors **sparsely** — only non-Null
//! entries, sorted by [`FieldId`] — so that:
//!
//! * Definition 6(i) ("pad an inherited DAV with `Null` for the subclass's
//!   new fields") is a no-op,
//! * the join of vectors over different field sets (Definition 4) is a
//!   plain sorted merge with no field-universe bookkeeping,
//! * commutativity (Definition 5) is a merge that can only fail on fields
//!   present in *both* vectors, since `Null` is compatible with everything.

use crate::mode::AccessMode;
use finecc_model::FieldId;
use std::fmt;

/// A sparse access vector: sorted `(field, mode)` pairs, no `Null` entries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct AccessVector {
    entries: Vec<(FieldId, AccessMode)>,
}

impl AccessVector {
    /// The empty (all-`Null`) vector.
    pub fn empty() -> AccessVector {
        AccessVector::default()
    }

    /// Builds a vector from read and write field sets. A field in both
    /// sets gets `Write` (the most restrictive mode wins, Definition 6).
    pub fn from_reads_writes(
        reads: impl IntoIterator<Item = FieldId>,
        writes: impl IntoIterator<Item = FieldId>,
    ) -> AccessVector {
        let mut entries: Vec<(FieldId, AccessMode)> = writes
            .into_iter()
            .map(|f| (f, AccessMode::Write))
            .chain(reads.into_iter().map(|f| (f, AccessMode::Read)))
            .collect();
        entries.sort_unstable_by_key(|&(f, m)| (f, std::cmp::Reverse(m)));
        entries.dedup_by_key(|&mut (f, _)| f);
        entries.retain(|&(_, m)| !m.is_null());
        AccessVector { entries }
    }

    /// Builds a vector from explicit `(field, mode)` pairs; later entries
    /// for the same field join with earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (FieldId, AccessMode)>) -> AccessVector {
        let mut av = AccessVector::empty();
        for (f, m) in pairs {
            av.set(f, av.mode_of(f).join(m));
        }
        av
    }

    /// The mode for `field` (`Null` when absent).
    pub fn mode_of(&self, field: FieldId) -> AccessMode {
        match self.entries.binary_search_by_key(&field, |&(f, _)| f) {
            Ok(i) => self.entries[i].1,
            Err(_) => AccessMode::Null,
        }
    }

    /// Sets the mode for one field (removing the entry when `Null`).
    pub fn set(&mut self, field: FieldId, mode: AccessMode) {
        match self.entries.binary_search_by_key(&field, |&(f, _)| f) {
            Ok(i) => {
                if mode.is_null() {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = mode;
                }
            }
            Err(i) => {
                if !mode.is_null() {
                    self.entries.insert(i, (field, mode));
                }
            }
        }
    }

    /// Number of non-`Null` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when every field is `Null`.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the non-`Null` entries in field order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, AccessMode)> + '_ {
        self.entries.iter().copied()
    }

    /// The fields accessed in `Write` mode (the recovery projection).
    pub fn write_fields(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.entries
            .iter()
            .filter(|&&(_, m)| m.is_write())
            .map(|&(f, _)| f)
    }

    /// The fields accessed in `Read` mode.
    pub fn read_fields(&self) -> impl Iterator<Item = FieldId> + '_ {
        self.entries
            .iter()
            .filter(|&&(_, m)| m == AccessMode::Read)
            .map(|&(f, _)| f)
    }

    /// `true` if no field is written.
    pub fn is_read_only(&self) -> bool {
        self.entries.iter().all(|&(_, m)| !m.is_write())
    }

    /// The classification a read/write-only scheme would give this vector:
    /// `Write` if any field is written, `Read` if any is read, else `Null`.
    /// This is how the RW baseline collapses vectors to instance modes.
    pub fn collapse(&self) -> AccessMode {
        self.entries
            .iter()
            .map(|&(_, m)| m)
            .fold(AccessMode::Null, AccessMode::join)
    }

    /// Definition 4: the field-wise lattice join over the union of the
    /// two field sets. Linear-time sorted merge.
    pub fn join(&self, other: &AccessVector) -> AccessVector {
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (fa, ma) = self.entries[i];
            let (fb, mb) = other.entries[j];
            match fa.cmp(&fb) {
                std::cmp::Ordering::Less => {
                    out.push((fa, ma));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((fb, mb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((fa, ma.join(mb)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend_from_slice(&other.entries[j..]);
        AccessVector { entries: out }
    }

    /// In-place join (`self ← self ⊔ other`). Returns `true` when `self`
    /// changed, which lets fixpoint loops detect convergence.
    pub fn join_assign(&mut self, other: &AccessVector) -> bool {
        if other.entries.is_empty() {
            return false;
        }
        let joined = self.join(other);
        if joined == *self {
            false
        } else {
            *self = joined;
            true
        }
    }

    /// Definition 5: two vectors commute iff their modes are pair-wise
    /// compatible on every common field. Fields present in only one
    /// vector are `Null` on the other side, hence always compatible.
    pub fn commutes(&self, other: &AccessVector) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (fa, ma) = self.entries[i];
            let (fb, mb) = other.entries[j];
            match fa.cmp(&fb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if !ma.compatible(mb) {
                        return false;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        true
    }

    /// Pointwise order: `self ⊑ other` iff every field's mode in `self`
    /// is ≤ its mode in `other`. (`TAV ⊒ DAV` is the key invariant.)
    pub fn le(&self, other: &AccessVector) -> bool {
        self.entries.iter().all(|&(f, m)| m <= other.mode_of(f))
    }

    /// Renders the vector in the paper's notation over the given field
    /// universe, e.g. `(Write f1, Read f2, Null f3)`.
    pub fn display_over<'a>(&self, fields: impl IntoIterator<Item = (FieldId, &'a str)>) -> String {
        let parts: Vec<String> = fields
            .into_iter()
            .map(|(f, name)| format!("{} {name}", self.mode_of(f)))
            .collect();
        format!("({})", parts.join(", "))
    }
}

impl fmt::Display for AccessVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (field, mode)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{mode} {field}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<(FieldId, AccessMode)> for AccessVector {
    fn from_iter<T: IntoIterator<Item = (FieldId, AccessMode)>>(iter: T) -> Self {
        AccessVector::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessMode::*;

    fn f(i: u32) -> FieldId {
        FieldId(i)
    }

    fn av(pairs: &[(u32, AccessMode)]) -> AccessVector {
        AccessVector::from_pairs(pairs.iter().map(|&(i, m)| (f(i), m)))
    }

    #[test]
    fn paper_join_example() {
        // (Write X, Read Y, Read Z) ⊔ (Read X, Null Y, Read T)
        //   = (Write X, Read Y, Read Z, Read T)   [§4.1]
        let a = av(&[(0, Write), (1, Read), (2, Read)]);
        let b = av(&[(0, Read), (3, Read)]);
        let j = a.join(&b);
        assert_eq!(j.mode_of(f(0)), Write);
        assert_eq!(j.mode_of(f(1)), Read);
        assert_eq!(j.mode_of(f(2)), Read);
        assert_eq!(j.mode_of(f(3)), Read);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn null_entries_never_stored() {
        let mut a = av(&[(0, Read)]);
        a.set(f(0), Null);
        assert!(a.is_empty());
        let b = AccessVector::from_reads_writes([], []);
        assert!(b.is_empty());
        assert_eq!(b.mode_of(f(9)), Null);
    }

    #[test]
    fn write_wins_over_read_in_constructor() {
        let a = AccessVector::from_reads_writes([f(1), f(2)], [f(2), f(3)]);
        assert_eq!(a.mode_of(f(1)), Read);
        assert_eq!(a.mode_of(f(2)), Write);
        assert_eq!(a.mode_of(f(3)), Write);
    }

    #[test]
    fn property1_semilattice_laws() {
        // Property 1: join is idempotent, commutative, associative.
        let vs = [
            av(&[]),
            av(&[(0, Read)]),
            av(&[(0, Write), (2, Read)]),
            av(&[(1, Read), (2, Write), (5, Read)]),
        ];
        for a in &vs {
            assert_eq!(&a.join(a), a, "idempotent");
            for b in &vs {
                assert_eq!(a.join(b), b.join(a), "commutative");
                for c in &vs {
                    assert_eq!(a.join(b).join(c), a.join(&b.join(c)), "associative");
                }
            }
        }
    }

    #[test]
    fn commutativity_definition5() {
        let wr = av(&[(0, Write)]);
        let rd = av(&[(0, Read)]);
        let other = av(&[(1, Write)]);
        assert!(!wr.commutes(&rd));
        assert!(!wr.commutes(&wr));
        assert!(rd.commutes(&rd));
        assert!(wr.commutes(&other), "disjoint fields always commute");
        assert!(av(&[]).commutes(&wr));
    }

    #[test]
    fn commutes_is_symmetric() {
        let a = av(&[(0, Write), (1, Read)]);
        let b = av(&[(1, Write), (2, Read)]);
        assert_eq!(a.commutes(&b), b.commutes(&a));
        assert!(!a.commutes(&b));
    }

    #[test]
    fn join_assign_reports_change() {
        let mut a = av(&[(0, Read)]);
        assert!(!a.join_assign(&av(&[])));
        assert!(!a.join_assign(&av(&[(0, Read)])));
        assert!(a.join_assign(&av(&[(0, Write)])));
        assert_eq!(a.mode_of(f(0)), Write);
        assert!(a.join_assign(&av(&[(7, Read)])));
    }

    #[test]
    fn pointwise_order() {
        let small = av(&[(0, Read)]);
        let big = av(&[(0, Write), (1, Read)]);
        assert!(small.le(&big));
        assert!(!big.le(&small));
        assert!(av(&[]).le(&small));
        assert!(small.le(&small));
        // join is the least upper bound: a ⊑ a⊔b and b ⊑ a⊔b.
        let j = small.join(&big);
        assert!(small.le(&j) && big.le(&j));
    }

    #[test]
    fn collapse_classifies_reader_writer() {
        assert_eq!(av(&[]).collapse(), Null);
        assert_eq!(av(&[(0, Read), (4, Read)]).collapse(), Read);
        assert_eq!(av(&[(0, Read), (4, Write)]).collapse(), Write);
        assert!(av(&[(0, Read)]).is_read_only());
        assert!(!av(&[(0, Write)]).is_read_only());
    }

    #[test]
    fn projections() {
        let a = av(&[(0, Write), (1, Read), (2, Write)]);
        assert_eq!(a.write_fields().collect::<Vec<_>>(), [f(0), f(2)]);
        assert_eq!(a.read_fields().collect::<Vec<_>>(), [f(1)]);
    }

    #[test]
    fn display_over_paper_notation() {
        let a = av(&[(0, Write), (1, Read)]);
        let s = a.display_over([(f(0), "f1"), (f(1), "f2"), (f(2), "f3")]);
        assert_eq!(s, "(Write f1, Read f2, Null f3)");
    }

    #[test]
    fn from_iter_joins_duplicates() {
        let a: AccessVector = [(f(0), Read), (f(0), Write)].into_iter().collect();
        assert_eq!(a.mode_of(f(0)), Write);
    }
}
