//! The access-mode lattice and Table 1 of the paper.
//!
//! `MODES = {Null, Read, Write}` with `Null < Read < Write` (Definition 2).
//! On this total order the lattice join is `max`. The compatibility
//! relation `cMODES` is the classical one:
//!
//! |       | Null | Read | Write |
//! |-------|------|------|-------|
//! | Null  | yes  | yes  | yes   |
//! | Read  | yes  | yes  | no    |
//! | Write | yes  | no   | no    |

use std::fmt;

/// One access mode on one field.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(u8)]
pub enum AccessMode {
    /// The method never touches the field.
    #[default]
    Null = 0,
    /// The field appears in expressions but is never assigned.
    Read = 1,
    /// The field is assigned somewhere in the method.
    Write = 2,
}

impl AccessMode {
    /// All modes, in lattice order.
    pub const ALL: [AccessMode; 3] = [AccessMode::Null, AccessMode::Read, AccessMode::Write];

    /// The compatibility relation `cMODES` of Table 1.
    #[inline]
    pub fn compatible(self, other: AccessMode) -> bool {
        !matches!(
            (self, other),
            (AccessMode::Write, AccessMode::Read)
                | (AccessMode::Write, AccessMode::Write)
                | (AccessMode::Read, AccessMode::Write)
        )
    }

    /// The lattice join (`max` on the total order).
    #[inline]
    pub fn join(self, other: AccessMode) -> AccessMode {
        self.max(other)
    }

    /// `true` for [`AccessMode::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        self == AccessMode::Write
    }

    /// `true` for [`AccessMode::Null`].
    #[inline]
    pub fn is_null(self) -> bool {
        self == AccessMode::Null
    }

    /// Single-letter rendering (`-`, `R`, `W`) used in printed tables.
    pub fn letter(self) -> char {
        match self {
            AccessMode::Null => '-',
            AccessMode::Read => 'R',
            AccessMode::Write => 'W',
        }
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMode::Null => f.write_str("Null"),
            AccessMode::Read => f.write_str("Read"),
            AccessMode::Write => f.write_str("Write"),
        }
    }
}

/// Renders Table 1 of the paper as a fixed-width text table.
pub fn table1_string() -> String {
    let mut out = String::from("        Null   Read   Write\n");
    for a in AccessMode::ALL {
        out.push_str(&format!("{a:<7}"));
        for b in AccessMode::ALL {
            let cell = if a.compatible(b) { "yes" } else { "no" };
            out.push_str(&format!(" {cell:<6}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use AccessMode::*;

    #[test]
    fn table1_exact() {
        // Row by row, exactly as printed in the paper.
        assert!(Null.compatible(Null));
        assert!(Null.compatible(Read));
        assert!(Null.compatible(Write));
        assert!(Read.compatible(Null));
        assert!(Read.compatible(Read));
        assert!(!Read.compatible(Write));
        assert!(Write.compatible(Null));
        assert!(!Write.compatible(Read));
        assert!(!Write.compatible(Write));
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in AccessMode::ALL {
            for b in AccessMode::ALL {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn join_is_max_and_lattice_laws_hold() {
        assert_eq!(Read.join(Write), Write);
        assert_eq!(Null.join(Read), Read);
        for a in AccessMode::ALL {
            assert_eq!(a.join(a), a, "idempotent");
            for b in AccessMode::ALL {
                assert_eq!(a.join(b), b.join(a), "commutative");
                for c in AccessMode::ALL {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)), "associative");
                }
            }
        }
    }

    #[test]
    fn order_matches_paper() {
        assert!(Null < Read && Read < Write);
    }

    #[test]
    fn ordering_derived_from_compatibility() {
        // The paper derives the order from the compatibility relation by
        // inclusion of rows: a ≤ b iff everything compatible with b is
        // compatible with a.
        for a in AccessMode::ALL {
            for b in AccessMode::ALL {
                let row_incl = AccessMode::ALL
                    .iter()
                    .all(|&x| !b.compatible(x) || a.compatible(x));
                assert_eq!(a <= b, row_incl, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn table_rendering() {
        let t = table1_string();
        assert!(t.contains("Write"));
        assert_eq!(t.lines().count(), 4);
    }
}
