//! Incremental recompilation on method-body updates.
//!
//! The paper's closing argument (§7): the technique is attractive
//! precisely because "methods are expected to be regularly created,
//! deleted, or updated" — recompilation must be cheap. This module makes
//! it *incremental*: when only method **bodies** change (the schema —
//! classes, fields, signatures — is fixed), the set of classes whose
//! artifacts can differ is exactly the set whose late-binding resolution
//! graph contains a changed definition as a vertex:
//!
//! * if `C`'s graph contains changed `m`, its TAVs may depend on `m`'s
//!   DAV and its edges on `m`'s DSC/PSC — rebuild `C`;
//! * if not, no definition reachable from `METHODS(C)` calls `m`, and
//!   since only `m`'s body changed, `C`'s reachable set, DAVs, TAVs and
//!   matrix are all unchanged — reuse them.
//!
//! For schema-shape changes (new classes/methods/fields), fall back to
//! [`crate::compile`]; identifiers are re-assigned there.

use crate::commut::ClassTable;
use crate::compiler::{vertex_tavs_of, CompiledSchema};
use crate::error::CompileError;
use crate::extract::Extraction;
use crate::graph::LbrGraph;
use finecc_lang::{analyze, MethodBodies};
use finecc_model::{ClassId, MethodId, Schema};

/// What an incremental recompilation did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecompileReport {
    /// Classes whose graphs/TAVs/matrices were rebuilt.
    pub recompiled: Vec<ClassId>,
    /// Classes reused verbatim from the previous compilation.
    pub reused: usize,
}

/// Recompiles after the bodies of `changed` definitions were replaced in
/// `bodies`. `prev` must come from the same `schema` (same ids).
///
/// Returns the new compiled schema plus a report of what was rebuilt.
pub fn recompile(
    schema: &Schema,
    bodies: &MethodBodies,
    prev: &CompiledSchema,
    changed: &[MethodId],
) -> Result<(CompiledSchema, RecompileReport), CompileError> {
    // 1. Re-extract only the changed definitions.
    let mut extraction: Extraction = prev.extraction.clone();
    for &mid in changed {
        let mi = schema.method(mid);
        let facts =
            analyze(schema, mi.owner, &mi.sig.params, bodies.body(mid)).map_err(|cause| {
                CompileError::Analysis {
                    class: mi.owner,
                    method: mid,
                    name: mi.sig.name.clone(),
                    cause,
                }
            })?;
        extraction.davs[mid.index()] = crate::av::AccessVector::from_reads_writes(
            facts.reads.iter().copied(),
            facts.writes.iter().copied(),
        );
        extraction.dscs[mid.index()] = facts.self_calls.iter().cloned().collect();
        let mut pscs: Vec<(ClassId, MethodId)> = facts
            .prefixed_calls
            .iter()
            .map(|(c, name)| {
                let target = schema
                    .resolve_method(*c, name)
                    .expect("analysis validated prefixed targets");
                (*c, target)
            })
            .collect();
        pscs.sort_unstable();
        pscs.dedup();
        extraction.pscs[mid.index()] = pscs;
        extraction.external_sends[mid.index()] = facts.external_sends.iter().cloned().collect();
    }

    // 2. Affected classes: old graph contains a changed vertex. (A body
    //    change cannot make a previously-unreachable definition reachable
    //    from an *unaffected* class: reachability from METHODS(C) only
    //    depends on DSC/PSC of definitions already in the graph.)
    let mut report = RecompileReport::default();
    let mut graphs = Vec::with_capacity(schema.class_count());
    let mut vertex_tavs = Vec::with_capacity(schema.class_count());
    let mut classes: Vec<ClassTable> = Vec::with_capacity(schema.class_count());

    for ci in schema.classes() {
        let affected = changed
            .iter()
            .any(|&m| prev.graphs[ci.id.index()].vertex_of(m).is_some());
        if !affected {
            graphs.push(prev.graphs[ci.id.index()].clone());
            vertex_tavs.push(prev.vertex_tavs[ci.id.index()].clone());
            classes.push(prev.class(ci.id).clone());
            report.reused += 1;
            continue;
        }
        let graph = LbrGraph::build(schema, ci.id, &extraction);
        let tavs = vertex_tavs_of(&graph, &extraction);
        let methods = ci
            .methods
            .iter()
            .map(|(name, mid)| {
                let v = graph.vertex_of(*mid).expect("class methods are vertices");
                (
                    name.clone(),
                    *mid,
                    extraction.dav(*mid).clone(),
                    tavs[v].clone(),
                )
            })
            .collect();
        classes.push(ClassTable::new(ci.id, ci.name.clone(), methods));
        graphs.push(graph);
        vertex_tavs.push(tavs);
        report.recompiled.push(ci.id);
    }

    Ok((
        CompiledSchema::from_parts(extraction, graphs, vertex_tavs, classes),
        report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use finecc_lang::build_schema;
    use finecc_lang::parser::{build_schema_from_program, parse_program, FIGURE1_SOURCE};

    /// Replaces one method's body in the Figure 1 program and returns the
    /// rebuilt bodies plus the changed definition's id.
    fn figure1_with_new_body(
        class: &str,
        method: &str,
        new_body: &str,
    ) -> (Schema, MethodBodies, MethodBodies, MethodId) {
        let (schema, old_bodies) = build_schema(FIGURE1_SOURCE).unwrap();
        let mut prog = parse_program(FIGURE1_SOURCE).unwrap();
        let cs = prog
            .classes
            .iter_mut()
            .find(|c| c.name == class)
            .expect("class exists");
        let ms = cs
            .methods
            .iter_mut()
            .find(|m| m.name == method)
            .expect("method exists");
        ms.body = finecc_lang::parser::parse_body(new_body).unwrap();
        let (schema2, new_bodies) = build_schema_from_program(&prog).unwrap();
        assert_eq!(schema.method_count(), schema2.method_count());
        let cid = schema.class_by_name(class).unwrap();
        let mid = schema
            .class(cid)
            .own_methods
            .iter()
            .copied()
            .find(|&m| schema.method(m).sig.name == method)
            .unwrap();
        (schema, old_bodies, new_bodies, mid)
    }

    #[test]
    fn equivalent_to_full_compile() {
        let (schema, old_bodies, new_bodies, mid) =
            figure1_with_new_body("c1", "m2", "f1 := expr(f1, p1); f3 := nil");
        let prev = compile(&schema, &old_bodies).unwrap();
        let (incr, report) = recompile(&schema, &new_bodies, &prev, &[mid]).unwrap();
        let full = compile(&schema, &new_bodies).unwrap();
        for ci in schema.classes() {
            let a = incr.class(ci.id);
            let b = full.class(ci.id);
            assert_eq!(a.tavs, b.tavs, "class {}", ci.name);
            assert_eq!(a.davs, b.davs);
            for i in 0..a.mode_count() {
                for j in 0..a.mode_count() {
                    assert_eq!(a.commute(i, j), b.commute(i, j));
                }
            }
        }
        assert!(!report.recompiled.is_empty());
    }

    #[test]
    fn unaffected_classes_are_reused() {
        // Changing c1.m2 affects c1 and c2 (both graphs contain it) but
        // not c3.
        let (schema, old_bodies, new_bodies, mid) = figure1_with_new_body("c1", "m2", "f2 := true");
        let prev = compile(&schema, &old_bodies).unwrap();
        let (_, report) = recompile(&schema, &new_bodies, &prev, &[mid]).unwrap();
        let c1 = schema.class_by_name("c1").unwrap();
        let c2 = schema.class_by_name("c2").unwrap();
        assert_eq!(report.recompiled, vec![c1, c2]);
        assert_eq!(report.reused, 1, "c3 untouched");
    }

    #[test]
    fn changing_leaf_override_spares_the_superclass() {
        // c2's override of m2 is invisible to c1's graph.
        let (schema, old_bodies, new_bodies, mid) =
            figure1_with_new_body("c2", "m2", "f4 := f4 + p1");
        let prev = compile(&schema, &old_bodies).unwrap();
        let (incr, report) = recompile(&schema, &new_bodies, &prev, &[mid]).unwrap();
        let c2 = schema.class_by_name("c2").unwrap();
        assert_eq!(report.recompiled, vec![c2]);
        assert_eq!(report.reused, 2, "c1 and c3 reused");
        // And the result matches a full compile.
        let full = compile(&schema, &new_bodies).unwrap();
        assert_eq!(incr.class(c2).tavs, full.class(c2).tavs);
        // The new m2 no longer prefixes c1.m2: TAV loses the f1 write.
        let t = incr.class(c2);
        let m2 = t.index_of("m2").unwrap();
        let c1 = schema.class_by_name("c1").unwrap();
        let f1 = schema.resolve_field(c1, "f1").unwrap();
        assert!(t.tav(m2).mode_of(f1).is_null());
        // … so m1 and m2 still conflict? m1 calls m2 (no f1 write now) and
        // m3; check the matrix was actually refreshed:
        let m1 = t.index_of("m1").unwrap();
        let m4 = t.index_of("m4").unwrap();
        assert!(t.commute(m2, m4));
        let _ = m1;
    }

    #[test]
    fn no_change_reuses_everything() {
        let (schema, bodies) = build_schema(FIGURE1_SOURCE).unwrap();
        let prev = compile(&schema, &bodies).unwrap();
        let (incr, report) = recompile(&schema, &bodies, &prev, &[]).unwrap();
        assert!(report.recompiled.is_empty());
        assert_eq!(report.reused, schema.class_count());
        assert_eq!(incr.total_modes(), prev.total_modes());
    }

    #[test]
    fn analysis_errors_surface() {
        // Replace c1.m2's body with one referencing an unknown name; the
        // incremental path must report the analysis failure.
        let (schema, old_bodies, new_bodies, mid) = figure1_with_new_body("c1", "m2", "ghost := 1");
        let prev = compile(&schema, &old_bodies).unwrap();
        let err = recompile(&schema, &new_bodies, &prev, &[mid]).unwrap_err();
        let CompileError::Analysis { name, .. } = err;
        assert_eq!(name, "m2");
    }
}
