//! Compilation errors.

use finecc_lang::ExecError;
use finecc_model::{ClassId, MethodId};
use std::fmt;

/// An error raised while compiling a schema's concurrency-control
/// artifacts (access vectors, graphs, matrices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Static analysis of one method body failed.
    Analysis {
        /// The class owning the offending definition.
        class: ClassId,
        /// The offending definition.
        method: MethodId,
        /// Method name, for readable messages.
        name: String,
        /// The underlying analysis error.
        cause: ExecError,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Analysis {
                class, name, cause, ..
            } => write!(
                f,
                "analysis of method `{name}` (class {class}) failed: {cause}"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CompileError::Analysis {
            class: ClassId(1),
            method: MethodId(2),
            name: "m2".into(),
            cause: ExecError::UnknownName("ghost".into()),
        };
        let s = e.to_string();
        assert!(s.contains("m2") && s.contains("ghost"));
    }
}
