//! Per-transaction undo logging and the shared field-image projection.
//!
//! Follows the paper's recovery remark: before-images are projections of
//! instances through the *Write* part of access vectors, recorded once per
//! `(instance, field)` per transaction. Strict two-phase locking (writes
//! are exclusive until commit) makes reverse-order restore sufficient to
//! undo an aborted transaction without touching other transactions' work.
//!
//! The same projection yields the *redo* side of durability: at commit,
//! [`UndoLog::redo_projection`] re-reads the recorded `(instance, field)`
//! pairs — still exclusive under 2PL — producing the after-images the
//! write-ahead log persists. Undo images and log payloads are both
//! [`FieldImage`] lists built from one projection path, so the log-record
//! granularity is exactly the access-vector *Write* granularity.

use crate::db::Database;
use crate::error::StoreError;
use finecc_model::{FieldId, Oid, Value};
use std::collections::HashSet;

/// One projected field image: the value of `(oid, field)` at a given
/// moment. The undo log stores *before*-images; the write-ahead log
/// stores *after*-images — same shape, same projection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldImage {
    /// The instance.
    pub oid: Oid,
    /// The projected field.
    pub field: FieldId,
    /// The field's value at projection time.
    pub value: Value,
}

/// One transaction's undo log.
#[derive(Debug, Default)]
pub struct UndoLog {
    records: Vec<FieldImage>,
    seen: HashSet<(Oid, FieldId)>,
}

impl UndoLog {
    /// An empty log.
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    /// Records a before-image for `(oid, field)` unless one is already
    /// present — only the *first* image per transaction matters.
    /// Returns `true` if the image was recorded.
    pub fn record(&mut self, oid: Oid, field: FieldId, before: Value) -> bool {
        if self.seen.insert((oid, field)) {
            self.records.push(FieldImage {
                oid,
                field,
                value: before,
            });
            true
        } else {
            false
        }
    }

    /// Records before-images for every `Write` field of an access vector
    /// projection, reading current values from the database. Fields not
    /// visible on the instance are skipped (a subclass TAV projected onto
    /// a superclass instance).
    pub fn record_projection(
        &mut self,
        db: &Database,
        oid: Oid,
        write_fields: impl IntoIterator<Item = FieldId>,
    ) -> Result<usize, StoreError> {
        let mut n = 0;
        for f in write_fields {
            if self.seen.contains(&(oid, f)) {
                continue;
            }
            match db.read(oid, f) {
                Ok(v) => {
                    self.record(oid, f, v);
                    n += 1;
                }
                Err(StoreError::FieldNotVisible { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(n)
    }

    /// The recorded before-images, in record order.
    pub fn images(&self) -> &[FieldImage] {
        &self.records
    }

    /// The *redo* projection: the current (after) value of every
    /// `(oid, field)` pair this log holds a before-image for. Under
    /// strict 2PL the transaction still holds exclusive locks on these
    /// fields at commit, so the values read here are exactly what it
    /// wrote — the payload the write-ahead log persists. Fields of
    /// since-deleted instances are skipped (mirroring
    /// [`UndoLog::rollback`]).
    pub fn redo_projection(&self, db: &Database) -> Vec<FieldImage> {
        self.records
            .iter()
            .filter_map(|img| {
                db.read(img.oid, img.field).ok().map(|value| FieldImage {
                    oid: img.oid,
                    field: img.field,
                    value,
                })
            })
            .collect()
    }

    /// Number of recorded images.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rolls every image back in reverse order and clears the log.
    /// Returns the number of restored fields. Images of since-deleted
    /// instances are skipped.
    pub fn rollback(&mut self, db: &Database) -> usize {
        let mut n = 0;
        for img in self.records.drain(..).rev() {
            if db.write_unchecked(img.oid, img.field, img.value).is_ok() {
                n += 1;
            }
        }
        self.seen.clear();
        n
    }

    /// Discards the log (commit path).
    pub fn clear(&mut self) {
        self.records.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::{FieldType, Schema, SchemaBuilder};
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Database) {
        let mut b = SchemaBuilder::new();
        b.class("a")
            .field("x", FieldType::Int)
            .field("y", FieldType::Str);
        let s = Arc::new(b.finish().unwrap());
        let db = Database::new(Arc::clone(&s));
        (s, db)
    }

    #[test]
    fn rollback_restores_first_image() {
        let (s, db) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let o = db.create(a);
        db.write(o, x, Value::Int(1)).unwrap();

        let mut log = UndoLog::new();
        // Transaction writes x twice; only the first before-image counts.
        assert!(log.record(o, x, db.read(o, x).unwrap()));
        db.write(o, x, Value::Int(2)).unwrap();
        assert!(!log.record(o, x, db.read(o, x).unwrap()));
        db.write(o, x, Value::Int(3)).unwrap();

        assert_eq!(log.rollback(&db), 1);
        assert_eq!(db.read(o, x), Ok(Value::Int(1)));
        assert!(log.is_empty());
    }

    #[test]
    fn rollback_is_reverse_order_across_fields() {
        let (s, db) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let y = s.resolve_field(a, "y").unwrap();
        let o = db.create(a);
        db.write(o, x, Value::Int(10)).unwrap();
        db.write(o, y, Value::str("ten")).unwrap();

        let mut log = UndoLog::new();
        log.record_projection(&db, o, [x, y]).unwrap();
        db.write(o, x, Value::Int(99)).unwrap();
        db.write(o, y, Value::str("smash")).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(log.rollback(&db), 2);
        assert_eq!(db.read(o, x), Ok(Value::Int(10)));
        assert_eq!(db.read(o, y), Ok(Value::str("ten")));
    }

    #[test]
    fn projection_skips_already_seen_and_invisible() {
        let (s, db) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let o = db.create(a);
        let mut log = UndoLog::new();
        assert_eq!(log.record_projection(&db, o, [x]).unwrap(), 1);
        assert_eq!(log.record_projection(&db, o, [x]).unwrap(), 0);
    }

    #[test]
    fn clear_on_commit() {
        let (s, db) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let o = db.create(a);
        let mut log = UndoLog::new();
        log.record(o, x, Value::Int(0));
        db.write(o, x, Value::Int(7)).unwrap();
        log.clear();
        assert_eq!(log.rollback(&db), 0, "cleared log undoes nothing");
        assert_eq!(db.read(o, x), Ok(Value::Int(7)));
    }

    #[test]
    fn rollback_survives_deleted_instance() {
        let (s, db) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let o = db.create(a);
        let mut log = UndoLog::new();
        log.record(o, x, Value::Int(0));
        db.delete(o).unwrap();
        assert_eq!(log.rollback(&db), 0);
    }

    #[test]
    fn redo_projection_reads_after_images() {
        let (s, db) = setup();
        let a = s.class_by_name("a").unwrap();
        let x = s.resolve_field(a, "x").unwrap();
        let y = s.resolve_field(a, "y").unwrap();
        let o = db.create(a);
        let mut log = UndoLog::new();
        log.record_projection(&db, o, [x, y]).unwrap();
        db.write(o, x, Value::Int(42)).unwrap();
        db.write(o, y, Value::str("after")).unwrap();
        let redo = log.redo_projection(&db);
        assert_eq!(redo.len(), 2);
        assert!(redo.contains(&FieldImage {
            oid: o,
            field: x,
            value: Value::Int(42)
        }));
        assert!(redo.contains(&FieldImage {
            oid: o,
            field: y,
            value: Value::str("after")
        }));
        // Before-images are untouched: rollback still restores.
        assert_eq!(log.images().len(), 2);
        assert_eq!(log.rollback(&db), 2);
        assert_eq!(db.read(o, x), Ok(Value::Int(0)));
    }
}
