//! The sharded, thread-safe object heap with class extents.

use crate::error::StoreError;
use finecc_model::{ClassId, FieldId, FieldType, Instance, Oid, Schema, Value};
use parking_lot::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARD_COUNT: usize = 64;

/// The object base: schema + heap + extents.
///
/// All operations take `&self`; the heap is sharded by OID and each shard
/// guarded by a `parking_lot::RwLock`, so concurrent transactions scale.
/// The store performs *physical* synchronization only — *logical*
/// concurrency control (who may read/write what, and when) is the lock
/// manager's job in `finecc-lock`/`finecc-runtime`.
pub struct Database {
    schema: Arc<Schema>,
    shards: Box<[RwLock<HashMap<Oid, Instance>>]>,
    extents: Vec<RwLock<BTreeSet<Oid>>>,
    next_oid: AtomicU64,
}

impl Database {
    /// Creates an empty database over a schema.
    pub fn new(schema: Arc<Schema>) -> Database {
        let shards = (0..SHARD_COUNT)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let extents = (0..schema.class_count())
            .map(|_| RwLock::new(BTreeSet::new()))
            .collect();
        Database {
            schema,
            shards,
            extents,
            next_oid: AtomicU64::new(1),
        }
    }

    /// The schema this database instantiates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    #[inline]
    fn shard(&self, oid: Oid) -> &RwLock<HashMap<Oid, Instance>> {
        &self.shards[(oid.raw() as usize) % SHARD_COUNT]
    }

    /// Creates a default-initialized instance of `class`.
    pub fn create(&self, class: ClassId) -> Oid {
        let oid = Oid(self.next_oid.fetch_add(1, Ordering::Relaxed));
        let inst = Instance::new(&self.schema, class);
        self.shard(oid).write().insert(oid, inst);
        self.extents[class.index()].write().insert(oid);
        oid
    }

    /// Creates an instance and initializes the given fields (type-checked).
    pub fn create_with(
        &self,
        class: ClassId,
        fields: impl IntoIterator<Item = (FieldId, Value)>,
    ) -> Result<Oid, StoreError> {
        let oid = self.create(class);
        for (f, v) in fields {
            self.write(oid, f, v)?;
        }
        Ok(oid)
    }

    /// Inserts an instance under a caller-chosen OID — the recovery
    /// path's constructor (checkpoint load / log replay), where OIDs
    /// come from the previous incarnation of the database and must be
    /// preserved exactly. Returns `false` (and changes nothing) if the
    /// OID is already live. Keeps `next_oid` above every inserted OID
    /// so post-recovery [`Database::create`] never reuses one.
    pub fn insert_instance(&self, oid: Oid, class: ClassId, values: Vec<Value>) -> bool {
        debug_assert_eq!(
            values.len(),
            self.schema.class(class).field_count(),
            "instance value vector must match the class layout"
        );
        let mut shard = self.shard(oid).write();
        if shard.contains_key(&oid) {
            return false;
        }
        shard.insert(oid, Instance { class, values });
        drop(shard);
        self.extents[class.index()].write().insert(oid);
        self.next_oid.fetch_max(oid.raw() + 1, Ordering::Relaxed);
        true
    }

    /// Raises the OID allocator to at least `next` (recovery restores
    /// the allocator recorded in a checkpoint even when the tail of the
    /// OID space holds no live instance).
    pub fn set_next_oid(&self, next: u64) {
        self.next_oid.fetch_max(next, Ordering::Relaxed);
    }

    /// The next OID [`Database::create`] would allocate (checkpoints
    /// persist it so recovery never reuses an OID).
    pub fn next_oid_hint(&self) -> u64 {
        self.next_oid.load(Ordering::Relaxed)
    }

    /// The proper class of an instance.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId, StoreError> {
        self.shard(oid)
            .read()
            .get(&oid)
            .map(|i| i.class)
            .ok_or(StoreError::UnknownOid(oid))
    }

    /// Reads one field.
    pub fn read(&self, oid: Oid, field: FieldId) -> Result<Value, StoreError> {
        let shard = self.shard(oid).read();
        let inst = shard.get(&oid).ok_or(StoreError::UnknownOid(oid))?;
        inst.get(&self.schema, field)
            .cloned()
            .ok_or(StoreError::FieldNotVisible { oid, field })
    }

    /// Validates that `value` may be written to `field`: the type check
    /// and the reference domain check, **without** touching the target
    /// shard. Split out so callers that serialize writes themselves
    /// (the MVCC heap's per-shard writer latch) can run validation
    /// outside their critical section and follow up with
    /// [`Database::exchange_unchecked`].
    pub fn check_write(&self, field: FieldId, value: &Value) -> Result<(), StoreError> {
        let fi = self.schema.field(field);
        if !fi.ty.admits(value) {
            return Err(StoreError::TypeMismatch {
                field,
                expected: fi.ty.to_string(),
                got: value.type_name(),
            });
        }
        if let (FieldType::Ref(domain_root), Value::Ref(target)) = (fi.ty, value) {
            let target_class = self.class_of(*target)?;
            if !self.schema.in_domain(domain_root, target_class) {
                return Err(StoreError::RefDomainMismatch {
                    field,
                    expected_domain: domain_root,
                    got_class: target_class,
                });
            }
        }
        Ok(())
    }

    /// Writes a field **without** type checking and returns the
    /// previous value — the exchange half of [`Database::write`], for
    /// callers that already ran [`Database::check_write`]. One shard
    /// `RwLock::write`, nothing else.
    pub fn exchange_unchecked(
        &self,
        oid: Oid,
        field: FieldId,
        value: Value,
    ) -> Result<Value, StoreError> {
        let mut shard = self.shard(oid).write();
        let inst = shard.get_mut(&oid).ok_or(StoreError::UnknownOid(oid))?;
        inst.set(&self.schema, field, value)
            .ok_or(StoreError::FieldNotVisible { oid, field })
    }

    /// Writes one field after type checking (including the reference
    /// domain check). Returns the previous value.
    pub fn write(&self, oid: Oid, field: FieldId, value: Value) -> Result<Value, StoreError> {
        self.check_write(field, &value)?;
        self.exchange_unchecked(oid, field, value)
    }

    /// Writes a field **without** type checking — used only by undo
    /// (restoring a before-image that was read from this same instance).
    pub fn write_unchecked(
        &self,
        oid: Oid,
        field: FieldId,
        value: Value,
    ) -> Result<(), StoreError> {
        let mut shard = self.shard(oid).write();
        let inst = shard.get_mut(&oid).ok_or(StoreError::UnknownOid(oid))?;
        inst.set(&self.schema, field, value)
            .map(drop)
            .ok_or(StoreError::FieldNotVisible { oid, field })
    }

    /// Deletes an instance. Dangling references elsewhere surface as
    /// [`StoreError::UnknownOid`] on later traversal.
    pub fn delete(&self, oid: Oid) -> Result<(), StoreError> {
        let inst = self
            .shard(oid)
            .write()
            .remove(&oid)
            .ok_or(StoreError::UnknownOid(oid))?;
        self.extents[inst.class.index()].write().remove(&oid);
        Ok(())
    }

    /// The *shallow* extent: proper instances of `class` only, in OID
    /// order (deterministic).
    pub fn extent(&self, class: ClassId) -> Vec<Oid> {
        self.extents[class.index()].read().iter().copied().collect()
    }

    /// The *deep* extent: instances of every class in the domain rooted at
    /// `class` — the unit the §5.2 protocol locks for "all instances of a
    /// class" and "all instances of a domain".
    pub fn deep_extent(&self, class: ClassId) -> Vec<Oid> {
        let mut out = Vec::new();
        for &c in self.schema.domain(class) {
            out.extend(self.extents[c.index()].read().iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// `true` when no instance exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs a closure over an instance (read lock held for the duration).
    pub fn with_instance<R>(
        &self,
        oid: Oid,
        f: impl FnOnce(&Instance) -> R,
    ) -> Result<R, StoreError> {
        let shard = self.shard(oid).read();
        let inst = shard.get(&oid).ok_or(StoreError::UnknownOid(oid))?;
        Ok(f(inst))
    }

    /// A consistent point-in-time copy of the whole heap (grabs all shard
    /// locks; intended for tests and invariant checks, not hot paths).
    pub fn snapshot(&self) -> BTreeMap<Oid, Instance> {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        let mut out = BTreeMap::new();
        for g in &guards {
            for (&oid, inst) in g.iter() {
                out.insert(oid, inst.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::{FieldType, SchemaBuilder};

    fn schema() -> Arc<Schema> {
        let mut b = SchemaBuilder::new();
        b.class("p")
            .field("x", FieldType::Int)
            .ref_field("buddy", "p");
        b.class("q").inherits("p").field("y", FieldType::Bool);
        b.class("other").field("z", FieldType::Int);
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn create_read_write_roundtrip() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let x = s.resolve_field(p, "x").unwrap();
        let o = db.create(p);
        assert_eq!(db.read(o, x), Ok(Value::Int(0)));
        assert_eq!(db.write(o, x, Value::Int(5)), Ok(Value::Int(0)));
        assert_eq!(db.read(o, x), Ok(Value::Int(5)));
        assert_eq!(db.class_of(o), Ok(p));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn type_checking() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let x = s.resolve_field(p, "x").unwrap();
        let o = db.create(p);
        assert!(matches!(
            db.write(o, x, Value::Bool(true)),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn ref_domain_enforced() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let q = s.class_by_name("q").unwrap();
        let other = s.class_by_name("other").unwrap();
        let buddy = s.resolve_field(p, "buddy").unwrap();
        let a = db.create(p);
        let b = db.create(q);
        let c = db.create(other);
        // q is in p's domain: allowed.
        db.write(a, buddy, Value::Ref(b)).unwrap();
        // `other` is not: rejected.
        assert!(matches!(
            db.write(a, buddy, Value::Ref(c)),
            Err(StoreError::RefDomainMismatch { .. })
        ));
        // nil always allowed.
        db.write(a, buddy, Value::Nil).unwrap();
    }

    #[test]
    fn extents_shallow_vs_deep() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let q = s.class_by_name("q").unwrap();
        let p1 = db.create(p);
        let q1 = db.create(q);
        let q2 = db.create(q);
        assert_eq!(db.extent(p), vec![p1]);
        assert_eq!(db.extent(q), vec![q1, q2]);
        assert_eq!(db.deep_extent(p), vec![p1, q1, q2]);
        assert_eq!(db.deep_extent(q), vec![q1, q2]);
    }

    #[test]
    fn delete_removes_from_extent() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let o = db.create(p);
        db.delete(o).unwrap();
        assert!(db.extent(p).is_empty());
        assert_eq!(db.delete(o), Err(StoreError::UnknownOid(o)));
        assert!(db.is_empty());
        let x = s.resolve_field(p, "x").unwrap();
        assert_eq!(db.read(o, x), Err(StoreError::UnknownOid(o)));
    }

    #[test]
    fn create_with_initializers() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let q = s.class_by_name("q").unwrap();
        let x = s.resolve_field(q, "x").unwrap();
        let y = s.resolve_field(q, "y").unwrap();
        let o = db
            .create_with(q, [(x, Value::Int(3)), (y, Value::Bool(true))])
            .unwrap();
        assert_eq!(db.read(o, x), Ok(Value::Int(3)));
        assert_eq!(db.read(o, y), Ok(Value::Bool(true)));
    }

    #[test]
    fn field_visibility_checked() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let q = s.class_by_name("q").unwrap();
        let y = s.resolve_field(q, "y").unwrap();
        let o = db.create(p);
        assert!(matches!(
            db.read(o, y),
            Err(StoreError::FieldNotVisible { .. })
        ));
    }

    #[test]
    fn snapshot_is_point_in_time_copy() {
        let s = schema();
        let db = Database::new(Arc::clone(&s));
        let p = s.class_by_name("p").unwrap();
        let x = s.resolve_field(p, "x").unwrap();
        let o = db.create(p);
        db.write(o, x, Value::Int(1)).unwrap();
        let snap = db.snapshot();
        db.write(o, x, Value::Int(2)).unwrap();
        assert_eq!(snap[&o].get(&s, x), Some(&Value::Int(1)));
    }

    #[test]
    fn oids_unique_across_threads() {
        let s = schema();
        let db = Arc::new(Database::new(Arc::clone(&s)));
        let p = s.class_by_name("p").unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| db.create(p)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Oid> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
        assert_eq!(db.len(), 4000);
        assert_eq!(db.extent(p).len(), 4000);
    }
}
