//! Referential-integrity checking.
//!
//! The store type-checks reference *writes* (target must be live and in
//! the declared domain), but deletion can strand references afterwards —
//! the OODB equivalent of a dangling foreign key. [`check`] sweeps the
//! heap and reports every violation; tests and long-running experiments
//! use it as a global invariant.

use crate::db::Database;
use finecc_model::{FieldId, FieldType, Oid, Value};

/// One referential-integrity violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A reference field points to an OID that no longer exists.
    Dangling {
        /// The instance holding the reference.
        holder: Oid,
        /// The reference field.
        field: FieldId,
        /// The dead target.
        target: Oid,
    },
    /// A reference field points to a live instance outside the field's
    /// declared domain (possible only through `write_unchecked`, i.e. a
    /// buggy undo image).
    WrongDomain {
        /// The instance holding the reference.
        holder: Oid,
        /// The reference field.
        field: FieldId,
        /// The (live) target.
        target: Oid,
    },
}

/// Sweeps the whole heap and returns every violation (empty = consistent).
pub fn check(db: &Database) -> Vec<Violation> {
    let schema = db.schema();
    let mut out = Vec::new();
    for (holder, inst) in db.snapshot() {
        for &field in &schema.class(inst.class).all_fields {
            let FieldType::Ref(domain_root) = schema.field(field).ty else {
                continue;
            };
            let Some(&Value::Ref(target)) = inst.get(schema, field) else {
                continue;
            };
            match db.class_of(target) {
                Err(_) => out.push(Violation::Dangling {
                    holder,
                    field,
                    target,
                }),
                Ok(target_class) if !schema.in_domain(domain_root, target_class) => {
                    out.push(Violation::WrongDomain {
                        holder,
                        field,
                        target,
                    })
                }
                Ok(_) => {}
            }
        }
    }
    out
}

/// Clears (sets to nil) every dangling reference found; returns how many
/// were repaired. Wrong-domain references are left for the caller — they
/// indicate a bug, not ordinary deletion.
pub fn repair_dangling(db: &Database) -> usize {
    let mut n = 0;
    for v in check(db) {
        if let Violation::Dangling { holder, field, .. } = v {
            if db.write(holder, field, Value::Nil).is_ok() {
                n += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use finecc_model::{FieldType, SchemaBuilder};
    use std::sync::Arc;

    fn setup() -> (Arc<finecc_model::Schema>, Database) {
        let mut b = SchemaBuilder::new();
        b.class("node")
            .ref_field("next", "node")
            .field("v", FieldType::Int);
        b.class("special").inherits("node");
        let s = Arc::new(b.finish().unwrap());
        let db = Database::new(Arc::clone(&s));
        (s, db)
    }

    #[test]
    fn consistent_heap_passes() {
        let (s, db) = setup();
        let node = s.class_by_name("node").unwrap();
        let next = s.resolve_field(node, "next").unwrap();
        let a = db.create(node);
        let b = db.create(node);
        db.write(a, next, Value::Ref(b)).unwrap();
        assert!(check(&db).is_empty());
    }

    #[test]
    fn deletion_creates_dangling_reference() {
        let (s, db) = setup();
        let node = s.class_by_name("node").unwrap();
        let next = s.resolve_field(node, "next").unwrap();
        let a = db.create(node);
        let b = db.create(node);
        db.write(a, next, Value::Ref(b)).unwrap();
        db.delete(b).unwrap();
        let violations = check(&db);
        assert_eq!(
            violations,
            vec![Violation::Dangling {
                holder: a,
                field: next,
                target: b
            }]
        );
        assert_eq!(repair_dangling(&db), 1);
        assert!(check(&db).is_empty());
        assert_eq!(db.read(a, next).unwrap(), Value::Nil);
    }

    #[test]
    fn subclass_targets_are_in_domain() {
        let (s, db) = setup();
        let node = s.class_by_name("node").unwrap();
        let special = s.class_by_name("special").unwrap();
        let next = s.resolve_field(node, "next").unwrap();
        let a = db.create(node);
        let sp = db.create(special);
        db.write(a, next, Value::Ref(sp)).unwrap();
        assert!(check(&db).is_empty());
    }

    #[test]
    fn wrong_domain_detected_via_unchecked_write() {
        let mut bldr = SchemaBuilder::new();
        bldr.class("x").ref_field("r", "x");
        bldr.class("y");
        let s = Arc::new(bldr.finish().unwrap());
        let db = Database::new(Arc::clone(&s));
        let x = s.class_by_name("x").unwrap();
        let y = s.class_by_name("y").unwrap();
        let r = s.resolve_field(x, "r").unwrap();
        let a = db.create(x);
        let bad = db.create(y);
        // Bypass type checking, as a buggy undo path would.
        db.write_unchecked(a, r, Value::Ref(bad)).unwrap();
        let violations = check(&db);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], Violation::WrongDomain { .. }));
        // repair_dangling leaves wrong-domain refs alone.
        assert_eq!(repair_dangling(&db), 0);
    }
}
