//! Store errors.

use finecc_model::{ClassId, FieldId, Oid};
use std::fmt;

/// Errors raised by [`crate::Database`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// No instance with this OID exists (never created, or deleted).
    UnknownOid(Oid),
    /// The field is not visible in the instance's class.
    FieldNotVisible {
        /// Target instance.
        oid: Oid,
        /// Offending field.
        field: FieldId,
    },
    /// The value's type does not match the field's declared type.
    TypeMismatch {
        /// Target field.
        field: FieldId,
        /// Declared type, rendered.
        expected: String,
        /// Actual value type name.
        got: &'static str,
    },
    /// A reference field was assigned an instance outside the declared
    /// target domain.
    RefDomainMismatch {
        /// Target field.
        field: FieldId,
        /// Required domain root.
        expected_domain: ClassId,
        /// Class of the assigned instance.
        got_class: ClassId,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownOid(o) => write!(f, "no instance {o}"),
            StoreError::FieldNotVisible { oid, field } => {
                write!(f, "field {field} not visible on {oid}")
            }
            StoreError::TypeMismatch {
                field,
                expected,
                got,
            } => write!(f, "field {field} expects {expected}, got {got}"),
            StoreError::RefDomainMismatch {
                field,
                expected_domain,
                got_class,
            } => write!(
                f,
                "field {field} must reference domain {expected_domain}, got class {got_class}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StoreError::UnknownOid(Oid(3)).to_string().contains("oid:3"));
        let e = StoreError::TypeMismatch {
            field: FieldId(1),
            expected: "integer".into(),
            got: "string",
        };
        assert!(e.to_string().contains("integer"));
    }
}
