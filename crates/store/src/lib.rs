//! # finecc-store — the in-memory object base
//!
//! A thread-safe object store for the OODB: a sharded heap of
//! [`finecc_model::Instance`]s keyed by OID, per-class extents (shallow
//! and deep/domain, the units the §5.2 locking protocol targets), typed
//! field access, and an undo log whose granularity follows the paper's
//! recovery remark — before-images are *projections through access
//! vectors*, not whole-instance copies.

pub mod db;
pub mod error;
pub mod integrity;
pub mod undo;

pub use db::Database;
pub use error::StoreError;
pub use integrity::{check as check_integrity, repair_dangling, Violation};
pub use undo::{FieldImage, UndoLog};
