//! Abstract syntax of method bodies.
//!
//! Names (`Expr::Name`, `Stmt::Assign`) are left unresolved in the AST;
//! [`mod@crate::analyze`] and the interpreter resolve them against the method's
//! parameters, locals, and the fields visible in the *defining* class —
//! the resolution order the paper's Definition 6 presumes.

use std::fmt;

/// Binary operators, loosest first in the grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Logical or (short-circuit).
    Or,
    /// Logical and (short-circuit).
    And,
    /// Equality.
    Eq,
    /// Inequality (`<>`).
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Addition (ints/floats) or concatenation (strings).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division on ints; division by zero yields 0,
    /// keeping generated workloads total).
    Div,
    /// Remainder.
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("not "),
        }
    }
}

/// The receiver of a message send.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// `... to self` — the current instance.
    SelfRef,
    /// `... to f` — the instance referenced by field `f`.
    Field(String),
}

/// A message send, in statement or expression position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendExpr {
    /// `Some(class)` for the prefixed form `send C.M to self`
    /// (only valid with [`Target::SelfRef`]).
    pub prefix: Option<String>,
    /// The method name.
    pub method: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
    /// The receiver.
    pub target: Target,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal (stored as bits for `Eq`).
    Float(u64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `nil`.
    Nil,
    /// `self` as a reference value.
    SelfRef,
    /// An unresolved name: parameter, local, or field.
    Name(String),
    /// A builtin call such as the paper's `expr(f1, f2, p1)`.
    Call {
        /// Builtin name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A value-returning message send `(send m(x) to f)`.
    Send(Box<SendExpr>),
}

impl Expr {
    /// Float literal constructor.
    pub fn float(v: f64) -> Expr {
        Expr::Float(v.to_bits())
    }

    /// The float value of a [`Expr::Float`] literal.
    pub fn float_value(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// No-op (`skip`), the empty body.
    Skip,
    /// `name := expr` — assignment to a field or local.
    Assign {
        /// Target name (field of the defining class, or a local).
        name: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `var name := expr` — local variable declaration.
    VarDecl {
        /// Local name (shadows fields for the rest of the body).
        name: String,
        /// Initializer.
        expr: Expr,
    },
    /// A message send in statement position.
    Send(SendExpr),
    /// Conditional.
    If {
        /// Condition.
        cond: Expr,
        /// `then` branch.
        then_blk: Block,
        /// Optional `else` branch.
        else_blk: Option<Block>,
    },
    /// Loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `return [expr]` — leaves the method with a value (default nil).
    Return(Option<Expr>),
}

/// A sequence of statements.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Block(pub Vec<Stmt>);

impl Block {
    /// An empty block.
    pub fn empty() -> Block {
        Block(Vec::new())
    }

    /// Number of statements (non-recursive).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the block has no statements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip() {
        let e = Expr::float(2.5);
        if let Expr::Float(bits) = e {
            assert_eq!(Expr::float_value(bits), 2.5);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn ops_display() {
        assert_eq!(BinOp::Ne.to_string(), "<>");
        assert_eq!(BinOp::Add.to_string(), "+");
        assert_eq!(UnOp::Not.to_string(), "not ");
    }

    #[test]
    fn block_helpers() {
        assert!(Block::empty().is_empty());
        assert_eq!(Block(vec![Stmt::Skip]).len(), 1);
    }
}
