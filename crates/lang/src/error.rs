//! Parse-time and run-time errors of the method language.

use finecc_model::{ClassId, FieldId, Oid};
use std::fmt;

/// A lexing or parsing error, with 1-based line/column of the offence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl ParseError {
    pub(crate) fn new(msg: impl Into<String>, line: u32, col: u32) -> Self {
        ParseError {
            msg: msg.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Errors raised while interpreting a method, or propagated from the
/// concurrency-control layer driving the [`crate::DataAccess`] trait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A message was sent to a value that is not an instance reference.
    NotAReference { method: String },
    /// A message was sent through a nil field.
    NilReceiver { method: String },
    /// The receiver's class does not understand the message.
    MessageNotUnderstood { class: ClassId, method: String },
    /// The OID does not exist in the store (dangling reference).
    UnknownOid(Oid),
    /// The field is not visible in the instance's class.
    FieldNotVisible { oid: Oid, field: FieldId },
    /// A value of the wrong type was produced where another was required.
    TypeError(String),
    /// An unknown builtin function was called.
    UnknownBuiltin(String),
    /// A builtin function rejected its arguments.
    Builtin(String),
    /// Self-call recursion exceeded the interpreter's depth limit.
    DepthExceeded(usize),
    /// Loop iterations exceeded the interpreter's fuel limit.
    FuelExhausted,
    /// An unknown name was referenced (neither parameter, local nor field).
    UnknownName(String),
    /// Wrong number of arguments in a message send.
    ArityMismatch {
        method: String,
        expected: usize,
        got: usize,
    },
    /// The transaction driving this execution was aborted by the
    /// concurrency-control layer. `deadlock` distinguishes deadlock-victim
    /// aborts (retryable) from other aborts.
    ConcurrencyAbort { deadlock: bool, msg: String },
    /// The write-ahead log could not make the commit durable (append
    /// or fsync failure). The transaction has been rolled back and
    /// nothing became visible; the failure may be transient (the log
    /// degrades batch-by-batch), so the error is retryable.
    LogIo(String),
    /// A recovery-pipeline operation (checkpoint write, checkpoint
    /// decode, log replay) failed. Carries the offending file and —
    /// where the failure has a position — the byte offset, mirrored
    /// from `finecc_wal`'s typed recovery error (this crate cannot
    /// depend on it, so the fields are plain). Not retryable: the
    /// store's durability pipeline needs attention, not a re-run.
    Recovery {
        /// The file (or directory) the failure is about.
        file: String,
        /// Byte offset of the offence, when the failure has one.
        offset: Option<u64>,
        /// What went wrong.
        detail: String,
    },
}

impl ExecError {
    /// `true` when the error is a deadlock-victim abort, which callers
    /// typically retry.
    pub fn is_deadlock(&self) -> bool {
        matches!(self, ExecError::ConcurrencyAbort { deadlock: true, .. })
    }

    /// `true` when the standard response is to re-run the transaction:
    /// deadlock-victim aborts and (possibly transient) log I/O
    /// failures. In both cases the scheme has fully rolled the
    /// transaction back before returning.
    pub fn is_retryable(&self) -> bool {
        self.is_deadlock() || matches!(self, ExecError::LogIo(_))
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NotAReference { method } => {
                write!(f, "message `{method}` sent to a non-reference value")
            }
            ExecError::NilReceiver { method } => {
                write!(f, "message `{method}` sent through a nil field")
            }
            ExecError::MessageNotUnderstood { class, method } => {
                write!(f, "class {class} does not understand message `{method}`")
            }
            ExecError::UnknownOid(o) => write!(f, "dangling reference {o}"),
            ExecError::FieldNotVisible { oid, field } => {
                write!(f, "field {field} not visible on instance {oid}")
            }
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
            ExecError::UnknownBuiltin(n) => write!(f, "unknown builtin `{n}`"),
            ExecError::Builtin(m) => write!(f, "builtin error: {m}"),
            ExecError::DepthExceeded(d) => write!(f, "send depth exceeded {d}"),
            ExecError::FuelExhausted => write!(f, "loop fuel exhausted"),
            ExecError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            ExecError::ArityMismatch {
                method,
                expected,
                got,
            } => write!(
                f,
                "method `{method}` expects {expected} argument(s), got {got}"
            ),
            ExecError::ConcurrencyAbort { deadlock, msg } => {
                if *deadlock {
                    write!(f, "transaction aborted (deadlock victim): {msg}")
                } else {
                    write!(f, "transaction aborted: {msg}")
                }
            }
            ExecError::LogIo(m) => write!(f, "write-ahead log failure: {m}"),
            ExecError::Recovery {
                file,
                offset,
                detail,
            } => match offset {
                Some(off) => write!(f, "recovery failure in {file} at offset {off}: {detail}"),
                None => write!(f, "recovery failure in {file}: {detail}"),
            },
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_classification() {
        let e = ExecError::ConcurrencyAbort {
            deadlock: true,
            msg: "cycle".into(),
        };
        assert!(e.is_deadlock());
        assert!(!ExecError::FuelExhausted.is_deadlock());
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn retryable_classification() {
        let log = ExecError::LogIo("fsync failed".into());
        assert!(log.is_retryable());
        assert!(!log.is_deadlock());
        let victim = ExecError::ConcurrencyAbort {
            deadlock: true,
            msg: "cycle".into(),
        };
        assert!(victim.is_retryable());
        let refused = ExecError::ConcurrencyAbort {
            deadlock: false,
            msg: "timeout".into(),
        };
        assert!(!refused.is_retryable());
        assert!(!ExecError::FuelExhausted.is_retryable());
        let rec = ExecError::Recovery {
            file: "wal.log".into(),
            offset: Some(8),
            detail: "checksum".into(),
        };
        assert!(!rec.is_retryable(), "recovery failures need attention");
        assert!(rec.to_string().contains("offset 8"));
    }

    #[test]
    fn parse_error_display() {
        let e = ParseError::new("expected `end`", 3, 14);
        assert_eq!(e.to_string(), "parse error at 3:14: expected `end`");
    }
}
