//! The builtin-function registry behind the paper's uninterpreted
//! `expr(...)` and `cond(...)` calls.
//!
//! Figure 1 writes method bodies like `f1 := expr(f1, f2, p1)` without
//! saying what `expr` computes — only *which fields it touches* matters to
//! the analysis. To keep those bodies executable, builtins get
//! deterministic, type-preserving default semantics; applications may
//! register their own.

use crate::error::ExecError;
use finecc_model::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Signature of a builtin function.
pub type BuiltinFn = dyn Fn(&[Value]) -> Result<Value, ExecError> + Send + Sync;

/// A registry of builtin functions, keyed by name.
#[derive(Clone)]
pub struct Builtins {
    map: HashMap<String, Arc<BuiltinFn>>,
}

impl fmt::Debug for Builtins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.map.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("Builtins").field("names", &names).finish()
    }
}

/// Sums the `as_int` views of values; strings contribute their length,
/// floats their truncation, nil/refs contribute nothing.
fn int_sum(args: &[Value]) -> i64 {
    args.iter()
        .map(|v| match v {
            Value::Str(s) => s.len() as i64,
            Value::Float(f) => *f as i64,
            other => other.as_int().unwrap_or(0),
        })
        .fold(0i64, i64::wrapping_add)
}

impl Builtins {
    /// An empty registry (every call errors with [`ExecError::UnknownBuiltin`]).
    pub fn empty() -> Builtins {
        Builtins {
            map: HashMap::new(),
        }
    }

    /// The standard registry:
    ///
    /// * `expr(v0, …)` — type-preserving combine: result has `v0`'s type.
    ///   Ints: wrapping sum of all numeric views. Floats: float sum.
    ///   Strings: `v0` with a digest of the rest appended, capped at 64
    ///   chars. Bools: parity of the numeric sum. Nil/refs: `v0` itself.
    /// * `cond(…)` — `true` iff the numeric sum of the arguments is > 0
    ///   (so workloads can steer branches through parameters).
    /// * `min`/`max`/`abs` — integer helpers.
    /// * `len` — string length / 0 otherwise.
    pub fn standard() -> Builtins {
        let mut b = Builtins::empty();
        b.register("expr", |args| {
            let Some(first) = args.first() else {
                return Ok(Value::Int(0));
            };
            Ok(match first {
                Value::Int(_) | Value::Bool(_) => {
                    let s = int_sum(args);
                    if matches!(first, Value::Bool(_)) {
                        Value::Bool(s % 2 != 0)
                    } else {
                        Value::Int(s)
                    }
                }
                Value::Float(f0) => {
                    let mut acc = *f0;
                    for v in &args[1..] {
                        acc += match v {
                            Value::Float(f) => *f,
                            Value::Str(s) => s.len() as f64,
                            other => other.as_int().unwrap_or(0) as f64,
                        };
                    }
                    Value::Float(acc)
                }
                Value::Str(s0) => {
                    let digest = int_sum(&args[1..]);
                    let mut s = format!("{s0}|{digest}");
                    if s.len() > 64 {
                        s = s[s.len() - 64..].to_string();
                    }
                    Value::str(s)
                }
                Value::Nil | Value::Ref(_) => first.clone(),
            })
        });
        b.register("cond", |args| Ok(Value::Bool(int_sum(args) > 0)));
        b.register("min", |args| {
            int2(args, "min").map(|(a, b)| Value::Int(a.min(b)))
        });
        b.register("max", |args| {
            int2(args, "max").map(|(a, b)| Value::Int(a.max(b)))
        });
        b.register("abs", |args| match args {
            [v] => v
                .as_int()
                .map(|i| Value::Int(i.wrapping_abs()))
                .ok_or_else(|| ExecError::Builtin("abs expects an integer".into())),
            _ => Err(ExecError::Builtin("abs expects one argument".into())),
        });
        b.register("len", |args| match args {
            [Value::Str(s)] => Ok(Value::Int(s.len() as i64)),
            [_] => Ok(Value::Int(0)),
            _ => Err(ExecError::Builtin("len expects one argument".into())),
        });
        b
    }

    /// Registers (or replaces) a builtin.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, ExecError> + Send + Sync + 'static,
    ) {
        self.map.insert(name.to_string(), Arc::new(f));
    }

    /// Invokes a builtin by name.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, ExecError> {
        match self.map.get(name) {
            Some(f) => f(args),
            None => Err(ExecError::UnknownBuiltin(name.to_string())),
        }
    }

    /// `true` if a builtin with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }
}

impl Default for Builtins {
    fn default() -> Self {
        Builtins::standard()
    }
}

fn int2(args: &[Value], name: &str) -> Result<(i64, i64), ExecError> {
    match args {
        [a, b] => match (a.as_int(), b.as_int()) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(ExecError::Builtin(format!("{name} expects integers"))),
        },
        _ => Err(ExecError::Builtin(format!("{name} expects two arguments"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_preserves_first_type() {
        let b = Builtins::standard();
        assert_eq!(
            b.call("expr", &[Value::Int(1), Value::Bool(true), Value::Int(3)]),
            Ok(Value::Int(5))
        );
        assert!(matches!(
            b.call("expr", &[Value::str("ab"), Value::Int(7)]).unwrap(),
            Value::Str(_)
        ));
        assert!(matches!(
            b.call("expr", &[Value::Float(1.5), Value::Int(2)]).unwrap(),
            Value::Float(_)
        ));
        assert_eq!(
            b.call("expr", &[Value::Bool(false), Value::Int(3)]),
            Ok(Value::Bool(true))
        );
        assert_eq!(b.call("expr", &[Value::Nil]), Ok(Value::Nil));
        assert_eq!(b.call("expr", &[]), Ok(Value::Int(0)));
    }

    #[test]
    fn expr_string_capped() {
        let b = Builtins::standard();
        let long = "x".repeat(100);
        let out = b.call("expr", &[Value::str(long)]).unwrap();
        if let Value::Str(s) = out {
            assert!(s.len() <= 64);
        } else {
            panic!("expected string");
        }
    }

    #[test]
    fn cond_is_sum_positive() {
        let b = Builtins::standard();
        assert_eq!(
            b.call("cond", &[Value::Int(2), Value::Int(-1)]),
            Ok(Value::Bool(true))
        );
        assert_eq!(b.call("cond", &[Value::Int(0)]), Ok(Value::Bool(false)));
    }

    #[test]
    fn helpers() {
        let b = Builtins::standard();
        assert_eq!(
            b.call("min", &[Value::Int(3), Value::Int(5)]),
            Ok(Value::Int(3))
        );
        assert_eq!(
            b.call("max", &[Value::Int(3), Value::Int(5)]),
            Ok(Value::Int(5))
        );
        assert_eq!(b.call("abs", &[Value::Int(-3)]), Ok(Value::Int(3)));
        assert_eq!(b.call("len", &[Value::str("abc")]), Ok(Value::Int(3)));
        assert!(b.call("min", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn unknown_and_custom() {
        let mut b = Builtins::standard();
        assert!(matches!(
            b.call("nope", &[]),
            Err(ExecError::UnknownBuiltin(_))
        ));
        b.register("nope", |_| Ok(Value::Int(42)));
        assert_eq!(b.call("nope", &[]), Ok(Value::Int(42)));
        assert!(b.contains("expr"));
        assert!(!Builtins::empty().contains("expr"));
    }

    #[test]
    fn determinism() {
        let b = Builtins::standard();
        let args = [Value::Int(10), Value::str("xy"), Value::Bool(true)];
        assert_eq!(b.call("expr", &args), b.call("expr", &args));
    }
}
