//! Recursive-descent parser for class files and method bodies, plus
//! [`build_schema`], which turns a parsed program into a validated
//! [`Schema`] and the per-method ASTs.

use crate::ast::{BinOp, Block, Expr, SendExpr, Stmt, Target, UnOp};
use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use finecc_model::{FieldType, MethodId, ModelError, Schema, SchemaBuilder};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A parsed field declaration (type still by name).
#[derive(Clone, Debug, PartialEq)]
pub struct FieldSrc {
    /// Field name.
    pub name: String,
    /// Type name: `integer`, `boolean`, `float`, `string`, or a class name.
    pub ty_name: String,
}

/// A parsed method definition.
#[derive(Clone, Debug, PartialEq)]
pub struct MethodSrc {
    /// Method name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// `true` when declared `is redefined as`, i.e. an explicit override.
    pub redefined: bool,
    /// The body.
    pub body: Block,
}

/// A parsed class declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassSource {
    /// Class name.
    pub name: String,
    /// Parent class names.
    pub parents: Vec<String>,
    /// Field declarations.
    pub fields: Vec<FieldSrc>,
    /// Method definitions.
    pub methods: Vec<MethodSrc>,
}

/// A parsed program: a list of class declarations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Classes in source order.
    pub classes: Vec<ClassSource>,
}

/// Method bodies keyed by [`MethodId`], produced by [`build_schema`].
#[derive(Clone, Debug, Default)]
pub struct MethodBodies {
    bodies: Vec<Arc<Block>>,
}

impl MethodBodies {
    /// The body of a method definition site.
    pub fn body(&self, id: MethodId) -> &Block {
        &self.bodies[id.index()]
    }

    /// Shared handle to a body.
    pub fn body_arc(&self, id: MethodId) -> Arc<Block> {
        Arc::clone(&self.bodies[id.index()])
    }

    /// Number of bodies (equals the schema's method count).
    pub fn len(&self) -> usize {
        self.bodies.len()
    }

    /// `true` when no methods exist.
    pub fn is_empty(&self) -> bool {
        self.bodies.is_empty()
    }
}

/// Errors from [`build_schema`]: syntactic, semantic, or an
/// override-marker inconsistency.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Schema validation failed.
    Model(ModelError),
    /// `is redefined as` marker disagrees with the hierarchy.
    Redefinition {
        /// Class containing the definition.
        class: String,
        /// Method name.
        method: String,
        /// `true` if the marker was present but nothing is overridden;
        /// `false` if an override lacks the marker.
        marked: bool,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Model(e) => write!(f, "{e}"),
            BuildError::Redefinition {
                class,
                method,
                marked: true,
            } => write!(
                f,
                "method `{method}` in class `{class}` is marked `redefined` but overrides nothing"
            ),
            BuildError::Redefinition { class, method, .. } => write!(
                f,
                "method `{method}` in class `{class}` overrides an inherited method; mark it `is redefined as`"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}
impl From<ModelError> for BuildError {
    fn from(e: ModelError) -> Self {
        BuildError::Model(e)
    }
}

/// Parses a program (a sequence of `class` declarations).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut classes = Vec::new();
    while p.peek() != &Tok::Eof {
        classes.push(p.parse_class()?);
    }
    Ok(Program { classes })
}

/// Parses a stand-alone method body (used by tests and programmatic
/// schema construction).
pub fn parse_body(src: &str) -> Result<Block, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let blk = p.parse_block(&[Tok::Eof])?;
    p.expect(Tok::Eof)?;
    Ok(blk)
}

/// Parses `src` and builds the validated schema plus method bodies.
pub fn build_schema(src: &str) -> Result<(Schema, MethodBodies), BuildError> {
    let prog = parse_program(src)?;
    build_schema_from_program(&prog)
}

/// Builds a schema from an already-parsed [`Program`].
pub fn build_schema_from_program(prog: &Program) -> Result<(Schema, MethodBodies), BuildError> {
    let mut b = SchemaBuilder::new();
    for cs in &prog.classes {
        let decl = b.class(&cs.name);
        for p in &cs.parents {
            decl.inherits(p);
        }
        for f in &cs.fields {
            match f.ty_name.as_str() {
                "integer" => decl.field(&f.name, FieldType::Int),
                "boolean" => decl.field(&f.name, FieldType::Bool),
                "float" => decl.field(&f.name, FieldType::Float),
                "string" => decl.field(&f.name, FieldType::Str),
                cls => decl.ref_field(&f.name, cls),
            };
        }
        for m in &cs.methods {
            let params: Vec<&str> = m.params.iter().map(String::as_str).collect();
            decl.method(&m.name, &params);
        }
    }
    let schema = b.finish()?;

    // Attach bodies by (class name, method name); check `redefined` markers.
    let mut by_key: HashMap<(String, String), &MethodSrc> = HashMap::new();
    for cs in &prog.classes {
        for m in &cs.methods {
            by_key.insert((cs.name.clone(), m.name.clone()), m);
        }
    }
    let mut bodies: Vec<Arc<Block>> = (0..schema.method_count())
        .map(|_| Arc::new(Block::empty()))
        .collect();
    for mi in schema.methods() {
        let cname = schema.class(mi.owner).name.clone();
        let src = by_key
            .get(&(cname.clone(), mi.sig.name.clone()))
            .expect("every schema method came from the program");
        if src.redefined != mi.overrides.is_some() {
            return Err(BuildError::Redefinition {
                class: cname,
                method: mi.sig.name.clone(),
                marked: src.redefined,
            });
        }
        bodies[mi.id.index()] = Arc::new(src.body.clone());
    }
    Ok((schema, MethodBodies { bodies }))
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.toks[self.pos];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.here();
        ParseError::new(msg, l, c)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Tok::Ident(_) => match self.bump() {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_class(&mut self) -> Result<ClassSource, ParseError> {
        self.expect(Tok::KwClass)?;
        let name = self.expect_ident()?;
        let mut parents = Vec::new();
        if *self.peek() == Tok::KwInherits {
            self.bump();
            parents.push(self.expect_ident()?);
            while *self.peek() == Tok::Comma {
                self.bump();
                parents.push(self.expect_ident()?);
            }
        }
        self.expect(Tok::LBrace)?;

        let mut fields = Vec::new();
        if *self.peek() == Tok::KwFields {
            self.bump();
            self.expect(Tok::LBrace)?;
            while *self.peek() != Tok::RBrace {
                let fname = self.expect_ident()?;
                self.expect(Tok::Colon)?;
                let ty_name = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                fields.push(FieldSrc {
                    name: fname,
                    ty_name,
                });
            }
            self.expect(Tok::RBrace)?;
        }

        let mut methods = Vec::new();
        while *self.peek() == Tok::KwMethod {
            methods.push(self.parse_method()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(ClassSource {
            name,
            parents,
            fields,
            methods,
        })
    }

    fn parse_method(&mut self) -> Result<MethodSrc, ParseError> {
        self.expect(Tok::KwMethod)?;
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            if *self.peek() != Tok::RParen {
                params.push(self.expect_ident()?);
                while *self.peek() == Tok::Comma {
                    self.bump();
                    params.push(self.expect_ident()?);
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::KwIs)?;
        let mut redefined = false;
        if *self.peek() == Tok::KwRedefined {
            self.bump();
            self.expect(Tok::KwAs)?;
            redefined = true;
        }
        let body = self.parse_block(&[Tok::KwEnd])?;
        self.expect(Tok::KwEnd)?;
        Ok(MethodSrc {
            name,
            params,
            redefined,
            body,
        })
    }

    /// Parses statements until one of `terminators` (not consumed).
    fn parse_block(&mut self, terminators: &[Tok]) -> Result<Block, ParseError> {
        let mut stmts = Vec::new();
        loop {
            while *self.peek() == Tok::Semi {
                self.bump();
            }
            if terminators.contains(self.peek()) {
                break;
            }
            stmts.push(self.parse_stmt()?);
            if !terminators.contains(self.peek()) {
                self.expect(Tok::Semi)?;
            }
        }
        Ok(Block(stmts))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::KwSkip => {
                self.bump();
                Ok(Stmt::Skip)
            }
            Tok::KwVar => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(Tok::Assign)?;
                let expr = self.parse_expr()?;
                Ok(Stmt::VarDecl { name, expr })
            }
            Tok::KwSend => {
                let send = self.parse_send()?;
                Ok(Stmt::Send(send))
            }
            Tok::KwIf => {
                self.bump();
                let cond = self.parse_expr()?;
                self.expect(Tok::KwThen)?;
                let then_blk = self.parse_block(&[Tok::KwElse, Tok::KwEnd])?;
                let else_blk = if *self.peek() == Tok::KwElse {
                    self.bump();
                    Some(self.parse_block(&[Tok::KwEnd])?)
                } else {
                    None
                };
                self.expect(Tok::KwEnd)?;
                Ok(Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                })
            }
            Tok::KwWhile => {
                self.bump();
                let cond = self.parse_expr()?;
                self.expect(Tok::KwDo)?;
                let body = self.parse_block(&[Tok::KwEnd])?;
                self.expect(Tok::KwEnd)?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwReturn => {
                self.bump();
                let stop = matches!(
                    self.peek(),
                    Tok::Semi | Tok::KwEnd | Tok::KwElse | Tok::RBrace | Tok::Eof
                );
                let expr = if stop { None } else { Some(self.parse_expr()?) };
                Ok(Stmt::Return(expr))
            }
            Tok::Ident(_) => {
                let name = self.expect_ident()?;
                self.expect(Tok::Assign)?;
                let expr = self.parse_expr()?;
                Ok(Stmt::Assign { name, expr })
            }
            other => Err(self.err(format!("expected a statement, found {other}"))),
        }
    }

    /// `send [C .] M [(args)] to (self | field)`.
    fn parse_send(&mut self) -> Result<SendExpr, ParseError> {
        self.expect(Tok::KwSend)?;
        let first = self.expect_ident()?;
        let (prefix, method) = if *self.peek() == Tok::Dot {
            self.bump();
            let m = self.expect_ident()?;
            (Some(first), m)
        } else {
            (None, first)
        };
        let mut args = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            if *self.peek() != Tok::RParen {
                args.push(self.parse_expr()?);
                while *self.peek() == Tok::Comma {
                    self.bump();
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::KwTo)?;
        let target = match self.peek().clone() {
            Tok::KwSelf => {
                self.bump();
                Target::SelfRef
            }
            Tok::Ident(_) => Target::Field(self.expect_ident()?),
            other => return Err(self.err(format!("expected `self` or a field, found {other}"))),
        };
        if prefix.is_some() && target != Target::SelfRef {
            return Err(self.err("a prefixed send (`send C.M ...`) must target `self`"));
        }
        Ok(SendExpr {
            prefix,
            method,
            args,
            target,
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while *self.peek() == Tok::KwOr {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while *self.peek() == Tok::KwAnd {
            self.bump();
            let rhs = self.parse_not()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::KwNot {
            self.bump();
            let e = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            })
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_add()?;
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Tok::Minus {
            self.bump();
            let e = self.parse_unary()?;
            Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            })
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::float(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Tok::KwNil => {
                self.bump();
                Ok(Expr::Nil)
            }
            Tok::KwSelf => {
                self.bump();
                Ok(Expr::SelfRef)
            }
            Tok::KwSend => {
                let send = self.parse_send()?;
                Ok(Expr::Send(Box::new(send)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(_) => {
                let name = self.expect_ident()?;
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        args.push(self.parse_expr()?);
                        while *self.peek() == Tok::Comma {
                            self.bump();
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call { func: name, args })
                } else {
                    Ok(Expr::Name(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

/// The Figure 1 program of the paper, verbatim modulo concrete syntax.
/// `c3.m` is given a trivial body (the paper elides it).
pub const FIGURE1_SOURCE: &str = r#"
class c1 {
  fields {
    f1: integer;
    f2: boolean;
    f3: c3;
  }
  method m1(p1) is
    send m2(p1) to self;
    send m3 to self
  end
  method m2(p1) is
    f1 := expr(f1, f2, p1)
  end
  method m3 is
    if f2 then
      send m to f3
    end
  end
}

class c2 inherits c1 {
  fields {
    f4: integer;
    f5: integer;
    f6: string;
  }
  method m2(p1) is redefined as
    send c1.m2(p1) to self;
    f4 := expr(f5, p1)
  end
  method m4(p1, p2) is
    if cond(f5, p1) then
      f6 := expr(f6, p2)
    end
  end
}

class c3 {
  fields {
    g1: integer;
  }
  method m is
    g1 := g1 + 1
  end
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_parses() {
        let prog = parse_program(FIGURE1_SOURCE).unwrap();
        assert_eq!(prog.classes.len(), 3);
        let c1 = &prog.classes[0];
        assert_eq!(c1.name, "c1");
        assert_eq!(c1.fields.len(), 3);
        assert_eq!(c1.methods.len(), 3);
        let c2 = &prog.classes[1];
        assert_eq!(c2.parents, ["c1"]);
        assert!(c2.methods[0].redefined);
        assert!(!c2.methods[1].redefined);
    }

    #[test]
    fn figure1_builds() {
        let (schema, bodies) = build_schema(FIGURE1_SOURCE).unwrap();
        assert_eq!(schema.class_count(), 3);
        assert_eq!(bodies.len(), schema.method_count());
        let c2 = schema.class_by_name("c2").unwrap();
        let m2 = schema.resolve_method(c2, "m2").unwrap();
        let body = bodies.body(m2);
        assert_eq!(body.len(), 2);
        assert!(matches!(
            &body.0[0],
            Stmt::Send(SendExpr {
                prefix: Some(p),
                target: Target::SelfRef,
                ..
            }) if p == "c1"
        ));
    }

    #[test]
    fn redefinition_marker_enforced_missing() {
        let src = r#"
class a { method m is skip end }
class b inherits a { method m is skip end }
"#;
        assert!(matches!(
            build_schema(src),
            Err(BuildError::Redefinition { marked: false, .. })
        ));
    }

    #[test]
    fn redefinition_marker_enforced_spurious() {
        let src = "class a { method m is redefined as skip end }";
        assert!(matches!(
            build_schema(src),
            Err(BuildError::Redefinition { marked: true, .. })
        ));
    }

    #[test]
    fn expression_precedence() {
        let b = parse_body("x := 1 + 2 * 3").unwrap();
        let Stmt::Assign { expr, .. } = &b.0[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        assert_eq!(
            *expr,
            Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(Expr::Int(2)),
                    rhs: Box::new(Expr::Int(3)),
                }),
            }
        );
    }

    #[test]
    fn logical_precedence_and_parens() {
        let b = parse_body("x := a or b and not c; y := (1 + 2) * 3").unwrap();
        let Stmt::Assign { expr, .. } = &b.0[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Binary { op: BinOp::Or, .. }));
        let Stmt::Assign { expr, .. } = &b.0[1] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn send_forms() {
        let b = parse_body(
            "send m to self; send m(1, x) to f; send c1.m2(p) to self; x := send get to f",
        )
        .unwrap();
        assert_eq!(b.len(), 4);
        assert!(matches!(
            &b.0[1],
            Stmt::Send(SendExpr {
                target: Target::Field(f),
                args,
                ..
            }) if f == "f" && args.len() == 2
        ));
        assert!(matches!(
            &b.0[3],
            Stmt::Assign {
                expr: Expr::Send(_),
                ..
            }
        ));
    }

    #[test]
    fn prefixed_send_to_field_rejected() {
        assert!(parse_body("send c1.m to f").is_err());
    }

    #[test]
    fn control_flow() {
        let b = parse_body(
            "if x > 0 then y := 1 else y := 2 end; while y < 10 do y := y + 1 end; return y",
        )
        .unwrap();
        assert_eq!(b.len(), 3);
        assert!(matches!(
            &b.0[0],
            Stmt::If {
                else_blk: Some(_),
                ..
            }
        ));
        assert!(matches!(&b.0[1], Stmt::While { .. }));
        assert!(matches!(&b.0[2], Stmt::Return(Some(_))));
    }

    #[test]
    fn bare_return_and_trailing_semis() {
        let b = parse_body("return;;").unwrap();
        assert!(matches!(&b.0[0], Stmt::Return(None)));
        let b = parse_body("skip;").unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn var_decl_and_call() {
        let b = parse_body("var t := expr(f1, 3); f1 := t").unwrap();
        assert!(matches!(
            &b.0[0],
            Stmt::VarDecl {
                expr: Expr::Call { func, args },
                ..
            } if func == "expr" && args.len() == 2
        ));
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_body("x :=").unwrap_err();
        assert!(e.line >= 1);
        let e = parse_program("class { }").unwrap_err();
        assert!(e.msg.contains("identifier"));
    }

    #[test]
    fn multiple_inheritance_syntax() {
        let p = parse_program("class a {} class b {} class c inherits a, b {}").unwrap();
        assert_eq!(p.classes[2].parents, ["a", "b"]);
    }

    #[test]
    fn empty_body_method() {
        let (schema, bodies) = build_schema("class a { method m is end }").unwrap();
        let a = schema.class_by_name("a").unwrap();
        let m = schema.resolve_method(a, "m").unwrap();
        assert!(bodies.body(m).is_empty());
    }

    #[test]
    fn comparison_is_non_associative() {
        assert!(parse_body("x := 1 < 2 < 3").is_err());
    }
}
