//! # finecc-lang — the method language
//!
//! The paper abstracts method code as "a sequence of assignments,
//! expressions and messages" (§2.2) with two message forms:
//!
//! * simple: `send M to self` / `send M to f` (a field holding a reference),
//! * prefixed: `send C.M to self` — calling the overridden version.
//!
//! This crate makes that concrete with a small imperative language whose
//! surface syntax mirrors the paper (Figure 1 parses verbatim modulo
//! delimiters):
//!
//! ```text
//! class c2 inherits c1 {
//!   fields { f4: integer; f5: integer; f6: string; }
//!   method m2(p1) is redefined as
//!     send c1.m2(p1) to self;
//!     f4 := expr(f5, p1)
//!   end
//!   method m4(p1, p2) is
//!     if cond(f5, p1) then f6 := expr(f6, p2) end
//!   end
//! }
//! ```
//!
//! The crate provides:
//!
//! * [`parse_program`] / [`build_schema`] — parse class files into a
//!   [`finecc_model::Schema`] plus per-method ASTs ([`MethodBodies`]),
//! * [`mod@analyze`] — the compile-time extraction of Definitions 6–8: field
//!   reads/writes and the DSC/PSC self-call sets,
//! * [`Interpreter`] — a tree-walking evaluator over a [`DataAccess`]
//!   trait, so every concurrency-control scheme can intercept field
//!   accesses and message sends,
//! * [`Builtins`] — the registry behind the paper's uninterpreted
//!   `expr(...)`/`cond(...)` functions, with deterministic,
//!   type-preserving defaults.

pub mod analyze;
pub mod ast;
pub mod builtins;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use analyze::{analyze, MethodFacts};
pub use ast::{BinOp, Block, Expr, SendExpr, Stmt, Target, UnOp};
pub use builtins::Builtins;
pub use error::{ExecError, ParseError};
pub use interp::{DataAccess, Interpreter};
pub use parser::{build_schema, parse_program, ClassSource, MethodBodies, Program};
