//! Compile-time extraction of the paper's Definitions 6–8.
//!
//! Given a method body and its *defining* class, [`fn@analyze`] computes:
//!
//! * the set of fields **written** — fields `f` with an assignment
//!   `f := <expression>` anywhere in the body (Definition 6: `Write`),
//! * the set of fields **read** — fields appearing in any expression,
//!   including message arguments and the receiver field of `send … to f`
//!   (Definition 6: `Read`),
//! * the **direct self-calls** `DSC` — names `M'` such that
//!   `send M' to self` appears (Definition 7),
//! * the **prefixed self-calls** `PSC` — pairs `(C', M')` from
//!   `send C'.M' to self` (Definition 8), with `C'` validated to be a
//!   proper ancestor of the defining class and `M'` resolved in `C'`.
//!
//! The analysis is deliberately *control-flow insensitive*: a field
//! assigned under an `if` still counts as written — this is exactly the
//! paper's conservatism ("they even represent impossible executions
//! because they forget alternatives", §4.4), measured by experiment E8.
//!
//! One deliberate extension: the paper's Definition 7 restricts DSC to
//! `METHODS(C)`. Real object-oriented code uses the *template-method*
//! pattern, where a superclass method self-sends a message only concrete
//! subclasses define. We therefore record every self-sent name and let the
//! late-binding-graph construction in `finecc-core` skip names that do not
//! resolve in the receiver class (where the send would be a runtime
//! "message not understood" anyway).

use crate::ast::{Block, Expr, SendExpr, Stmt, Target};
use crate::error::ExecError;
use finecc_model::{ClassId, FieldId, Schema};
use std::collections::BTreeSet;

/// Everything Definitions 6–8 extract from one method body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodFacts {
    /// Fields assigned somewhere in the body (`Write` per Definition 6).
    pub writes: BTreeSet<FieldId>,
    /// Fields appearing in some expression but never assigned (`Read`).
    /// Disjoint from `writes`: `Write` absorbs `Read` on the same field.
    pub reads: BTreeSet<FieldId>,
    /// `DSC`: names sent to `self` (unresolved — late binding happens per
    /// receiver class when the resolution graph is built).
    pub self_calls: BTreeSet<String>,
    /// `PSC`: `(ancestor class, method name)` pairs from prefixed sends.
    pub prefixed_calls: BTreeSet<(ClassId, String)>,
    /// Messages sent through reference fields: `(field, method name)`.
    /// The field itself is a read; the callee runs on another instance and
    /// is controlled separately at run time.
    pub external_sends: BTreeSet<(FieldId, String)>,
}

impl MethodFacts {
    /// `true` if the body touches no field and sends no message.
    pub fn is_pure(&self) -> bool {
        self.writes.is_empty()
            && self.reads.is_empty()
            && self.self_calls.is_empty()
            && self.prefixed_calls.is_empty()
            && self.external_sends.is_empty()
    }
}

struct Cx<'a> {
    schema: &'a Schema,
    class: ClassId,
    /// Names shadowed by parameters or `var` declarations.
    locals: BTreeSet<String>,
    facts: MethodFacts,
}

/// Runs the Definition 6–8 extraction for `body`, defined in `class` with
/// the given parameter names.
///
/// Errors on names that are neither parameters, locals, nor fields visible
/// in the defining class, on prefixed sends naming a non-ancestor, and on
/// sends through non-reference fields.
pub fn analyze(
    schema: &Schema,
    class: ClassId,
    params: &[String],
    body: &Block,
) -> Result<MethodFacts, ExecError> {
    let mut cx = Cx {
        schema,
        class,
        locals: params.iter().cloned().collect(),
        facts: MethodFacts::default(),
    };
    walk_block(&mut cx, body)?;
    // Write absorbs Read (Definition 6: Read holds only when there is no
    // assignment to the field).
    let writes = cx.facts.writes.clone();
    cx.facts.reads.retain(|f| !writes.contains(f));
    Ok(cx.facts)
}

fn field_of(cx: &Cx<'_>, name: &str) -> Option<FieldId> {
    if cx.locals.contains(name) {
        return None;
    }
    cx.schema.resolve_field(cx.class, name)
}

fn walk_block(cx: &mut Cx<'_>, block: &Block) -> Result<(), ExecError> {
    for stmt in &block.0 {
        walk_stmt(cx, stmt)?;
    }
    Ok(())
}

fn walk_stmt(cx: &mut Cx<'_>, stmt: &Stmt) -> Result<(), ExecError> {
    match stmt {
        Stmt::Skip => Ok(()),
        Stmt::Assign { name, expr } => {
            walk_expr(cx, expr)?;
            match field_of(cx, name) {
                Some(f) => {
                    cx.facts.writes.insert(f);
                    Ok(())
                }
                None if cx.locals.contains(name.as_str()) => Ok(()),
                None => Err(ExecError::UnknownName(name.clone())),
            }
        }
        Stmt::VarDecl { name, expr } => {
            walk_expr(cx, expr)?;
            cx.locals.insert(name.clone());
            Ok(())
        }
        Stmt::Send(send) => walk_send(cx, send),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            walk_expr(cx, cond)?;
            walk_block(cx, then_blk)?;
            if let Some(e) = else_blk {
                walk_block(cx, e)?;
            }
            Ok(())
        }
        Stmt::While { cond, body } => {
            walk_expr(cx, cond)?;
            walk_block(cx, body)
        }
        Stmt::Return(e) => {
            if let Some(e) = e {
                walk_expr(cx, e)?;
            }
            Ok(())
        }
    }
}

fn walk_send(cx: &mut Cx<'_>, send: &SendExpr) -> Result<(), ExecError> {
    for a in &send.args {
        walk_expr(cx, a)?;
    }
    match (&send.prefix, &send.target) {
        (Some(prefix), Target::SelfRef) => {
            let pid = cx
                .schema
                .class_by_name(prefix)
                .ok_or_else(|| ExecError::UnknownName(prefix.clone()))?;
            // Definition 8: C' must be an ancestor of the defining class,
            // and M' must be visible in C'.
            if pid == cx.class || !cx.schema.class(cx.class).ancestors.contains(&pid) {
                return Err(ExecError::TypeError(format!(
                    "`send {prefix}.{}`: `{prefix}` is not a proper ancestor",
                    send.method
                )));
            }
            if cx.schema.resolve_method(pid, &send.method).is_none() {
                return Err(ExecError::MessageNotUnderstood {
                    class: pid,
                    method: send.method.clone(),
                });
            }
            cx.facts.prefixed_calls.insert((pid, send.method.clone()));
            Ok(())
        }
        (None, Target::SelfRef) => {
            cx.facts.self_calls.insert(send.method.clone());
            Ok(())
        }
        (None, Target::Field(fname)) => {
            let f = field_of(cx, fname).ok_or_else(|| ExecError::UnknownName(fname.clone()))?;
            // The receiver field is read (Definition 6: "appears in some
            // expression, including messages").
            cx.facts.reads.insert(f);
            if !cx.schema.field(f).ty.is_ref() {
                return Err(ExecError::TypeError(format!(
                    "`send {} to {fname}`: field is not a reference",
                    send.method
                )));
            }
            cx.facts.external_sends.insert((f, send.method.clone()));
            Ok(())
        }
        (Some(_), Target::Field(_)) => Err(ExecError::TypeError(
            "prefixed send must target self".into(),
        )),
    }
}

fn walk_expr(cx: &mut Cx<'_>, expr: &Expr) -> Result<(), ExecError> {
    match expr {
        Expr::Int(_)
        | Expr::Float(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Nil
        | Expr::SelfRef => Ok(()),
        Expr::Name(name) => {
            if cx.locals.contains(name.as_str()) {
                return Ok(());
            }
            match field_of(cx, name) {
                Some(f) => {
                    cx.facts.reads.insert(f);
                    Ok(())
                }
                None => Err(ExecError::UnknownName(name.clone())),
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(cx, a)?;
            }
            Ok(())
        }
        Expr::Unary { expr, .. } => walk_expr(cx, expr),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(cx, lhs)?;
            walk_expr(cx, rhs)
        }
        Expr::Send(send) => walk_send(cx, send),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{build_schema, FIGURE1_SOURCE};
    use finecc_model::MethodId;

    fn setup() -> (Schema, crate::parser::MethodBodies) {
        build_schema(FIGURE1_SOURCE).unwrap()
    }

    fn facts_of(
        schema: &Schema,
        bodies: &crate::parser::MethodBodies,
        class: &str,
        method: &str,
    ) -> (MethodFacts, MethodId) {
        let c = schema.class_by_name(class).unwrap();
        let m = schema.resolve_method(c, method).unwrap();
        let mi = schema.method(m);
        let facts = analyze(schema, mi.owner, &mi.sig.params, bodies.body(m)).unwrap();
        (facts, m)
    }

    fn fid(schema: &Schema, class: &str, name: &str) -> FieldId {
        let c = schema.class_by_name(class).unwrap();
        schema.resolve_field(c, name).unwrap()
    }

    #[test]
    fn figure1_m2_in_c1() {
        let (s, b) = setup();
        let (facts, _) = facts_of(&s, &b, "c1", "m2");
        // DAV(c1,m2) = (Write f1, Read f2, Null f3)
        assert_eq!(
            facts.writes.iter().copied().collect::<Vec<_>>(),
            [fid(&s, "c1", "f1")]
        );
        assert_eq!(
            facts.reads.iter().copied().collect::<Vec<_>>(),
            [fid(&s, "c1", "f2")]
        );
        assert!(facts.self_calls.is_empty());
        assert!(facts.prefixed_calls.is_empty());
    }

    #[test]
    fn figure1_m1_self_calls() {
        let (s, b) = setup();
        let (facts, _) = facts_of(&s, &b, "c1", "m1");
        assert!(facts.writes.is_empty());
        assert!(facts.reads.is_empty());
        let dsc: Vec<&str> = facts.self_calls.iter().map(String::as_str).collect();
        assert_eq!(dsc, ["m2", "m3"]);
    }

    #[test]
    fn figure1_m3_reads_and_external_send() {
        let (s, b) = setup();
        let (facts, _) = facts_of(&s, &b, "c1", "m3");
        // DAV(c1,m3) = (Null f1, Read f2, Read f3): f3 is read by the send.
        let reads: Vec<FieldId> = facts.reads.iter().copied().collect();
        assert_eq!(reads, [fid(&s, "c1", "f2"), fid(&s, "c1", "f3")]);
        assert_eq!(facts.external_sends.len(), 1);
        let (f, m) = facts.external_sends.iter().next().unwrap();
        assert_eq!(*f, fid(&s, "c1", "f3"));
        assert_eq!(m, "m");
    }

    #[test]
    fn figure1_m2_override_in_c2() {
        let (s, b) = setup();
        let (facts, _) = facts_of(&s, &b, "c2", "m2");
        // DAV(c2,m2) = (Null,Null,Null, Write f4, Read f5, Null f6)
        assert_eq!(
            facts.writes.iter().copied().collect::<Vec<_>>(),
            [fid(&s, "c2", "f4")]
        );
        assert_eq!(
            facts.reads.iter().copied().collect::<Vec<_>>(),
            [fid(&s, "c2", "f5")]
        );
        let c1 = s.class_by_name("c1").unwrap();
        assert_eq!(
            facts.prefixed_calls.iter().cloned().collect::<Vec<_>>(),
            [(c1, "m2".to_string())]
        );
    }

    #[test]
    fn figure1_m4() {
        let (s, b) = setup();
        let (facts, _) = facts_of(&s, &b, "c2", "m4");
        // DAV(c2,m4) = (…, Read f5, Write f6): f6 := expr(f6, …) is Write
        // (Write absorbs the read of f6).
        assert_eq!(
            facts.writes.iter().copied().collect::<Vec<_>>(),
            [fid(&s, "c2", "f6")]
        );
        assert_eq!(
            facts.reads.iter().copied().collect::<Vec<_>>(),
            [fid(&s, "c2", "f5")]
        );
    }

    #[test]
    fn write_absorbs_read() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        let body = crate::parser::parse_body("f1 := f1 + 1").unwrap();
        let facts = analyze(&s, c1, &[], &body).unwrap();
        assert!(facts.reads.is_empty());
        assert_eq!(facts.writes.len(), 1);
    }

    #[test]
    fn locals_and_params_shadow_fields() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        // `p` is a param, `t` a local; neither is a field access. The local
        // even shadows field `f1` after `var f1 := …`? No: locals are their
        // own namespace; a `var` named like a field shadows it from there on.
        let body = crate::parser::parse_body("var t := p + 1; t := t + 2").unwrap();
        let facts = analyze(&s, c1, &["p".into()], &body).unwrap();
        assert!(facts.is_pure());
    }

    #[test]
    fn var_shadowing_field() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        // First statement reads field f1 (initializer), then `f1` is a local:
        // the assignment afterwards is not a field write.
        let body = crate::parser::parse_body("var f1 := f1 + 1; f1 := 0").unwrap();
        let facts = analyze(&s, c1, &[], &body).unwrap();
        assert_eq!(facts.reads.len(), 1);
        assert!(facts.writes.is_empty());
    }

    #[test]
    fn unknown_name_rejected() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        let body = crate::parser::parse_body("nope := 1").unwrap();
        assert!(matches!(
            analyze(&s, c1, &[], &body),
            Err(ExecError::UnknownName(_))
        ));
        let body = crate::parser::parse_body("f1 := ghost").unwrap();
        assert!(matches!(
            analyze(&s, c1, &[], &body),
            Err(ExecError::UnknownName(_))
        ));
    }

    #[test]
    fn subclass_fields_invisible_upward() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        // f4 is defined in c2; a method defined in c1 cannot see it.
        let body = crate::parser::parse_body("f4 := 1").unwrap();
        assert!(analyze(&s, c1, &[], &body).is_err());
    }

    #[test]
    fn prefixed_send_validation() {
        let (s, _) = setup();
        let c2 = s.class_by_name("c2").unwrap();
        let c1 = s.class_by_name("c1").unwrap();
        // Not an ancestor:
        let body = crate::parser::parse_body("send c3.m to self").unwrap();
        assert!(analyze(&s, c2, &[], &body).is_err());
        // Self is not a proper ancestor:
        let body = crate::parser::parse_body("send c2.m2(1) to self").unwrap();
        assert!(analyze(&s, c2, &[], &body).is_err());
        // Unknown method in ancestor:
        let body = crate::parser::parse_body("send c1.m4(1, 2) to self").unwrap();
        assert!(analyze(&s, c2, &[], &body).is_err());
        // Valid:
        let body = crate::parser::parse_body("send c1.m3 to self").unwrap();
        let facts = analyze(&s, c2, &[], &body).unwrap();
        assert_eq!(
            facts.prefixed_calls.iter().cloned().collect::<Vec<_>>(),
            [(c1, "m3".to_string())]
        );
    }

    #[test]
    fn send_through_non_ref_field_rejected() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        let body = crate::parser::parse_body("send m to f1").unwrap();
        assert!(matches!(
            analyze(&s, c1, &[], &body),
            Err(ExecError::TypeError(_))
        ));
    }

    #[test]
    fn reads_inside_conditions_args_and_loops() {
        let (s, _) = setup();
        let c2 = s.class_by_name("c2").unwrap();
        let body = crate::parser::parse_body(
            "while f5 > 0 do send m2(f4) to self end; if f2 then skip end",
        )
        .unwrap();
        let facts = analyze(&s, c2, &[], &body).unwrap();
        let reads: Vec<FieldId> = facts.reads.iter().copied().collect();
        assert_eq!(
            reads,
            [
                fid(&s, "c1", "f2"),
                fid(&s, "c2", "f4"),
                fid(&s, "c2", "f5")
            ]
        );
        assert!(facts.self_calls.contains("m2"));
    }

    #[test]
    fn template_method_unresolved_self_send_allowed() {
        // DSC may contain names not visible in the defining class
        // (template-method pattern); see module docs.
        let src = r#"
class base { method template is send hook to self end }
class concrete inherits base { method hook is skip end }
"#;
        let (s, b) = build_schema(src).unwrap();
        let base = s.class_by_name("base").unwrap();
        let t = s.resolve_method(base, "template").unwrap();
        let mi = s.method(t);
        let facts = analyze(&s, mi.owner, &mi.sig.params, b.body(t)).unwrap();
        assert!(facts.self_calls.contains("hook"));
    }

    #[test]
    fn expression_send_reads_receiver_field() {
        let (s, _) = setup();
        let c1 = s.class_by_name("c1").unwrap();
        let body = crate::parser::parse_body("f1 := send m to f3").unwrap();
        let facts = analyze(&s, c1, &[], &body).unwrap();
        assert!(facts.reads.contains(&fid(&s, "c1", "f3")));
        assert!(facts.writes.contains(&fid(&s, "c1", "f1")));
        assert_eq!(facts.external_sends.len(), 1);
    }
}
